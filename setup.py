"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in environments without the ``wheel``
package / network access (offline ``pip install -e . --no-build-isolation``
or ``python setup.py develop``).
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
