"""Micro-benchmarks of the probabilistic substrate.

These time the inner kernels of the simulator — PET construction, PMF
convolution, completion-time chains, success-probability scoring and a full
mapping event — so performance regressions in the hot path are visible
independently of the figure-level harnesses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.completion import DroppingPolicy, queue_completion_pmfs
from repro.core.pmf import DiscretePMF
from repro.heuristics.registry import make_heuristic
from repro.heuristics.scoring import fast_success_probability
from repro.pet.builders import build_spec_pet
from repro.simulator.engine import simulate
from repro.workload.generator import WorkloadConfig, generate_workload


@pytest.fixture(scope="module")
def spec_pet():
    return build_spec_pet(rng=1)


@pytest.fixture(scope="module")
def wide_pmf():
    rng = np.random.default_rng(3)
    return DiscretePMF.from_samples(rng.gamma(2.0, 60.0, size=500))


@pytest.fixture(scope="module")
def availability_pmf(wide_pmf):
    return wide_pmf.shift(100).aggregate(32)


def test_bench_pet_construction(benchmark):
    pet = benchmark.pedantic(lambda: build_spec_pet(rng=1, n_samples=500), rounds=1, iterations=1)
    assert pet.num_task_types == 12


def test_bench_pmf_convolution(benchmark, wide_pmf, availability_pmf):
    result = benchmark(lambda: wide_pmf.convolve(availability_pmf))
    assert result.total_mass() == pytest.approx(1.0)


def test_bench_pmf_aggregation(benchmark, wide_pmf):
    result = benchmark(lambda: wide_pmf.aggregate(32))
    assert np.count_nonzero(result.probs) <= 32


def test_bench_completion_chain(benchmark, spec_pet):
    pets = [spec_pet.get(t % 12, t % 8) for t in range(6)]
    deadlines = [300 + 150 * i for i in range(6)]

    def chain():
        return queue_completion_pmfs(
            pets,
            deadlines,
            start=DiscretePMF.point(0),
            policy=DroppingPolicy.EVICT,
            max_impulses=32,
        )

    result = benchmark(chain)
    assert len(result) == 6


def test_bench_success_probability_scoring(benchmark, spec_pet, availability_pmf):
    exec_pmf = spec_pet.get(0, 0)

    def score_many():
        return [
            fast_success_probability(exec_pmf, availability_pmf, deadline)
            for deadline in range(200, 1000, 10)
        ]

    values = benchmark(score_many)
    assert all(0.0 <= v <= 1.0 for v in values)


@pytest.mark.parametrize("heuristic_name", ["MM", "PAM"])
def test_bench_full_small_simulation(benchmark, spec_pet, heuristic_name):
    trace = generate_workload(
        WorkloadConfig(num_tasks=150, time_span=900, beta=1.5), spec_pet, rng=11
    )

    def run():
        heuristic = make_heuristic(heuristic_name, num_task_types=spec_pet.num_task_types)
        return simulate(spec_pet, heuristic, trace, rng=13)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(t.is_terminal for t in result.tasks)
    benchmark.extra_info["robustness_percent"] = result.robustness_percent(warmup=20, cooldown=20)
