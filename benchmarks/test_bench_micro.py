"""Micro-benchmarks of the probabilistic substrate.

These time the inner kernels of the simulator — PET construction, PMF
convolution, completion-time chains, success-probability scoring (scalar and
batched) and a full mapping event — so performance regressions in the hot
path are visible independently of the figure-level harnesses.

``test_bench_batched_mapping_event_scoring`` is the acceptance gate for the
batched engine: on a paper-scale mapping event it checks the batched grid is
bit-identical to the scalar double loop *and* at least 3x faster.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from _artefacts import record_bench

from repro.core.batch import PMFBatch, batched_success_probability
from repro.core.completion import DroppingPolicy, queue_completion_pmfs
from repro.core.pmf import DiscretePMF
from repro.heuristics.registry import make_heuristic
from repro.heuristics.scoring import fast_success_probability
from repro.pet.builders import build_spec_pet
from repro.simulator.engine import simulate
from repro.simulator.machine import Machine
from repro.simulator.state import SystemState
from repro.simulator.task import Task
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.spec import TaskSpec


@pytest.fixture(scope="module")
def spec_pet():
    return build_spec_pet(rng=1)


@pytest.fixture(scope="module")
def wide_pmf():
    rng = np.random.default_rng(3)
    return DiscretePMF.from_samples(rng.gamma(2.0, 60.0, size=500))


@pytest.fixture(scope="module")
def availability_pmf(wide_pmf):
    return wide_pmf.shift(100).aggregate(32)


def test_bench_pet_construction(benchmark):
    pet = benchmark.pedantic(lambda: build_spec_pet(rng=1, n_samples=500), rounds=1, iterations=1)
    assert pet.num_task_types == 12


def test_bench_pmf_convolution(benchmark, wide_pmf, availability_pmf):
    result = benchmark(lambda: wide_pmf.convolve(availability_pmf))
    assert result.total_mass() == pytest.approx(1.0)


def test_bench_pmf_aggregation(benchmark, wide_pmf):
    result = benchmark(lambda: wide_pmf.aggregate(32))
    assert np.count_nonzero(result.probs) <= 32


def test_bench_completion_chain(benchmark, spec_pet):
    pets = [spec_pet.get(t % 12, t % 8) for t in range(6)]
    deadlines = [300 + 150 * i for i in range(6)]

    def chain():
        return queue_completion_pmfs(
            pets,
            deadlines,
            start=DiscretePMF.point(0),
            policy=DroppingPolicy.EVICT,
            max_impulses=32,
        )

    result = benchmark(chain)
    assert len(result) == 6


def test_bench_success_probability_scoring(benchmark, spec_pet, availability_pmf):
    exec_pmf = spec_pet.get(0, 0)

    def score_many():
        return [
            fast_success_probability(exec_pmf, availability_pmf, deadline)
            for deadline in range(200, 1000, 10)
        ]

    values = benchmark(score_many)
    assert all(0.0 <= v <= 1.0 for v in values)


def test_bench_batched_mapping_event_scoring(benchmark, spec_pet):
    """Batched vs scalar scoring of one paper-scale mapping event.

    Paper scale: the full 12-type x 8-machine SPEC PET, every machine with a
    non-trivial availability chain, and an oversubscribed batch queue of 200
    unmapped tasks — 1600 candidate (task, machine) pairs.  The batched
    kernel must reproduce the scalar double loop bit for bit and beat it by
    at least 3x.
    """
    rng = np.random.default_rng(21)
    n_machines = spec_pet.num_machines
    availabilities = [
        DiscretePMF.from_samples(rng.gamma(2.0, 60.0, size=400))
        .shift(int(rng.integers(0, 50)))
        .aggregate(32)
        for _ in range(n_machines)
    ]
    n_tasks = 200
    types = rng.integers(0, spec_pet.num_task_types, size=n_tasks)
    deadlines = rng.integers(100, 1200, size=n_tasks)
    batch = PMFBatch.from_pmfs(availabilities)
    cdf_table = spec_pet.cdf_table()

    def batched():
        return batched_success_probability(batch, cdf_table, types, deadlines)

    def scalar_double_loop():
        out = np.zeros((n_tasks, n_machines))
        for i in range(n_tasks):
            for j in range(n_machines):
                out[i, j] = fast_success_probability(
                    spec_pet.get(int(types[i]), j), availabilities[j], int(deadlines[i])
                )
        return out

    def best_of(fn, repeats):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    # Exact-equivalence gate at paper scale (atol=0).
    assert np.array_equal(batched(), scalar_double_loop())

    # Timing gate, best-of comparisons retried a few times so a noisy shared
    # CI runner cannot fail the build on a transient stall.  The reported
    # timings are the pair from the best round, so they stay consistent with
    # the headline speedup.
    speedup, scalar_seconds, batched_seconds = 0.0, float("inf"), float("inf")
    for _ in range(3):
        round_scalar = best_of(scalar_double_loop, 3)
        round_batched = best_of(batched, 10)
        if round_scalar / round_batched > speedup:
            speedup = round_scalar / round_batched
            scalar_seconds, batched_seconds = round_scalar, round_batched
        if speedup >= 3.0:
            break
    grid = benchmark.pedantic(batched, rounds=3, iterations=1)
    assert grid.shape == (n_tasks, n_machines)
    benchmark.extra_info["scalar_ms"] = round(scalar_seconds * 1e3, 3)
    benchmark.extra_info["batched_ms"] = round(batched_seconds * 1e3, 3)
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    record_bench(
        "batched_mapping_event_scoring",
        {
            "scalar_ms": round(scalar_seconds * 1e3, 3),
            "batched_ms": round(batched_seconds * 1e3, 3),
            "speedup_vs_scalar": round(speedup, 2),
            "gate": 3.0,
        },
    )
    assert speedup >= 3.0, f"batched scoring only {speedup:.2f}x faster than scalar"


def test_bench_kernel_backend_matrix(benchmark, spec_pet):
    """Per-backend timings of the two hottest kernels at paper scale.

    Every *installed* kernel backend (absent optional backends are skipped,
    so the NumPy-only core CI lane still runs this) is checked for
    correctness against the NumPy reference within its own pinned tolerance
    and then timed on:

    * the ScoreTable fill — ``success_probability`` over the full 12-type x
      8-machine SPEC PET against 200 queued tasks, and
    * the ragged availability convolve — 200 PET rows each convolved with
      its own sparse (aggregated) availability kernel, the
      ``batched_completion_step`` workload.

    One merged ``kernel_backends`` row per backend lands in
    ``BENCH_micro.json``.  When numba is installed its jitted ragged
    convolve must clear 2x over the NumPy backend — the PR-8 acceptance
    gate; the array-API backend is recorded but ungated (it trades speed
    for namespace portability).
    """
    from repro.core.kernels import available_backends, get_backend

    rng = np.random.default_rng(21)
    n_machines = spec_pet.num_machines
    n_tasks = 200
    availabilities = [
        DiscretePMF.from_samples(rng.gamma(2.0, 60.0, size=400))
        .shift(int(rng.integers(0, 50)))
        .aggregate(32)
        for _ in range(n_machines)
    ]
    types = rng.integers(0, spec_pet.num_task_types, size=n_tasks)
    deadlines = rng.integers(100, 1200, size=n_tasks)
    avail_batch = PMFBatch.from_pmfs(availabilities)
    cdf_table = spec_pet.cdf_table()

    pets = [spec_pet.get(int(types[i]), i % n_machines) for i in range(n_tasks)]
    pet_batch = PMFBatch.from_pmfs(pets)
    ragged_kernels = [
        DiscretePMF.from_samples(rng.gamma(2.0, 60.0, size=400))
        .shift(int(rng.integers(0, 50)))
        .aggregate(32)
        for _ in range(n_tasks)
    ]

    def best_of(fn, repeats):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    reference = get_backend("numpy")
    ref_grid = reference.success_probability(avail_batch, cdf_table, types, deadlines)
    ref_conv = reference.convolve_ragged(pet_batch, ragged_kernels)

    rows: dict[str, dict[str, float]] = {}
    for name in available_backends():
        backend = get_backend(name)

        def score():
            return backend.success_probability(avail_batch, cdf_table, types, deadlines)

        def ragged():
            return backend.convolve_ragged(pet_batch, ragged_kernels)

        # Correctness within the backend's pinned tolerance; the first call
        # also warms lazy jit compilation out of the timed region.
        grid, conv = score(), ragged()
        if backend.rtol == 0.0 and backend.atol == 0.0:
            assert np.array_equal(grid, ref_grid), name
            assert conv.offset == ref_conv.offset
            assert np.array_equal(conv.probs, ref_conv.probs), name
        else:
            np.testing.assert_allclose(
                grid, ref_grid, rtol=backend.rtol, atol=backend.atol
            )
            np.testing.assert_allclose(
                conv.probs, ref_conv.probs, rtol=backend.rtol, atol=backend.atol
            )

        rows[name] = {
            "score_table_ms": round(best_of(score, 5) * 1e3, 3),
            "ragged_convolve_ms": round(best_of(ragged, 5) * 1e3, 3),
        }

    for name, row in rows.items():
        row["score_table_speedup_vs_numpy"] = round(
            rows["numpy"]["score_table_ms"] / row["score_table_ms"], 2
        )
        row["ragged_convolve_speedup_vs_numpy"] = round(
            rows["numpy"]["ragged_convolve_ms"] / row["ragged_convolve_ms"], 2
        )

    grid = benchmark.pedantic(
        lambda: reference.success_probability(avail_batch, cdf_table, types, deadlines),
        rounds=3,
        iterations=1,
    )
    assert grid.shape == (n_tasks, n_machines)
    benchmark.extra_info["backends"] = rows
    record_bench(
        "kernel_backends",
        {"backends": rows, "numba_ragged_convolve_gate": 2.0},
    )
    if "numba" in rows:
        speedup = rows["numba"]["ragged_convolve_speedup_vs_numpy"]
        assert speedup >= 2.0, (
            f"numba ragged convolve only {speedup:.2f}x faster than the NumPy backend"
        )


def test_bench_incremental_system_state(benchmark, spec_pet):
    """Incremental ``SystemState`` vs the rebuild path over mapping events.

    Paper scale: 8 machines with full six-slot queues (executing task plus
    five pending).  Each simulated mapping event finishes one machine's
    executing task (the next pending task starts) and enqueues a fresh task
    on another machine, then reads the live ``(n_machines, support)``
    availability batch — the exact access pattern of a mapping event.  The
    incremental path must serve bit-identical batches to forcing a
    from-scratch ``rebuild()`` before every query, and beat it by at least
    2x (it only re-convolves the one or two chains that changed instead of
    all eight).
    """
    n_events = 30
    n_machines = spec_pet.num_machines
    queue_depth = 6
    rng = np.random.default_rng(33)
    actuals = rng.integers(30, 90, size=4 * n_events + n_machines * queue_depth)
    types = rng.integers(0, spec_pet.num_task_types, size=actuals.size)

    def make_task(task_id: int, deadline: int, task_type: int) -> Task:
        return Task(
            TaskSpec(arrival=0, task_id=task_id, task_type=task_type, deadline=deadline)
        )

    def run_events(*, rebuild_each_event: bool):
        machines = [
            Machine(j, name, queue_capacity=queue_depth)
            for j, name in enumerate(spec_pet.machine_names)
        ]
        next_id = iter(range(10**6))
        draw = iter(zip(actuals.tolist(), types.tolist()))
        for machine in machines:
            actual = 0
            for slot in range(queue_depth):
                actual, task_type = next(draw)
                task = make_task(next(next_id), 400 + 60 * slot, task_type)
                machine.enqueue(task, now=0)
            machine.start_next(now=0, actual_execution_time=int(actual))
        state = SystemState(machines, spec_pet)
        batches = []
        for event in range(n_events):
            now = event + 1
            finisher = machines[event % n_machines]
            if finisher.executing is not None:
                done = finisher.executing
                finisher.finish_executing(done, now)
                state.notify_finish(finisher.index, done)
            if finisher.is_idle and finisher.pending:
                actual, _ = next(draw)
                finisher.start_next(now, int(actual))
                state.notify_start(finisher.index)
            target = machines[(event + 3) % n_machines]
            if target.has_free_slot:
                actual, task_type = next(draw)
                task = make_task(next(next_id), now + 500, task_type)
                target.enqueue(task, now)
                state.notify_enqueue(target.index, task)
            if rebuild_each_event:
                state.rebuild(now)
            batches.append(state.availability_batch(now))
        return batches

    # Bit-identity gate: the incremental chains and the forced per-event
    # rebuild must serve exactly the same availability batches.
    incremental_batches = run_events(rebuild_each_event=False)
    rebuild_batches = run_events(rebuild_each_event=True)
    for inc, reb in zip(incremental_batches, rebuild_batches):
        for j in range(n_machines):
            a, b = inc.row(j).compact(), reb.row(j).compact()
            assert a.offset == b.offset and np.array_equal(a.probs, b.probs)

    def best_of(fn, repeats):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    speedup, rebuild_seconds, incremental_seconds = 0.0, float("inf"), float("inf")
    for _ in range(3):
        round_rebuild = best_of(lambda: run_events(rebuild_each_event=True), 3)
        round_incremental = best_of(lambda: run_events(rebuild_each_event=False), 3)
        if round_rebuild / round_incremental > speedup:
            speedup = round_rebuild / round_incremental
            rebuild_seconds, incremental_seconds = round_rebuild, round_incremental
        if speedup >= 2.0:
            break
    benchmark.pedantic(
        lambda: run_events(rebuild_each_event=False), rounds=3, iterations=1
    )
    benchmark.extra_info["rebuild_ms"] = round(rebuild_seconds * 1e3, 3)
    benchmark.extra_info["incremental_ms"] = round(incremental_seconds * 1e3, 3)
    benchmark.extra_info["speedup_vs_rebuild"] = round(speedup, 2)
    record_bench(
        "incremental_system_state",
        {
            "rebuild_ms": round(rebuild_seconds * 1e3, 3),
            "incremental_ms": round(incremental_seconds * 1e3, 3),
            "speedup_vs_rebuild": round(speedup, 2),
            "gate": 2.0,
        },
    )
    assert speedup >= 2.0, (
        f"incremental SystemState only {speedup:.2f}x faster than the rebuild path"
    )


def test_bench_obs_overhead(benchmark, spec_pet):
    """The observability acceptance gate: disabled telemetry costs <2%.

    With the default :data:`~repro.obs.NULL_TELEMETRY` active, the
    instrumented hot paths execute one extra ``obs.enabled`` guard (a class
    attribute read on a shared singleton) per hook site and nothing else —
    no span objects, no clock reads, no dict updates.  This bench measures
    that guard cost directly and gates it as a fraction of the two paper
    loops it rides on:

    * the per-event simulator loop (~1 ms/task at paper scale), budgeting a
      generous 25 hook executions per event, and
    * one ScoreTable fill (2 hook executions), whose duration is taken from
      our own tracing of the same run.

    Both ratios must stay under 2%.  The enabled-tracing overhead (full
    span recording) is measured on the same 150-task simulation and
    recorded ungated — tracing is opt-in and allowed to cost more.
    """
    from repro.obs import NULL_TELEMETRY, Telemetry, use_telemetry
    from repro.obs import active as obs_active

    trace = generate_workload(
        WorkloadConfig(num_tasks=150, time_span=900, beta=1.5), spec_pet, rng=11
    )

    def run(telemetry):
        heuristic = make_heuristic("PAMF", num_task_types=spec_pet.num_task_types)
        with use_telemetry(telemetry):
            return simulate(spec_pet, heuristic, trace, rng=13)

    def best_of(fn, repeats):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    # The exact statements a disabled hook site executes, timed in bulk.
    hook_reps = 200_000
    counter = 0

    def disabled_hooks():
        nonlocal counter
        for _ in range(hook_reps):
            obs = obs_active()
            if obs.enabled:
                raise AssertionError("telemetry must be disabled here")
            counter += 1

    assert obs_active() is NULL_TELEMETRY
    hook_seconds = best_of(disabled_hooks, 5) / hook_reps

    null_seconds = best_of(lambda: run(NULL_TELEMETRY), 3)
    # Arrival + finish per task undercounts the true event total (markers,
    # mapping events), which overstates the per-event hook ratio: the gate
    # is conservative.
    event_seconds = null_seconds / (2 * 150)
    per_event_ratio = 25 * hook_seconds / event_seconds

    telemetry = Telemetry()
    traced_seconds = best_of(lambda: run(telemetry), 3)
    fill = telemetry.timings["score_table.fill"]
    fill_seconds = fill.mean
    per_fill_ratio = 2 * hook_seconds / fill_seconds

    result = benchmark.pedantic(lambda: run(NULL_TELEMETRY), rounds=1, iterations=1)
    assert all(t.is_terminal for t in result.tasks)
    enabled_overhead = traced_seconds / null_seconds - 1.0

    row = {
        "hook_ns": round(hook_seconds * 1e9, 2),
        "event_us": round(event_seconds * 1e6, 2),
        "fill_us": round(fill_seconds * 1e6, 2),
        "disabled_per_event_percent": round(per_event_ratio * 100, 4),
        "disabled_per_fill_percent": round(per_fill_ratio * 100, 4),
        "enabled_overhead_percent": round(enabled_overhead * 100, 2),
        "gate_percent": 2.0,
    }
    benchmark.extra_info.update(row)
    record_bench("obs_overhead", row)
    assert per_event_ratio < 0.02, (
        f"disabled telemetry hooks cost {per_event_ratio:.2%} of the event loop"
    )
    assert per_fill_ratio < 0.02, (
        f"disabled telemetry hooks cost {per_fill_ratio:.2%} of a ScoreTable fill"
    )


@pytest.mark.parametrize("heuristic_name", ["MM", "PAM"])
def test_bench_full_small_simulation(benchmark, spec_pet, heuristic_name):
    trace = generate_workload(
        WorkloadConfig(num_tasks=150, time_span=900, beta=1.5), spec_pet, rng=11
    )

    def run():
        heuristic = make_heuristic(heuristic_name, num_task_types=spec_pet.num_task_types)
        return simulate(spec_pet, heuristic, trace, rng=13)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(t.is_terminal for t in result.tasks)
    benchmark.extra_info["robustness_percent"] = result.robustness_percent(warmup=20, cooldown=20)
