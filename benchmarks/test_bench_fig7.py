"""Figure 7 benchmark — robustness of PAM/PAMF vs the baseline heuristics.

Prints the robustness of all six heuristics at both oversubscription levels.
Paper shape: PAM is the clear winner, PAMF trades robustness for fairness and
lands near MOC (the best baseline), MM trails far behind, MSD and MMU do
worst because they prioritise the least-likely-to-succeed tasks.
"""

from __future__ import annotations

from repro.experiments.fig7_robustness import run_fig7


def test_fig7_robustness_comparison(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_fig7(bench_config, levels=("19k", "34k")),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for level in ("19k", "34k"):
        pam = result.robustness(level, "PAM")
        pamf = result.robustness(level, "PAMF")
        moc = result.robustness(level, "MOC")
        mm = result.robustness(level, "MM")
        msd = result.robustness(level, "MSD")
        mmu = result.robustness(level, "MMU")
        # Who wins: the pruning-aware mapper dominates every baseline.
        assert pam > max(moc, mm, msd, mmu)
        # PAMF gives up some robustness for fairness but stays competitive.
        assert pamf >= mm - 5.0
        # The robustness-based baseline does not lose to the deadline chasers.
        assert moc >= min(msd, mmu) - 2.0
        benchmark.extra_info[f"{level}_ranking"] = result.ranking(level)
        benchmark.extra_info[f"{level}_pam_over_mm_factor"] = pam / mm if mm > 0 else float("inf")
