"""Machine-readable perf artefacts for the benchmark gates.

The micro-benchmark acceptance gates measure their speedup ratios anyway
(batched vs scalar scoring, incremental vs rebuilt ``SystemState``); this
module dumps those measurements into ``BENCH_micro.json`` at the repo root
so CI can upload them and runs can be compared across commits, instead of
the numbers living only in a transient pytest report.

The file is merged-in-place: each gate owns one key under ``benchmarks``,
so partial runs (``pytest benchmarks/test_bench_micro.py -k batched``)
refresh only their own entry.  Point ``REPRO_BENCH_MICRO`` somewhere else
to redirect the artefact (CI workspaces, scratch dirs).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["BENCH_MICRO_PATH", "record_bench"]

BENCH_MICRO_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_MICRO", Path(__file__).resolve().parent.parent / "BENCH_micro.json"
    )
)


def record_bench(name: str, payload: dict, *, path: str | Path | None = None) -> Path:
    """Merge one gate's measurements into the shared JSON artefact."""
    path = BENCH_MICRO_PATH if path is None else Path(path)
    data: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except ValueError:
            loaded = None
        if isinstance(loaded, dict):
            data = loaded
    data["schema"] = 1
    data.setdefault("benchmarks", {})
    if not isinstance(data["benchmarks"], dict):
        data["benchmarks"] = {}
    data["benchmarks"][name] = payload
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
