"""Benchmark of the durable work queue's claim/complete hot path.

The queue's per-trial overhead (one claim + one complete, each a short
SQLite transaction) must stay negligible next to a simulated trial, which
takes hundreds of milliseconds to seconds at paper scale.  The gate pins
the full enqueue→claim→complete round trip well under typical trial cost,
so queue-backed sweeps are never bottlenecked on the queue itself.

Run with ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import time

from repro.experiments.config import ExperimentConfig
from repro.sweep import HeuristicSpec, PETSpec, SweepPoint, TrialMetrics, WorkQueue
from repro.workload.generator import WorkloadConfig

#: Trials pushed through the queue per benchmark round.
N_TASKS = 64

#: Floor on queue round trips per second (enqueue + claim + complete).  A
#: local SSD does thousands; the gate is far below that to stay robust on
#: slow CI filesystems while still catching a pathological regression
#: (e.g. an accidental table scan or per-operation fsync storm).
MIN_ROUND_TRIPS_PER_SECOND = 25.0


def _point(trials: int) -> SweepPoint:
    return SweepPoint(
        label="bench",
        pet=PETSpec(kind="spec", seed=11),
        heuristic=HeuristicSpec(name="MM"),
        workload=WorkloadConfig(num_tasks=40, time_span=300, beta=1.5),
        config=ExperimentConfig(trials=trials, seed=11),
    )


def _metrics() -> TrialMetrics:
    return TrialMetrics(
        robustness_percent=50.0,
        fairness_variance=1.0,
        total_cost=2.0,
        cost_per_percent_on_time=0.04,
        completed_on_time=10,
        total_tasks=40,
        per_type_completion_percent=(50.0,),
    )


def test_bench_queue_round_trip(benchmark, tmp_path):
    point = _point(N_TASKS)
    metrics = _metrics()
    rounds = [0]

    def round_trip() -> int:
        queue = WorkQueue(tmp_path / f"queue-{rounds[0]}")
        rounds[0] += 1
        keys = queue.enqueue_point(point)
        done = 0
        while True:
            claimed = queue.claim("bench-worker")
            if claimed is None:
                break
            queue.complete(claimed.task_key, "bench-worker", metrics)
            done += 1
        assert len(queue.results(keys)) == N_TASKS
        return done

    started = time.perf_counter()
    done = benchmark.pedantic(round_trip, rounds=1, iterations=1)
    seconds = time.perf_counter() - started
    assert done == N_TASKS

    per_second = N_TASKS / seconds
    benchmark.extra_info["round_trips_per_second"] = round(per_second, 1)
    assert per_second >= MIN_ROUND_TRIPS_PER_SECOND, (
        f"queue managed only {per_second:.1f} claim/complete round trips per "
        f"second (gate {MIN_ROUND_TRIPS_PER_SECOND})"
    )
