"""Figure 5 benchmark — impact of the deferring and dropping thresholds.

Sweeps the deferring threshold for dropping thresholds of 25/50/75 % under
high oversubscription and prints the robustness series of Figure 5.
Paper shape: a higher deferring threshold gives higher robustness, and with a
high enough deferring threshold the dropping threshold stops mattering.
"""

from __future__ import annotations

from repro.experiments.fig5_thresholds import run_fig5


def test_fig5_threshold_sweep(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_fig5(
            bench_config,
            level="34k",
            dropping_thresholds=(0.25, 0.50, 0.75),
            gap_step=0.10,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    # Main trend: for the 25% dropping threshold, the highest deferring
    # threshold should beat the lowest one.
    defers = result.defer_values(0.25)
    low_defer = result.robustness(0.25, defers[0])
    high_defer = result.robustness(0.25, defers[-1])
    assert high_defer >= low_defer - 2.0

    # Convergence: at the highest deferring threshold the three dropping
    # thresholds end up within a modest band of one another.
    finals = [result.robustness(drop, result.defer_values(drop)[-1]) for drop in (0.25, 0.50, 0.75)]
    assert max(finals) - min(finals) <= 20.0

    benchmark.extra_info["robustness_drop25_lowest_defer"] = low_defer
    benchmark.extra_info["robustness_drop25_highest_defer"] = high_defer
    benchmark.extra_info["final_robustness_by_dropping"] = dict(
        zip(("25%", "50%", "75%"), finals)
    )
