"""Figure 6 benchmark — the PAMF fairness factor sweep.

Prints, for each oversubscription level and fairness factor, the variance of
per-task-type completion percentages (lower = fairer) and the overall
robustness.  Paper shape: a small (≈5 %) fairness factor markedly reduces the
variance at the cost of a few robustness points; larger factors give
diminishing returns.
"""

from __future__ import annotations

from repro.experiments.fig6_fairness import run_fig6

FACTORS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)


def test_fig6_fairness_sweep(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_fig6(bench_config, levels=("19k", "34k"), fairness_factors=FACTORS),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for level in ("19k", "34k"):
        no_fairness_variance = result.fairness_variance(level, 0.0)
        fair_variance = min(result.fairness_variance(level, f) for f in FACTORS[1:])
        # Fairness should never make the per-type variance dramatically worse.
        assert fair_variance <= no_fairness_variance + 5.0
        # Robustness stays in a sane range across the sweep.
        for factor in FACTORS:
            assert 0.0 <= result.robustness(level, factor) <= 100.0

    benchmark.extra_info["variance_34k_factor_0"] = result.fairness_variance("34k", 0.0)
    benchmark.extra_info["variance_34k_factor_5"] = result.fairness_variance("34k", 0.05)
    benchmark.extra_info["robustness_34k_factor_0"] = result.robustness("34k", 0.0)
    benchmark.extra_info["robustness_34k_factor_5"] = result.robustness("34k", 0.05)
