"""Shared configuration for the benchmark harness.

Every ``test_bench_fig*.py`` module regenerates one figure of the paper's
evaluation at benchmark scale (full workload sizes, a small number of trials)
and prints the same rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s

The figure harnesses are executed exactly once per session
(``benchmark.pedantic(rounds=1)``) because a single data point already
aggregates several simulated trials.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Benchmark-scale experiment configuration (2 trials per data point)."""
    return ExperimentConfig(trials=2, seed=2019, warmup_tasks=50, cooldown_tasks=50)


@pytest.fixture(scope="session")
def smoke_config() -> ExperimentConfig:
    """Small configuration for the micro/ablation benches."""
    return ExperimentConfig(trials=1, seed=2019, warmup_tasks=25, cooldown_tasks=25, task_scale=0.6)
