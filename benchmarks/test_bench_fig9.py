"""Figure 9 benchmark — PAMF vs MinMin on the video-transcoding workload.

Prints the robustness of PAMF and MM on the 4-VM transcoding system at four
oversubscription levels.  Paper shape: PAMF beats MinMin and its advantage
grows as the oversubscription level increases.
"""

from __future__ import annotations

from repro.experiments.fig9_transcoding import run_fig9

LEVELS = ("10k", "12.5k", "15k", "17.5k")


def test_fig9_transcoding_workload(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_fig9(bench_config, levels=LEVELS),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    advantages = [result.advantage(level) for level in LEVELS]
    # PAMF wins at the higher oversubscription levels...
    assert result.robustness("17.5k", "PAMF") > result.robustness("17.5k", "MM")
    assert result.robustness("15k", "PAMF") > result.robustness("15k", "MM")
    # ...and its advantage at the heaviest level exceeds the advantage at the
    # lightest level (the paper's "specifically as the level of
    # oversubscription increases").
    assert advantages[-1] >= advantages[0] - 2.0

    for level, advantage in zip(LEVELS, advantages):
        benchmark.extra_info[f"advantage_{level}"] = advantage
