"""Figure 4 benchmark — dynamic engagement of probabilistic task dropping.

Regenerates the robustness-vs-lambda curves (plain toggle vs Schmitt trigger)
under high oversubscription and prints the series the paper's Figure 4 shows.
Paper shape: robustness increases with lambda and the Schmitt trigger is at
least as good as the single-threshold toggle; lambda = 0.9 is selected.
"""

from __future__ import annotations

from repro.experiments.fig4_lambda import run_fig4

LAMBDAS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


def test_fig4_lambda_sweep(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_fig4(bench_config, level="34k", lambdas=LAMBDAS),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    robustness_values = [s.mean_robustness() for s in result.series.values()]
    assert all(0.0 <= value <= 100.0 for value in robustness_values)
    # The paper's qualitative takeaway: reacting strongly to the latest
    # misses (high lambda) is at least as good as weighing history heavily.
    high = result.robustness(0.9, "schmitt")
    low = result.robustness(0.1, "schmitt")
    assert high >= low - 5.0

    benchmark.extra_info["best_lambda_schmitt"] = result.best_lambda("schmitt")
    benchmark.extra_info["robustness_lambda_0.9_schmitt"] = high
    benchmark.extra_info["robustness_lambda_0.1_schmitt"] = low
