"""Figure 8 benchmark — cost benefit of probabilistic pruning.

Prints the incurred cost per percentage point of on-time completions for
PAM, PAMF, MOC and MM at both oversubscription levels.  Paper shape: PAM and
PAMF are substantially (≈40 %) cheaper per completed percentage point than
MOC and MM, because they stop spending machine time on hopeless tasks.
"""

from __future__ import annotations

from repro.experiments.fig8_cost import run_fig8


def test_fig8_cost_benefit(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_fig8(bench_config, levels=("19k", "34k")),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for level in ("19k", "34k"):
        pam = result.cost_per_percent(level, "PAM")
        mm = result.cost_per_percent(level, "MM")
        moc = result.cost_per_percent(level, "MOC")
        # Who wins: pruning lowers the normalised cost against both baselines.
        assert pam < mm
        assert pam < moc
        benchmark.extra_info[f"{level}_saving_vs_mm"] = result.saving_vs(level, "PAM", "MM")
        benchmark.extra_info[f"{level}_saving_vs_moc"] = result.saving_vs(level, "PAM", "MOC")

    # The paper reports savings of roughly 40%; require a substantial saving
    # at the higher oversubscription level.
    assert result.saving_vs("34k", "PAM", "MM") >= 0.2
