"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each ablation runs the same oversubscribed workload with one mechanism
toggled, quantifying how much of PAM's advantage comes from deferring,
dropping, the dynamic per-task threshold (Eq. 7), impulse aggregation, and
the system's automatic eviction of overdue executing tasks.

Every variant is expressed as a declarative :class:`repro.sweep.SweepPoint`
and executed through :func:`repro.sweep.run_sweep` — the ablation toggles
(pruning stages, threshold dynamics, impulse cap, eviction semantics) are
all first-class fields of the sweep spec.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig, workload_for_level
from repro.pruning.thresholds import PruningThresholds
from repro.sweep import HeuristicSpec, PETSpec, SweepPoint, SweepSpec, run_sweep


@pytest.fixture(scope="module")
def pet_spec():
    return PETSpec(kind="spec", seed=2019)


def _run(
    pet_spec: PETSpec,
    config: ExperimentConfig,
    *,
    label: str,
    heuristic: HeuristicSpec,
    evict: bool = True,
) -> float:
    point = SweepPoint(
        label=label,
        pet=pet_spec,
        heuristic=heuristic,
        workload=workload_for_level("34k", config),
        config=config,
        evict_executing_at_deadline=evict,
    )
    outcome = run_sweep(SweepSpec(points=(point,)))
    return outcome.series()[0].mean_robustness()


def test_bench_ablation_pruning_stages(benchmark, pet_spec, smoke_config):
    """Deferring-only vs dropping-only vs both vs neither."""

    variants = {
        "defer+drop": HeuristicSpec("PAM", enable_deferring=True, enable_dropping=True),
        "defer-only": HeuristicSpec("PAM", enable_deferring=True, enable_dropping=False),
        "drop-only": HeuristicSpec("PAM", enable_deferring=False, enable_dropping=True),
        "neither": HeuristicSpec("PAM", enable_deferring=False, enable_dropping=False),
    }

    def run_all():
        return {
            name: _run(pet_spec, smoke_config, label=name, heuristic=heuristic)
            for name, heuristic in variants.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, robustness in results.items():
        print(f"  ablation {name:<12} robustness {robustness:6.2f}%")
    # Deferring is the dominant contributor; the full mechanism should not be
    # worse than running with no pruning at all.
    assert results["defer+drop"] >= results["neither"] - 2.0
    assert results["defer-only"] >= results["neither"] - 2.0
    benchmark.extra_info.update(results)


def test_bench_ablation_dynamic_threshold(benchmark, pet_spec, smoke_config):
    """Eq. 7 per-task threshold adjustment on vs off."""

    def run_both():
        return {
            name: _run(
                pet_spec,
                smoke_config,
                label=name,
                heuristic=HeuristicSpec(
                    "PAM", thresholds=PruningThresholds(dynamic_per_task=dynamic)
                ),
            )
            for name, dynamic in (("dynamic", True), ("static", False))
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(f"  dynamic per-task threshold {results['dynamic']:.2f}% vs static {results['static']:.2f}%")
    assert abs(results["dynamic"] - results["static"]) < 30.0
    benchmark.extra_info.update(results)


def test_bench_ablation_impulse_aggregation(benchmark, pet_spec, smoke_config):
    """Impulse-aggregation cap: accuracy/cost trade-off (Section IV remark)."""

    def run_levels():
        out = {}
        for cap in (8, 32, 128):
            config = replace(smoke_config, max_impulses=cap)
            out[f"max_impulses={cap}"] = _run(
                pet_spec, config, label=f"cap{cap}", heuristic=HeuristicSpec("PAM")
            )
        return out

    results = benchmark.pedantic(run_levels, rounds=1, iterations=1)
    print()
    for name, robustness in results.items():
        print(f"  {name:<18} robustness {robustness:6.2f}%")
    values = list(results.values())
    assert max(values) - min(values) < 25.0, "aggregation level should not dominate the outcome"
    benchmark.extra_info.update(results)


def test_bench_ablation_no_automatic_eviction(benchmark, pet_spec, smoke_config):
    """System semantics: with automatic deadline eviction disabled, pruning
    becomes the only defence against wasted work and PAM's advantage grows."""

    def run_both_systems():
        out = {}
        for evict in (True, False):
            pam = _run(
                pet_spec, smoke_config, label="pam", heuristic=HeuristicSpec("PAM"), evict=evict
            )
            mm = _run(
                pet_spec, smoke_config, label="mm", heuristic=HeuristicSpec("MM"), evict=evict
            )
            out[f"evict={evict}"] = {"PAM": pam, "MM": mm}
        return out

    results = benchmark.pedantic(run_both_systems, rounds=1, iterations=1)
    print()
    for system, values in results.items():
        print(f"  {system:<12} PAM {values['PAM']:6.2f}%  MM {values['MM']:6.2f}%")
    gap_with_eviction = results["evict=True"]["PAM"] - results["evict=True"]["MM"]
    gap_without = results["evict=False"]["PAM"] - results["evict=False"]["MM"]
    assert gap_without >= gap_with_eviction - 5.0
    benchmark.extra_info["gap_with_eviction"] = gap_with_eviction
    benchmark.extra_info["gap_without_eviction"] = gap_without
