"""End-to-end scale gate: 100k-task traces through the event-heap engine.

The PR 7 acceptance gate: a production-scale synthetic trace (the
``"scale"`` builder, load-calibrated to the same oversubscription regime at
any task count) must run end-to-end through both engine modes, and batched
scheduling rounds must beat the per-event heap loop by at least 2x at scale.
Measurements are merged into ``BENCH_scale.json`` at the repo root (or
wherever ``REPRO_BENCH_SCALE`` points) so CI uploads them alongside the
micro and serve artefacts.

The task count is environment-scaled so the same gate serves three tiers::

    pytest benchmarks/test_bench_scale.py                      # 2k  (tier-1)
    REPRO_SCALE_TASKS=10000  pytest benchmarks/test_bench_scale.py   # CI scale-smoke
    REPRO_SCALE_TASKS=100000 pytest benchmarks/test_bench_scale.py   # full gate

The >= 2x batched-rounds speedup is enforced from 10k tasks up (the scale
the ISSUE names); below that the ratio is still measured and recorded, with
a loose >= 1.2x floor so a regression that erases batching entirely fails
even the tier-1 run.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from _artefacts import record_bench

from repro.heuristics.registry import make_heuristic
from repro.pet.builders import build_spec_pet
from repro.simulator.engine import HCSimulator, SimulatorConfig
from repro.workload.scale import SCALE_TRACE_SEED, scale_trace

#: Round window for the batched mode: ~10x the scale trace's mean
#: inter-arrival gap (~12 time units at load factor 1.15), at any task count.
BATCH_WINDOW = 120

BENCH_SCALE_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_SCALE", Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    )
)


def _num_tasks() -> int:
    return int(os.environ.get("REPRO_SCALE_TASKS", "2000"))


def _run(pet, trace, *, window: int) -> tuple[float, object]:
    heuristic = make_heuristic("PAMF", num_task_types=pet.num_task_types)
    sim = HCSimulator(
        pet, heuristic, config=SimulatorConfig(batch_window=window), rng=SCALE_TRACE_SEED
    )
    start = time.perf_counter()
    result = sim.run(trace)
    return time.perf_counter() - start, result


def test_bench_scale_trace_end_to_end():
    num_tasks = _num_tasks()
    pet = build_spec_pet(rng=SCALE_TRACE_SEED)

    build_start = time.perf_counter()
    trace = scale_trace(num_tasks=num_tasks)
    build_seconds = time.perf_counter() - build_start

    heap_seconds, heap_result = _run(pet, trace, window=0)
    batched_seconds, batched_result = _run(pet, trace, window=BATCH_WINDOW)

    # Both modes must fully account for every task (nothing stranded).
    for result in (heap_result, batched_result):
        counters = result.counters
        terminal = (
            counters.completions
            + counters.evictions
            + counters.deadline_miss_drops
            + counters.proactive_drops
        )
        assert terminal == num_tasks
    # Batching trades bounded mapping latency for throughput, not collapse:
    # the on-time count stays in the same regime as the per-event loop.
    heap_on_time = sum(1 for t in heap_result.tasks if t.on_time)
    batched_on_time = sum(1 for t in batched_result.tasks if t.on_time)
    assert batched_on_time >= 0.5 * heap_on_time
    # Batched rounds must actually have batched.
    assert batched_result.counters.mapping_events < heap_result.counters.mapping_events

    speedup = heap_seconds / batched_seconds
    record_bench(
        "scale_trace_end_to_end",
        {
            "num_tasks": num_tasks,
            "batch_window": BATCH_WINDOW,
            "trace_build_s": round(build_seconds, 3),
            "heap_window0_s": round(heap_seconds, 2),
            "batched_s": round(batched_seconds, 2),
            "heap_tasks_per_s": round(num_tasks / heap_seconds, 1),
            "batched_tasks_per_s": round(num_tasks / batched_seconds, 1),
            "heap_mapping_events": heap_result.counters.mapping_events,
            "batched_mapping_events": batched_result.counters.mapping_events,
            "heap_on_time": heap_on_time,
            "batched_on_time": batched_on_time,
            "speedup_batched_vs_heap": round(speedup, 2),
            "gate": 2.0 if num_tasks >= 10_000 else 1.2,
        },
        path=BENCH_SCALE_PATH,
    )

    assert build_seconds < 10.0, "trace builder must stay vectorised-fast"
    assert heap_seconds < 30 * 60, "per-event loop must finish in minutes"
    gate = 2.0 if num_tasks >= 10_000 else 1.2
    assert speedup >= gate, (
        f"batched rounds only {speedup:.2f}x faster than the window=0 heap "
        f"loop at {num_tasks} tasks (gate {gate}x)"
    )
