"""The load generator and the serve bench harness.

Key invariant: the arrival-rate multiplier only changes wall-clock pacing —
the decision stream itself is bit-identical at every rate (virtual time is
carried by the submissions, not the wall clock).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.heuristics import make_heuristic
from repro.serve import decision_map, run_bench, slice_trace
from repro.serve.loadgen import replay_trace
from repro.workload.generator import WorkloadTrace


def _factory(pet):
    def make():
        return make_heuristic("PAMF", num_task_types=pet.num_task_types)

    return make


class TestSliceTrace:
    def test_none_returns_whole_trace(self, light_trace):
        assert slice_trace(light_trace, None) is light_trace

    def test_oversized_returns_whole_trace(self, light_trace):
        assert slice_trace(light_trace, len(light_trace) + 5) is light_trace

    def test_slice_preserves_task_type_universe(self, light_trace):
        sliced = slice_trace(light_trace, 3)
        assert len(sliced) == 3
        assert isinstance(sliced, WorkloadTrace)
        assert sliced.num_task_types == light_trace.num_task_types
        assert sliced.tasks == light_trace.tasks[:3]

    def test_empty_slice_rejected(self, light_trace):
        with pytest.raises(ValueError):
            slice_trace(light_trace, 0)


class TestReplayValidation:
    def test_bad_rate_rejected(self, light_trace):
        import asyncio

        with pytest.raises(ValueError, match="rate"):
            asyncio.run(replay_trace("/nonexistent.sock", light_trace, rate=0.0))

    def test_bad_time_unit_rejected(self, light_trace):
        import asyncio

        with pytest.raises(ValueError, match="time_unit"):
            asyncio.run(
                replay_trace("/nonexistent.sock", light_trace, time_unit_seconds=-1.0)
            )


class TestRunBench:
    def test_bench_writes_report_and_checks_equivalence(
        self, tmp_path, small_gamma_pet, light_trace
    ):
        out = tmp_path / "BENCH_serve.json"
        report = run_bench(
            small_gamma_pet,
            _factory(small_gamma_pet),
            light_trace,
            heuristic_name="PAMF",
            pet_kind="small",
            seed=5,
            rates=(200.0, 2000.0),
            check_offline=True,
            out_path=out,
        )
        assert report.equivalent_to_offline is True
        assert len(report.rates) == 2
        assert [rate.multiplier for rate in report.rates] == [200.0, 2000.0]
        for rate in report.rates:
            assert rate.tasks == len(light_trace)
            assert rate.decisions > 0
            assert rate.decisions_per_sec > 0
            assert math.isfinite(rate.p99_ms) and rate.p99_ms >= rate.p50_ms >= 0
            assert 0.0 <= rate.drop_rate <= 1.0
            assert math.isfinite(rate.robustness_percent)

        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        assert payload["benchmark"] == "repro.serve"
        assert payload["trace_tasks"] == len(light_trace)
        assert payload["equivalent_to_offline"] is True
        assert len(payload["rates"]) == 2
        for row in payload["rates"]:
            assert set(row) == {
                "multiplier",
                "tasks",
                "decisions",
                "rejected",
                "wall_seconds",
                "decisions_per_sec",
                "submitted_per_sec",
                "p50_ms",
                "p95_ms",
                "p99_ms",
                "max_ms",
                "drop_rate",
                "robustness_percent",
            }

    def test_decisions_identical_across_rates(self, small_gamma_pet, light_trace):
        """Rate multipliers change pacing, never outcomes."""
        import asyncio

        from repro.serve.loadgen import _bench_one_rate

        outcomes = [
            asyncio.run(
                _bench_one_rate(
                    small_gamma_pet,
                    _factory(small_gamma_pet),
                    light_trace,
                    seed=5,
                    rate=rate,
                    time_unit_seconds=0.001,
                    sim_config=None,
                )
            )
            for rate in (100.0, 10_000.0)
        ]
        maps = [decision_map(outcome.decisions) for outcome in outcomes]
        assert maps[0] == maps[1]
        # The full decision payloads (minus wall-clock latency stamps) match
        # too: same events in the same stream order.
        def strip(events):
            return [
                {k: v for k, v in event.items() if k != "latency_s"}
                for event in events
            ]

        assert strip(outcomes[0].decisions) == strip(outcomes[1].decisions)

    def test_empty_rates_rejected(self, small_gamma_pet, light_trace):
        with pytest.raises(ValueError):
            run_bench(
                small_gamma_pet,
                _factory(small_gamma_pet),
                light_trace,
                heuristic_name="PAMF",
                pet_kind="small",
                seed=5,
                rates=(),
            )

    def test_skipping_offline_check_leaves_flag_unset(self, small_gamma_pet, light_trace):
        report = run_bench(
            small_gamma_pet,
            _factory(small_gamma_pet),
            light_trace,
            heuristic_name="PAMF",
            pet_kind="small",
            seed=5,
            rates=(2000.0,),
            check_offline=False,
        )
        assert report.equivalent_to_offline is None
