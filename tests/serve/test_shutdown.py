"""Graceful-shutdown behaviour of the scheduler service.

Mirrors the executor's KeyboardInterrupt contract: stopping the service —
by API, by a client ``close``, or by an interrupt mid-bench — must drain
in-flight submissions (when asked), close and unlink the socket, and leave
no orphaned asyncio task behind.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.heuristics import make_heuristic
from repro.serve import (
    SchedulerCore,
    SchedulerService,
    decode_line,
    encode_line,
    spec_to_payload,
)
import repro.serve.loadgen as loadgen


def _core(pet, seed=5):
    return SchedulerCore(pet, make_heuristic("PAMF", num_task_types=pet.num_task_types), rng=seed)


async def _settled_tasks(deadline: float = 2.0) -> list[asyncio.Task]:
    """Every task other than the caller that refuses to finish promptly."""
    current = asyncio.current_task()
    for _ in range(int(deadline / 0.01)):
        leftover = [t for t in asyncio.all_tasks() if t is not current and not t.done()]
        if not leftover:
            return []
        await asyncio.sleep(0.01)
    return [t for t in asyncio.all_tasks() if t is not current and not t.done()]


class TestGracefulStop:
    def test_stop_drains_inflight_submissions(self, tmp_path, small_gamma_pet, small_trace):
        """Submissions already accepted into the inbox are processed before
        the admission loop is torn down."""

        async def drive():
            core = _core(small_gamma_pet)
            service = SchedulerService(core, tmp_path / "serve.sock")
            await service.start()
            for spec in small_trace:
                service._inbox.put_nowait(
                    ({"op": "submit", "task": spec_to_payload(spec)}, 0.0, object())
                )
            await service.stop(drain=True)
            assert await _settled_tasks() == []
            return core

        core = asyncio.run(drive())
        assert core.metrics.submitted == len(small_trace)

    def test_stop_without_drain_discards_backlog(self, tmp_path, small_gamma_pet, small_trace):
        async def drive():
            core = _core(small_gamma_pet)
            service = SchedulerService(core, tmp_path / "serve.sock")
            await service.start()
            for spec in small_trace:
                service._inbox.put_nowait(
                    ({"op": "submit", "task": spec_to_payload(spec)}, 0.0, object())
                )
            await service.stop(drain=False)
            assert await _settled_tasks() == []
            return core

        core = asyncio.run(drive())
        # The admission loop may have started on the backlog, but a no-drain
        # stop must not wait for all of it.
        assert core.metrics.submitted <= len(small_trace)

    def test_socket_closed_and_unlinked_after_stop(self, tmp_path, small_gamma_pet):
        socket_path = tmp_path / "serve.sock"

        async def drive():
            service = SchedulerService(_core(small_gamma_pet), socket_path)
            await service.start()
            assert socket_path.exists()
            reader, writer = await asyncio.open_unix_connection(str(socket_path))
            # Round-trip once so the connection is fully established (not
            # merely sitting in the accept backlog) before tearing down.
            writer.write(encode_line({"op": "stats"}))
            await writer.drain()
            stats = decode_line(await reader.readline())
            assert stats["event"] == "stats"
            await service.stop(drain=True)
            assert not socket_path.exists()
            # The accepted connection was torn down by the service.
            assert await reader.read() == b""
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            assert await _settled_tasks() == []

        asyncio.run(drive())
        with pytest.raises((ConnectionRefusedError, FileNotFoundError)):
            import socket as socket_module

            client = socket_module.socket(socket_module.AF_UNIX)
            try:
                client.connect(str(socket_path))
            finally:
                client.close()

    def test_stop_is_idempotent(self, tmp_path, small_gamma_pet):
        async def drive():
            service = SchedulerService(_core(small_gamma_pet), tmp_path / "serve.sock")
            await service.start()
            await service.stop(drain=True)
            await service.stop(drain=True)  # second stop returns immediately
            assert await _settled_tasks() == []

        asyncio.run(drive())

    def test_client_close_op_stops_the_service(self, tmp_path, small_gamma_pet, light_trace):
        """A wire `close` finalises the run and shuts the whole service down."""

        async def drive():
            core = _core(small_gamma_pet)
            service = SchedulerService(core, tmp_path / "serve.sock")
            await service.start()
            reader, writer = await asyncio.open_unix_connection(str(service.socket_path))
            for spec in light_trace:
                writer.write(encode_line({"op": "submit", "task": spec_to_payload(spec)}))
            writer.write(encode_line({"op": "close"}))
            await writer.drain()
            await asyncio.wait_for(service.wait_stopped(), timeout=10.0)
            writer.close()
            assert not service.socket_path.exists()
            assert await _settled_tasks() == []
            return core

        core = asyncio.run(drive())
        assert core.closed
        assert core.metrics.submitted == len(light_trace)


class TestInterruptMidBench:
    def test_keyboard_interrupt_leaves_no_orphans(
        self, monkeypatch, small_gamma_pet, light_trace
    ):
        """SIGINT mid-replay (KeyboardInterrupt in the loadgen client) still
        tears the per-rate service down: socket unlinked, loop drained."""
        created = []
        original_service = loadgen.SchedulerService

        class SpyService(original_service):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        async def interrupting_replay(socket_path, trace, **kwargs):
            reader, writer = await asyncio.open_unix_connection(str(socket_path))
            writer.write(
                encode_line({"op": "submit", "task": spec_to_payload(trace[0])})
            )
            await writer.drain()
            raise KeyboardInterrupt

        monkeypatch.setattr(loadgen, "SchedulerService", SpyService)
        monkeypatch.setattr(loadgen, "replay_trace", interrupting_replay)

        def factory():
            return make_heuristic("PAMF", num_task_types=small_gamma_pet.num_task_types)

        with pytest.raises(KeyboardInterrupt):
            loadgen.run_bench(
                small_gamma_pet,
                factory,
                light_trace,
                heuristic_name="PAMF",
                pet_kind="small",
                seed=5,
                rates=(100.0,),
                check_offline=False,
            )
        assert len(created) == 1
        [service] = created
        assert not service.socket_path.exists()
