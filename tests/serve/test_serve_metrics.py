"""Bounded latency histogram + hardened, exactly-merging ``merge_snapshots``."""

from __future__ import annotations

import math

import pytest

from repro.obs import LogBucketHistogram
from repro.serve.metrics import LatencyHistogram, ServiceMetrics, merge_snapshots


def test_latency_histogram_is_bounded():
    hist = LatencyHistogram()
    buckets = hist.num_buckets
    for i in range(50_000):
        hist.record((i % 1000 + 1) * 1e-5)
    assert hist.num_buckets == buckets
    assert len(hist) == 50_000
    assert not hasattr(hist, "samples")  # the unbounded list is gone


def test_latency_histogram_summary_keys_are_backward_compatible():
    hist = LatencyHistogram()
    hist.record(0.004)
    summary = hist.summary()
    assert set(summary) == {"count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"}
    assert summary["count"] == 1
    assert summary["max_s"] == 0.004


def test_latency_histogram_rejects_bad_samples():
    hist = LatencyHistogram()
    for bad in (-0.1, float("nan"), float("inf")):
        with pytest.raises(ValueError):
            hist.record(bad)


def test_snapshot_counter_keys_unchanged_and_hist_added():
    metrics = ServiceMetrics()
    metrics.submitted = 4
    metrics.admission.record(0.002)
    snap = metrics.snapshot()
    assert set(snap) == {
        "submitted",
        "rejected",
        "rejected_overload",
        "assigned",
        "completed",
        "dropped",
        "decisions",
        "mapping_events",
        "admission_latency",
    }
    latency = snap["admission_latency"]
    assert latency["count"] == 1
    hist = LogBucketHistogram.from_payload(latency["hist"])
    assert hist.count == 1


def test_merge_empty_input_returns_well_formed_zero_snapshot():
    merged = merge_snapshots([])
    assert merged["submitted"] == 0 and merged["decisions"] == 0
    latency = merged["admission_latency"]
    assert latency["count"] == 0
    for key in ("mean_s", "p50_s", "p95_s", "p99_s", "max_s"):
        assert math.isnan(latency[key])


def test_merge_tolerates_missing_keys_and_junk_shards():
    merged = merge_snapshots(
        [{"submitted": 3}, {"completed": "not-a-number"}, None, "junk", {}]
    )
    assert merged["submitted"] == 3
    assert merged["completed"] == 0
    assert merged["admission_latency"]["count"] == 0


def test_merge_is_exact_when_hist_payloads_present():
    a, b, combined = ServiceMetrics(), ServiceMetrics(), ServiceMetrics()
    for value in (0.001, 0.004, 0.3):
        a.admission.record(value)
        combined.admission.record(value)
    for value in (0.0002, 0.09):
        b.admission.record(value)
        combined.admission.record(value)
    a.submitted, b.submitted = 3, 2
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["submitted"] == 5
    expected = combined.admission.summary()
    latency = merged["admission_latency"]
    for key, value in expected.items():
        assert latency[key] == value
    # The merged snapshot carries a mergeable hist itself (re-mergeable).
    again = merge_snapshots([merged, ServiceMetrics().snapshot()])
    assert again["admission_latency"]["count"] == 5


def test_empty_shards_are_identities_not_skew():
    busy = ServiceMetrics()
    busy.admission.record(0.01)
    fresh = ServiceMetrics()  # never produced a latency sample
    merged = merge_snapshots([busy.snapshot(), fresh.snapshot()])
    assert merged["admission_latency"]["count"] == 1
    assert merged["admission_latency"]["max_s"] == 0.01


def test_merge_falls_back_conservatively_without_hist():
    legacy_a = {
        "submitted": 2,
        "admission_latency": {
            "count": 2, "mean_s": 0.01, "p50_s": 0.01, "p95_s": 0.02,
            "p99_s": 0.02, "max_s": 0.02,
        },
    }
    legacy_b = {
        "submitted": 1,
        "admission_latency": {
            "count": 1, "mean_s": 0.1, "p50_s": 0.1, "p95_s": 0.1,
            "p99_s": 0.1, "max_s": 0.1,
        },
    }
    merged = merge_snapshots([legacy_a, legacy_b])
    latency = merged["admission_latency"]
    assert latency["count"] == 3
    assert latency["mean_s"] == pytest.approx((2 * 0.01 + 1 * 0.1) / 3)
    # Worst-shard percentiles: a conservative upper bound.
    assert latency["p95_s"] == 0.1 and latency["max_s"] == 0.1
    assert "hist" not in latency


def test_mixed_hist_and_legacy_falls_back():
    modern = ServiceMetrics()
    modern.admission.record(0.005)
    legacy = {
        "submitted": 0,
        "admission_latency": {
            "count": 1, "mean_s": 0.2, "p50_s": 0.2, "p95_s": 0.2,
            "p99_s": 0.2, "max_s": 0.2,
        },
    }
    merged = merge_snapshots([modern.snapshot(), legacy])
    latency = merged["admission_latency"]
    assert latency["count"] == 2
    assert latency["max_s"] == 0.2
