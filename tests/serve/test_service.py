"""Replay equivalence and admission semantics of the scheduler service.

The load-bearing property: a trace streamed through :class:`SchedulerCore`
(or over the socket) in arrival order produces decisions *bit-identical* to
an offline batch :meth:`HCSimulator.run` of the same trace — mapping,
drop set, drop reasons, and on-time flags all equal with atol=0.  The full
reference trace (``examples/transcoding_660.trace.json``, PAMF) is pinned
here, per the acceptance criteria.
"""

from __future__ import annotations

import asyncio
import itertools
from pathlib import Path

import pytest

from repro.heuristics import make_heuristic
from repro.pet.builders import build_transcoding_pet
from repro.serve import (
    SchedulerCore,
    SchedulerService,
    decision_map,
    offline_decision_map,
    replay_trace,
    slice_trace,
    spec_from_payload,
    spec_to_payload,
)
from repro.simulator.engine import HCSimulator, SimulatorConfig
from repro.workload.spec import TaskSpec
from repro.workload.traces import load_trace

REFERENCE_TRACE = (
    Path(__file__).resolve().parent.parent.parent / "examples" / "transcoding_660.trace.json"
)


def _heuristic(pet, name="PAMF"):
    return make_heuristic(name, num_task_types=pet.num_task_types)


def _offline(pet, trace, *, name="PAMF", seed=5):
    return HCSimulator(pet, _heuristic(pet, name), rng=seed).run(trace)


class TestReplayEquivalence:
    @pytest.mark.parametrize("name", ["MM", "PAM", "PAMF"])
    def test_streamed_matches_offline(self, small_gamma_pet, small_trace, name):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet, name), rng=5)
        decisions = []
        for spec in small_trace:
            decisions.extend(core.submit(spec))
        decisions.extend(core.close())
        offline = _offline(small_gamma_pet, small_trace, name=name)
        assert decision_map(decisions) == offline_decision_map(offline)
        assert core.result.summary() == offline.summary()

    def test_full_reference_trace_pinned(self):
        """The acceptance gate: transcoding_660 + PAMF, streamed vs batch."""
        trace = load_trace(REFERENCE_TRACE)
        pet = build_transcoding_pet(rng=2019)
        core = SchedulerCore(pet, _heuristic(pet), rng=2021)
        decisions = []
        for spec in trace:
            decisions.extend(core.submit(spec))
        decisions.extend(core.close())
        offline = HCSimulator(pet, _heuristic(pet), rng=2021).run(trace)
        streamed_map = decision_map(decisions)
        assert len(streamed_map) == len(trace) == 660
        assert streamed_map == offline_decision_map(offline)
        assert core.result.summary() == offline.summary()

    @pytest.mark.parametrize("window", [6, 20])
    def test_batched_rounds_streamed_matches_offline(
        self, small_gamma_pet, small_trace, window
    ):
        """Streaming equals batch replay in batched-rounds mode too."""
        config = SimulatorConfig(batch_window=window)
        core = SchedulerCore(
            small_gamma_pet, _heuristic(small_gamma_pet), config=config, rng=5
        )
        decisions = []
        for spec in small_trace:
            decisions.extend(core.submit(spec))
        decisions.extend(core.close())
        offline = HCSimulator(
            small_gamma_pet, _heuristic(small_gamma_pet), config=config, rng=5
        ).run(small_trace)
        assert decision_map(decisions) == offline_decision_map(offline)
        assert core.result.summary() == offline.summary()

    def test_reference_trace_batched_rounds_pinned(self):
        """transcoding_660 + PAMF under batched rounds: served vs offline."""
        trace = load_trace(REFERENCE_TRACE)
        pet = build_transcoding_pet(rng=2019)
        config = SimulatorConfig(batch_window=60)
        core = SchedulerCore(pet, _heuristic(pet), config=config, rng=2021)
        decisions = []
        for spec in trace:
            decisions.extend(core.submit(spec))
        decisions.extend(core.close())
        offline = HCSimulator(pet, _heuristic(pet), config=config, rng=2021).run(trace)
        streamed_map = decision_map(decisions)
        assert len(streamed_map) == len(trace) == 660
        assert streamed_map == offline_decision_map(offline)
        assert core.result.summary() == offline.summary()
        # Batching must actually have batched: far fewer rounds than events.
        assert core.result.counters.mapping_events < len(trace)

    def test_simultaneous_arrivals_share_a_mapping_event(self, small_gamma_pet, small_trace):
        """Tasks submitted one by one with equal arrivals still batch."""
        burst = [spec for spec in small_trace if spec.arrival == small_trace[0].arrival]
        assert burst, "trace should start with at least one task"
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        for spec in small_trace:
            core.submit(spec)
        core.close()
        offline = _offline(small_gamma_pet, small_trace)
        assert core.result.counters.mapping_events == offline.counters.mapping_events

    def test_socket_stream_matches_offline(self, tmp_path, small_gamma_pet, small_trace):
        """Socket-served decisions equal the offline map, end to end."""

        async def drive():
            core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
            service = SchedulerService(core, tmp_path / "serve.sock")
            await service.start()
            try:
                return await replay_trace(
                    service.socket_path, small_trace, rate=10_000.0, close=True
                )
            finally:
                await service.stop(drain=False)

        outcome = asyncio.run(drive())
        offline = _offline(small_gamma_pet, small_trace)
        assert decision_map(outcome.decisions) == offline_decision_map(offline)
        assert outcome.closed is not None
        assert outcome.closed["summary"] == offline.summary()
        assert outcome.closed["metrics"]["submitted"] == len(small_trace)

    def test_decision_latency_uses_injected_clock(self, small_gamma_pet, small_trace):
        ticks = itertools.count()
        core = SchedulerCore(
            small_gamma_pet,
            _heuristic(small_gamma_pet),
            rng=5,
            clock=lambda: float(next(ticks)),
        )
        for spec in small_trace:
            core.submit(spec)
        core.close()
        summary = core.metrics.admission.summary()
        assert summary["count"] == len(small_trace)
        assert summary["max_s"] >= 0.0


class TestAdmissionGuards:
    def test_late_arrival_rejected_and_counted(self, small_gamma_pet):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        core.submit(TaskSpec(arrival=100, task_id=0, task_type=0, deadline=400))
        # A later instant moves the processed frontier past time 100...
        core.submit(TaskSpec(arrival=150, task_id=1, task_type=0, deadline=500))
        # ...so an arrival behind the frontier is late and must be rejected.
        with pytest.raises(ValueError, match="already processed"):
            core.submit(TaskSpec(arrival=40, task_id=2, task_type=0, deadline=300))
        assert core.metrics.rejected == 1
        assert core.metrics.submitted == 2

    def test_duplicate_task_id_rejected(self, small_gamma_pet):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        core.submit(TaskSpec(arrival=10, task_id=7, task_type=0, deadline=200))
        with pytest.raises(ValueError, match="already injected"):
            core.submit(TaskSpec(arrival=10, task_id=7, task_type=1, deadline=250))
        assert core.metrics.rejected == 1

    def test_same_instant_resubmission_allowed(self, small_gamma_pet):
        """Equal-arrival submissions are not 'late' — the batch is open."""
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        core.submit(TaskSpec(arrival=50, task_id=0, task_type=0, deadline=300))
        core.submit(TaskSpec(arrival=50, task_id=1, task_type=1, deadline=300))
        assert core.metrics.submitted == 2

    def test_submit_after_close_raises(self, small_gamma_pet):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        core.submit(TaskSpec(arrival=10, task_id=0, task_type=0, deadline=100))
        core.close()
        with pytest.raises(RuntimeError, match="closed"):
            core.submit(TaskSpec(arrival=20, task_id=1, task_type=0, deadline=120))
        with pytest.raises(RuntimeError, match="closed"):
            core.flush()
        with pytest.raises(RuntimeError, match="closed"):
            core.close()

    def test_result_unavailable_before_close(self, small_gamma_pet):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        with pytest.raises(RuntimeError, match="close"):
            core.result

    def test_flush_forces_held_instant(self, small_gamma_pet):
        """Without flush the watermark batch is held open; flush maps it."""
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        held = core.submit(TaskSpec(arrival=10, task_id=0, task_type=0, deadline=500))
        assert held == []  # the time-10 batch is still open
        flushed = core.flush()
        assert any(d.action == "assigned" and d.task_id == 0 for d in flushed)


class TestWireProtocol:
    def test_spec_payload_round_trip(self):
        spec = TaskSpec(arrival=5, task_id=3, task_type=2, deadline=99)
        assert spec_from_payload(spec_to_payload(spec)) == spec

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"task_id": 1, "task_type": 0, "arrival": 4},  # missing deadline
            {"task_id": 1, "task_type": 0, "arrival": 4.5, "deadline": 50},
            {"task_id": True, "task_type": 0, "arrival": 4, "deadline": 50},
            {"task_id": 1, "task_type": 0, "arrival": float("inf"), "deadline": 50},
            {"task_id": 1, "task_type": 0, "arrival": 60, "deadline": 50},  # deadline<arrival
            "not an object",
        ],
    )
    def test_malformed_payload_rejected(self, payload):
        with pytest.raises(ValueError):
            spec_from_payload(payload)
