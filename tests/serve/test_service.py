"""Replay equivalence and admission semantics of the scheduler service.

The load-bearing property: a trace streamed through :class:`SchedulerCore`
(or over the socket) in arrival order produces decisions *bit-identical* to
an offline batch :meth:`HCSimulator.run` of the same trace — mapping,
drop set, drop reasons, and on-time flags all equal with atol=0.  The full
reference trace (``examples/transcoding_660.trace.json``, PAMF) is pinned
here, per the acceptance criteria.
"""

from __future__ import annotations

import asyncio
import itertools
from pathlib import Path

import pytest

from repro.heuristics import make_heuristic
from repro.pet.builders import build_transcoding_pet
from repro.serve import (
    SchedulerCore,
    SchedulerService,
    decision_map,
    decode_line,
    encode_line,
    offline_decision_map,
    parse_endpoint,
    replay_trace,
    slice_trace,
    spec_from_payload,
    spec_to_payload,
)
from repro.simulator.engine import HCSimulator, SimulatorConfig
from repro.workload.spec import TaskSpec
from repro.workload.traces import load_trace

REFERENCE_TRACE = (
    Path(__file__).resolve().parent.parent.parent / "examples" / "transcoding_660.trace.json"
)


def _heuristic(pet, name="PAMF"):
    return make_heuristic(name, num_task_types=pet.num_task_types)


def _offline(pet, trace, *, name="PAMF", seed=5):
    return HCSimulator(pet, _heuristic(pet, name), rng=seed).run(trace)


class TestReplayEquivalence:
    @pytest.mark.parametrize("name", ["MM", "PAM", "PAMF"])
    def test_streamed_matches_offline(self, small_gamma_pet, small_trace, name):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet, name), rng=5)
        decisions = []
        for spec in small_trace:
            decisions.extend(core.submit(spec))
        decisions.extend(core.close())
        offline = _offline(small_gamma_pet, small_trace, name=name)
        assert decision_map(decisions) == offline_decision_map(offline)
        assert core.result.summary() == offline.summary()

    def test_full_reference_trace_pinned(self):
        """The acceptance gate: transcoding_660 + PAMF, streamed vs batch."""
        trace = load_trace(REFERENCE_TRACE)
        pet = build_transcoding_pet(rng=2019)
        core = SchedulerCore(pet, _heuristic(pet), rng=2021)
        decisions = []
        for spec in trace:
            decisions.extend(core.submit(spec))
        decisions.extend(core.close())
        offline = HCSimulator(pet, _heuristic(pet), rng=2021).run(trace)
        streamed_map = decision_map(decisions)
        assert len(streamed_map) == len(trace) == 660
        assert streamed_map == offline_decision_map(offline)
        assert core.result.summary() == offline.summary()

    @pytest.mark.parametrize("window", [6, 20])
    def test_batched_rounds_streamed_matches_offline(
        self, small_gamma_pet, small_trace, window
    ):
        """Streaming equals batch replay in batched-rounds mode too."""
        config = SimulatorConfig(batch_window=window)
        core = SchedulerCore(
            small_gamma_pet, _heuristic(small_gamma_pet), config=config, rng=5
        )
        decisions = []
        for spec in small_trace:
            decisions.extend(core.submit(spec))
        decisions.extend(core.close())
        offline = HCSimulator(
            small_gamma_pet, _heuristic(small_gamma_pet), config=config, rng=5
        ).run(small_trace)
        assert decision_map(decisions) == offline_decision_map(offline)
        assert core.result.summary() == offline.summary()

    def test_reference_trace_batched_rounds_pinned(self):
        """transcoding_660 + PAMF under batched rounds: served vs offline."""
        trace = load_trace(REFERENCE_TRACE)
        pet = build_transcoding_pet(rng=2019)
        config = SimulatorConfig(batch_window=60)
        core = SchedulerCore(pet, _heuristic(pet), config=config, rng=2021)
        decisions = []
        for spec in trace:
            decisions.extend(core.submit(spec))
        decisions.extend(core.close())
        offline = HCSimulator(pet, _heuristic(pet), config=config, rng=2021).run(trace)
        streamed_map = decision_map(decisions)
        assert len(streamed_map) == len(trace) == 660
        assert streamed_map == offline_decision_map(offline)
        assert core.result.summary() == offline.summary()
        # Batching must actually have batched: far fewer rounds than events.
        assert core.result.counters.mapping_events < len(trace)

    def test_simultaneous_arrivals_share_a_mapping_event(self, small_gamma_pet, small_trace):
        """Tasks submitted one by one with equal arrivals still batch."""
        burst = [spec for spec in small_trace if spec.arrival == small_trace[0].arrival]
        assert burst, "trace should start with at least one task"
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        for spec in small_trace:
            core.submit(spec)
        core.close()
        offline = _offline(small_gamma_pet, small_trace)
        assert core.result.counters.mapping_events == offline.counters.mapping_events

    def test_socket_stream_matches_offline(self, tmp_path, small_gamma_pet, small_trace):
        """Socket-served decisions equal the offline map, end to end."""

        async def drive():
            core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
            service = SchedulerService(core, tmp_path / "serve.sock")
            await service.start()
            try:
                return await replay_trace(
                    service.socket_path, small_trace, rate=10_000.0, close=True
                )
            finally:
                await service.stop(drain=False)

        outcome = asyncio.run(drive())
        offline = _offline(small_gamma_pet, small_trace)
        assert decision_map(outcome.decisions) == offline_decision_map(offline)
        assert outcome.closed is not None
        assert outcome.closed["summary"] == offline.summary()
        assert outcome.closed["metrics"]["submitted"] == len(small_trace)

    def test_decision_latency_uses_injected_clock(self, small_gamma_pet, small_trace):
        ticks = itertools.count()
        core = SchedulerCore(
            small_gamma_pet,
            _heuristic(small_gamma_pet),
            rng=5,
            clock=lambda: float(next(ticks)),
        )
        for spec in small_trace:
            core.submit(spec)
        core.close()
        summary = core.metrics.admission.summary()
        assert summary["count"] == len(small_trace)
        assert summary["max_s"] >= 0.0


class TestAdmissionGuards:
    def test_late_arrival_rejected_and_counted(self, small_gamma_pet):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        core.submit(TaskSpec(arrival=100, task_id=0, task_type=0, deadline=400))
        # A later instant moves the processed frontier past time 100...
        core.submit(TaskSpec(arrival=150, task_id=1, task_type=0, deadline=500))
        # ...so an arrival behind the frontier is late and must be rejected.
        with pytest.raises(ValueError, match="already processed"):
            core.submit(TaskSpec(arrival=40, task_id=2, task_type=0, deadline=300))
        assert core.metrics.rejected == 1
        assert core.metrics.submitted == 2

    def test_duplicate_task_id_rejected(self, small_gamma_pet):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        core.submit(TaskSpec(arrival=10, task_id=7, task_type=0, deadline=200))
        with pytest.raises(ValueError, match="already injected"):
            core.submit(TaskSpec(arrival=10, task_id=7, task_type=1, deadline=250))
        assert core.metrics.rejected == 1

    def test_same_instant_resubmission_allowed(self, small_gamma_pet):
        """Equal-arrival submissions are not 'late' — the batch is open."""
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        core.submit(TaskSpec(arrival=50, task_id=0, task_type=0, deadline=300))
        core.submit(TaskSpec(arrival=50, task_id=1, task_type=1, deadline=300))
        assert core.metrics.submitted == 2

    def test_submit_after_close_raises(self, small_gamma_pet):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        core.submit(TaskSpec(arrival=10, task_id=0, task_type=0, deadline=100))
        core.close()
        with pytest.raises(RuntimeError, match="closed"):
            core.submit(TaskSpec(arrival=20, task_id=1, task_type=0, deadline=120))
        with pytest.raises(RuntimeError, match="closed"):
            core.flush()
        with pytest.raises(RuntimeError, match="closed"):
            core.close()

    def test_result_unavailable_before_close(self, small_gamma_pet):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        with pytest.raises(RuntimeError, match="close"):
            core.result

    def test_flush_forces_held_instant(self, small_gamma_pet):
        """Without flush the watermark batch is held open; flush maps it."""
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        held = core.submit(TaskSpec(arrival=10, task_id=0, task_type=0, deadline=500))
        assert held == []  # the time-10 batch is still open
        flushed = core.flush()
        assert any(d.action == "assigned" and d.task_id == 0 for d in flushed)


class TestRejectionStateIsolation:
    def test_rejected_submissions_leave_stream_identical(
        self, small_gamma_pet, small_trace
    ):
        """A rejected submit (duplicate id, late arrival) must not move the
        engine frontier, fire mapping events, or perturb any later decision
        — the probed core's stream stays bit-identical to a control core
        that never saw the rejects."""
        control = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        probed = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        control_decisions: list = []
        probed_decisions: list = []
        mid = len(small_trace) // 2
        for index, spec in enumerate(small_trace):
            control_decisions.extend(control.submit(spec))
            probed_decisions.extend(probed.submit(spec))
            if index == mid:
                frontier = probed._sim._processed_through
                mapping_events = probed.metrics.mapping_events
                with pytest.raises(ValueError, match="already processed"):
                    probed.submit(
                        TaskSpec(arrival=0, task_id=999_001, task_type=0, deadline=10**6)
                    )
                with pytest.raises(ValueError, match="already injected"):
                    probed.submit(spec)
                assert probed._sim._processed_through == frontier
                assert probed.metrics.mapping_events == mapping_events
                assert probed.take_pending() == []
        control_decisions.extend(control.close())
        probed_decisions.extend(probed.close())
        assert probed.metrics.rejected == 2
        assert decision_map(probed_decisions) == decision_map(control_decisions)
        assert probed.result.summary() == control.result.summary()


class TestBookkeepingBounds:
    def test_per_task_state_pruned_at_terminal(self, small_gamma_pet, small_trace):
        """Submission bookkeeping is O(in-flight tasks), not O(all tasks
        ever submitted), and empty once the run closes."""
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        for spec in small_trace:
            core.submit(spec)
            in_flight = (
                core.metrics.submitted - core.metrics.completed - core.metrics.dropped
            )
            assert len(core._submit_wall) <= in_flight
            assert len(core._first_decided) <= in_flight
        core.close()
        assert core._submit_wall == {}
        assert core._first_decided == set()


class TestAdmissionLoopResilience:
    def test_unexpected_failure_is_loud_and_fatal(self, tmp_path, small_gamma_pet):
        """A poisoned request must not kill the admission loop silently:
        the client gets a fatal error event, the failure is recorded, and
        the service shuts down instead of stalling every client forever."""

        async def drive():
            core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)

            def poisoned(spec, *, received=None):
                raise TypeError("poisoned request")

            core.submit = poisoned
            service = SchedulerService(core, tmp_path / "serve.sock")
            await service.start()
            reader, writer = await asyncio.open_unix_connection(str(service.socket_path))
            spec = TaskSpec(arrival=1, task_id=0, task_type=0, deadline=100)
            writer.write(encode_line({"op": "submit", "task": spec_to_payload(spec)}))
            await writer.drain()
            events = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                events.append(decode_line(line))
            await service.wait_stopped()
            writer.close()
            return service, events

        service, events = asyncio.run(drive())
        errors = [e for e in events if e.get("event") == "error"]
        assert errors and errors[0]["fatal"] is True
        assert "TypeError" in errors[0]["message"]
        assert isinstance(service.failure, TypeError)

    def test_error_path_still_broadcasts_pending_decisions(
        self, tmp_path, small_gamma_pet
    ):
        """Decisions produced before a mid-submit failure must reach the
        clients *before* the error event — never stranded in the core's
        pending buffer to surface attributed to the next request."""

        async def drive():
            core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)

            def failing(spec, *, received=None):
                core._emit(spec.task_id, "assigned", time=0, machine=0)
                raise RuntimeError("engine fell over mid-submit")

            core.submit = failing
            service = SchedulerService(core, tmp_path / "serve.sock")
            await service.start()
            reader, writer = await asyncio.open_unix_connection(str(service.socket_path))
            spec = TaskSpec(arrival=1, task_id=0, task_type=0, deadline=100)
            writer.write(encode_line({"op": "submit", "task": spec_to_payload(spec)}))
            await writer.drain()
            first = decode_line(await reader.readline())
            second = decode_line(await reader.readline())
            await service.stop(drain=False)
            writer.close()
            return first, second

        first, second = asyncio.run(drive())
        assert first["event"] == "decision" and first["task_id"] == 0
        assert second["event"] == "error" and second["task_id"] == 0
        assert "fell over" in second["message"]


class TestBackpressure:
    def test_full_inbox_rejects_submissions_explicitly(self, tmp_path, small_gamma_pet):
        """With the admission loop frozen, submissions beyond the bounded
        inbox are answered accepted=false and never reach the engine."""

        async def drive():
            core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
            service = SchedulerService(core, tmp_path / "serve.sock", inbox_limit=2)
            await service.start()
            assert service._admission is not None
            service._admission.cancel()
            await asyncio.sleep(0)
            reader, writer = await asyncio.open_unix_connection(str(service.socket_path))
            for task_id in range(4):
                writer.write(
                    encode_line(
                        {
                            "op": "submit",
                            "task": {
                                "task_id": task_id,
                                "task_type": 0,
                                "arrival": 1,
                                "deadline": 100,
                            },
                        }
                    )
                )
            await writer.drain()
            rejections = [decode_line(await reader.readline()) for _ in range(2)]
            await service.stop(drain=False)
            writer.close()
            return core, rejections

        core, rejections = asyncio.run(drive())
        for event in rejections:
            assert event["event"] == "accepted"
            assert event["accepted"] is False
            assert event["reason"] == "overloaded"
        assert {event["task_id"] for event in rejections} == {2, 3}
        assert core.metrics.rejected_overload == 2
        assert core.metrics.submitted == 0  # nothing reached the engine

    def test_inbox_limit_validated(self, tmp_path, small_gamma_pet):
        core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
        with pytest.raises(ValueError, match="inbox_limit"):
            SchedulerService(core, tmp_path / "serve.sock", inbox_limit=0)


class TestTcpTransport:
    def test_tcp_stream_matches_offline(self, small_gamma_pet, small_trace):
        """The same wire protocol over TCP: replay-equivalence holds and
        the ephemeral bound port is readable back from the endpoint."""

        async def drive():
            core = SchedulerCore(small_gamma_pet, _heuristic(small_gamma_pet), rng=5)
            service = SchedulerService(core, "tcp:127.0.0.1:0")
            await service.start()
            assert service.socket_path is None
            host, port = service.endpoint.rsplit(":", 2)[-2:]
            assert host == "127.0.0.1" and int(port) > 0
            try:
                return await replay_trace(
                    service.endpoint, small_trace, rate=10_000.0, close=True
                )
            finally:
                await service.stop(drain=False)

        outcome = asyncio.run(drive())
        offline = _offline(small_gamma_pet, small_trace)
        assert decision_map(outcome.decisions) == offline_decision_map(offline)
        assert outcome.closed is not None
        assert outcome.closed["summary"] == offline.summary()


class TestEndpoints:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("/tmp/serve.sock", ("unix", "/tmp/serve.sock")),
            ("unix:/tmp/serve.sock", ("unix", "/tmp/serve.sock")),
            ("tcp:127.0.0.1:7077", ("tcp", "127.0.0.1", 7077)),
            ("tcp://127.0.0.1:7077", ("tcp", "127.0.0.1", 7077)),
            ("tcp::0", ("tcp", "127.0.0.1", 0)),
        ],
    )
    def test_parse_endpoint(self, value, expected):
        assert parse_endpoint(value) == expected

    @pytest.mark.parametrize(
        "value", ["", "tcp:7077", "tcp:host:notaport", "tcp:host:70777"]
    )
    def test_bad_endpoints_rejected(self, value):
        with pytest.raises(ValueError):
            parse_endpoint(value)


class TestWireProtocol:
    def test_spec_payload_round_trip(self):
        spec = TaskSpec(arrival=5, task_id=3, task_type=2, deadline=99)
        assert spec_from_payload(spec_to_payload(spec)) == spec

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"task_id": 1, "task_type": 0, "arrival": 4},  # missing deadline
            {"task_id": 1, "task_type": 0, "arrival": 4.5, "deadline": 50},
            {"task_id": True, "task_type": 0, "arrival": 4, "deadline": 50},
            {"task_id": 1, "task_type": 0, "arrival": float("inf"), "deadline": 50},
            {"task_id": 1, "task_type": 0, "arrival": 60, "deadline": 50},  # deadline<arrival
            "not an object",
        ],
    )
    def test_malformed_payload_rejected(self, payload):
        with pytest.raises(ValueError):
            spec_from_payload(payload)
