"""Multi-worker sharded admission: routing, per-shard replay equivalence,
merged stream sequencing, and front-end backpressure.

The load-bearing property mirrors the single-process contract, per shard:
each worker's decision stream must be bit-identical to an offline
:meth:`HCSimulator.run` of exactly that worker's task subsequence (the
:func:`partition_trace` slice, seeded with :func:`shard_seed`).  The merged
stream is the union of the per-shard streams with one globally monotone
``seq``.
"""

from __future__ import annotations

import asyncio
import pickle

import pytest

from repro.heuristics import make_heuristic
from repro.serve import (
    ShardSpec,
    ShardedSchedulerService,
    build_shard_specs,
    decision_map,
    offline_decision_map,
    partition_trace,
    replay_trace,
    shard_for,
    shard_seed,
)
from repro.simulator.engine import HCSimulator


def _heuristic(pet, name="PAMF"):
    return make_heuristic(name, num_task_types=pet.num_task_types)


class TestShardRouting:
    def test_shard_for_is_pinned(self):
        """BLAKE2s-based routing is stable across processes *and* releases —
        changing it silently would break per-shard replay equivalence."""
        assert [shard_for(t, 2) for t in range(8)] == [0, 0, 1, 1, 1, 0, 1, 0]
        assert [shard_for(t, 3) for t in range(8)] == [1, 1, 0, 1, 2, 0, 0, 2]

    def test_shard_for_range_and_determinism(self):
        for num_shards in (1, 2, 5):
            for task_type in range(32):
                shard = shard_for(task_type, num_shards)
                assert 0 <= shard < num_shards
                assert shard == shard_for(task_type, num_shards)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_for(0, 0)

    def test_partition_preserves_arrival_order(self, small_trace):
        shards = partition_trace(small_trace, 2)
        assert sum(len(s) for s in shards) == len(small_trace)
        for shard, specs in enumerate(shards):
            assert all(shard_for(s.task_type, 2) == shard for s in specs)
            arrivals = [s.arrival for s in specs]
            assert arrivals == sorted(arrivals)

    def test_shard_seed_derivable(self):
        assert shard_seed(2019, 0) == 2019
        assert shard_seed(2019, 3) == 2022


class TestShardSpecs:
    def test_build_specs_seeded_per_shard(self, small_gamma_pet):
        specs = build_shard_specs(small_gamma_pet, "PAMF", workers=3, seed=7)
        assert [s.seed for s in specs] == [7, 8, 9]
        assert all(s.heuristic == "PAMF" for s in specs)

    def test_spec_picklable_for_spawn(self, small_gamma_pet):
        spec = build_shard_specs(small_gamma_pet, "PAMF", workers=2, seed=7)[1]
        clone = pickle.loads(pickle.dumps(spec))
        assert isinstance(clone, ShardSpec)
        assert clone.seed == spec.seed
        core = clone.build_core()
        assert core.metrics.submitted == 0

    def test_zero_workers_rejected(self, small_gamma_pet):
        with pytest.raises(ValueError):
            build_shard_specs(small_gamma_pet, "PAMF", workers=0, seed=7)


class TestShardedReplayEquivalence:
    @pytest.mark.parametrize("listen", ["unix", "tcp:127.0.0.1:0"])
    def test_two_workers_match_offline_per_shard(
        self, tmp_path, small_gamma_pet, light_trace, listen
    ):
        workers, seed = 2, 5
        endpoint = tmp_path / "front.sock" if listen == "unix" else listen

        async def drive():
            specs = build_shard_specs(
                small_gamma_pet, "PAMF", workers=workers, seed=seed
            )
            service = ShardedSchedulerService(specs, endpoint)
            await service.start()
            try:
                outcome = await replay_trace(
                    service.endpoint, light_trace, rate=10_000.0, close=True
                )
            finally:
                await service.stop(drain=False)
            workers_alive = [
                s.process.is_alive() for s in service._shards if s.process is not None
            ]
            return service, outcome, workers_alive

        service, outcome, workers_alive = asyncio.run(drive())
        assert service.failure is None
        assert not any(workers_alive), "worker processes must not outlive the front-end"

        # One globally monotone sequence over the merged stream.
        assert [e["seq"] for e in outcome.decisions] == list(range(len(outcome.decisions)))
        assert {e["shard"] for e in outcome.decisions} <= set(range(workers))

        # Per-shard: each worker's stream equals the offline replay of
        # exactly its task subsequence, and shard_seq is its own order.
        merged_expected: dict = {}
        for shard, shard_tasks in enumerate(partition_trace(light_trace, workers)):
            shard_events = [e for e in outcome.decisions if e["shard"] == shard]
            shard_seqs = [e["shard_seq"] for e in shard_events]
            assert shard_seqs == sorted(shard_seqs)
            offline = HCSimulator(
                small_gamma_pet,
                _heuristic(small_gamma_pet),
                rng=shard_seed(seed, shard),
            ).run(shard_tasks)
            expected = offline_decision_map(offline)
            assert decision_map(shard_events) == expected
            merged_expected.update(expected)

        # The merged stream is exactly the union of the shard streams.
        assert decision_map(outcome.decisions) == merged_expected
        assert len(merged_expected) == len(light_trace)

        # The merged closed payload sums the per-shard runs.
        assert outcome.closed is not None
        assert outcome.closed["summary"]["tasks"] == float(len(light_trace))
        shard_payloads = outcome.closed["shards"]
        assert len(shard_payloads) == workers
        summed: dict = {}
        for payload in shard_payloads:
            for status, count in payload["status_counts"].items():
                summed[status] = summed.get(status, 0) + count
        assert outcome.closed["status_counts"] == summed
        assert outcome.closed["metrics"]["submitted"] == len(light_trace)


class TestFrontEndBackpressure:
    def test_inflight_cap_rejects_excess_submissions(
        self, tmp_path, small_gamma_pet, small_trace
    ):
        """A one-slot in-flight cap under a burst must turn submissions
        away with accepted=false — and every submission is either accepted
        by a worker or rejected at the door, never lost."""

        async def drive():
            specs = build_shard_specs(small_gamma_pet, "PAMF", workers=2, seed=5)
            service = ShardedSchedulerService(
                specs, tmp_path / "front.sock", max_inflight=1
            )
            await service.start()
            try:
                outcome = await replay_trace(
                    service.endpoint, small_trace, rate=100_000.0, close=True
                )
            finally:
                await service.stop(drain=False)
            return service, outcome

        service, outcome = asyncio.run(drive())
        assert service.failure is None
        assert outcome.rejected > 0
        assert service.metrics.rejected_overload == outcome.rejected
        accepted = service.metrics.submitted
        assert accepted + outcome.rejected == len(small_trace)
        # Decisions only concern accepted tasks.
        assert len(decision_map(outcome.decisions)) == accepted
