"""Tests for the content-addressed on-disk result cache."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.batch import KERNEL_VERSION
from repro.core.kernels import KERNEL_BACKEND_ENV
from repro.experiments.config import ExperimentConfig
from repro.sweep import HeuristicSpec, PETSpec, ResultCache, SweepPoint, TrialMetrics
from repro.sweep.spec import point_payload
from repro.workload.generator import WorkloadConfig


@pytest.fixture
def point() -> SweepPoint:
    return SweepPoint(
        label="demo",
        pet=PETSpec(kind="spec", seed=5),
        heuristic=HeuristicSpec(name="MM"),
        workload=WorkloadConfig(num_tasks=40, time_span=300, beta=1.5),
        config=ExperimentConfig(trials=2, seed=5),
    )


def make_trials(n: int) -> list[TrialMetrics]:
    return [
        TrialMetrics(
            robustness_percent=50.0 + i,
            fairness_variance=1.0,
            total_cost=2.0,
            cost_per_percent_on_time=0.04,
            completed_on_time=10 + i,
            total_tasks=40,
            per_type_completion_percent=(50.0, 60.0),
        )
        for i in range(n)
    ]


class TestResultCache:
    def test_miss_then_roundtrip(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        assert cache.load(point) is None
        trials = make_trials(2)
        path = cache.store(point, trials)
        assert path.exists()
        assert path.parent.parent == tmp_path
        assert cache.load(point) == trials
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "stores": 1}

    def test_artifact_is_self_describing(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        path = cache.store(point, make_trials(2))
        payload = json.loads(path.read_text())
        assert payload["key"] == point.cache_key()
        assert payload["label"] == "demo"
        assert payload["point"]["heuristic"]["name"] == "MM"
        assert len(payload["trials"]) == 2
        assert path.stem == point.cache_key()

    def test_trial_count_mismatch_is_a_miss(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        cache.store(point, make_trials(1))  # wrong count vs config.trials == 2
        assert cache.load(point) is None

    def test_corrupt_artifact_is_a_miss(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        path = cache.path_for(point)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.load(point) is None

    def test_no_stray_tmp_files_after_store(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        cache.store(point, make_trials(2))
        assert not list(tmp_path.rglob("*.tmp"))

    def test_kernel_version_bump_invalidates_cached_results(
        self, tmp_path, point, monkeypatch
    ):
        """A scoring-kernel semantics change must miss every old artefact.

        The engine/kernel version tag is part of the content address, so
        bumping :data:`repro.core.batch.KERNEL_VERSION` changes the key and
        previously stored results are simply never looked up again.
        """
        import repro.sweep.spec as spec_module

        cache = ResultCache(tmp_path)
        cache.store(point, make_trials(2))
        assert cache.load(point) is not None
        old_key = point.cache_key()
        assert spec_module.point_payload(point)["engine"] == spec_module.KERNEL_VERSION

        monkeypatch.setattr(
            spec_module, "KERNEL_VERSION", spec_module.KERNEL_VERSION + 1
        )
        assert point.cache_key() != old_key
        assert cache.load(point) is None  # old artefact is invisible
        cache.store(point, make_trials(2))
        assert cache.load(point) is not None  # re-executed result cached anew


class TestCacheKeyBackendAndWindowFields:
    """The PR-8 config fields must neither collide with nor invalidate
    pre-existing cache entries (see ``point_payload``'s back-compat rules)."""

    def test_batch_window_zero_is_absent_from_payload(self, point):
        payload = point_payload(point)
        assert "batch_window" not in payload["config"]

    def test_batch_window_changes_the_key(self, point):
        windowed = replace(point, config=replace(point.config, batch_window=8))
        assert point_payload(windowed)["config"]["batch_window"] == 8
        assert windowed.cache_key() != point.cache_key()
        other = replace(point, config=replace(point.config, batch_window=16))
        assert other.cache_key() != windowed.cache_key()

    def test_kernel_backend_is_folded_into_the_engine_tag(
        self, point, monkeypatch
    ):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        payload = point_payload(point)
        assert "kernel_backend" not in payload["config"]
        assert payload["engine"] == KERNEL_VERSION  # bare pre-PR-8 tag

        accel = replace(point, config=replace(point.config, kernel_backend="array-api"))
        accel_payload = point_payload(accel)
        assert "kernel_backend" not in accel_payload["config"]
        assert accel_payload["engine"] == f"{KERNEL_VERSION}+array-api"
        assert accel.cache_key() != point.cache_key()

    def test_explicit_numpy_matches_default(self, point, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        explicit = replace(point, config=replace(point.config, kernel_backend="numpy"))
        assert explicit.cache_key() == point.cache_key()

    def test_env_var_selects_backend_for_unpinned_points(self, point, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        default_key = point.cache_key()
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "array-api")
        assert point_payload(point)["engine"] == f"{KERNEL_VERSION}+array-api"
        assert point.cache_key() != default_key
        # A point pinned to a backend ignores the environment.
        pinned = replace(point, config=replace(point.config, kernel_backend="numpy"))
        assert pinned.cache_key() == default_key

    def test_backend_entries_never_collide_across_backends(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        numba_point = replace(
            point, config=replace(point.config, kernel_backend="numba")
        )
        cache.store(point, make_trials(2))
        cache.store(numba_point, make_trials(2))
        assert cache.path_for(point) != cache.path_for(numba_point)
        assert cache.load(point) is not None
        assert cache.load(numba_point) is not None


class TestTrialMetricsPayload:
    def test_roundtrip(self):
        trial = make_trials(1)[0]
        assert TrialMetrics.from_payload(trial.to_payload()) == trial

    def test_survives_json(self):
        trial = make_trials(1)[0]
        rehydrated = TrialMetrics.from_payload(json.loads(json.dumps(trial.to_payload())))
        assert rehydrated == trial


class TestCacheMaintenance:
    def test_entries_flag_corrupt_artefacts(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        good = cache.store(point, make_trials(2))
        bad = tmp_path / "ab" / "deadbeef.json"
        bad.parent.mkdir(parents=True)
        bad.write_text("{ torn mid-write")
        entries = {e.key: e for e in cache.entries()}
        assert entries[good.stem].readable
        assert entries[good.stem].label == "demo"
        assert entries[good.stem].trials == 2
        assert not entries["deadbeef"].readable

    def test_disk_stats_and_gc(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        path = cache.store(point, make_trials(2))
        bad = tmp_path / "ab" / "deadbeef.json"
        bad.parent.mkdir(parents=True)
        bad.write_text("{ torn mid-write")

        stats = cache.disk_stats()
        assert stats["entries"] == 2
        assert stats["corrupt"] == 1
        assert stats["bytes"] > 0
        [(version, count)] = stats["kernel_versions"].items()
        assert count == 1

        # GC keeping the current version drops only the corrupt file...
        removed, _ = cache.gc(keep_kernel_version=version)
        assert removed == 1
        assert path.exists() and not bad.exists()
        # ...and keeping a different version drops everything else.
        removed, removed_bytes = cache.gc(keep_kernel_version="v-next")
        assert removed == 1 and removed_bytes > 0
        assert not path.exists()
        assert cache.disk_stats()["entries"] == 0

    @pytest.fixture
    def mixed_backend_cache(self, tmp_path, point, monkeypatch):
        """One artefact per backend tag at the current kernel version."""
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        cache = ResultCache(tmp_path)
        paths = {"numpy": cache.store(point, make_trials(2))}
        for backend in ("numba", "array-api"):
            tagged = replace(
                point,
                label=backend,
                config=replace(point.config, kernel_backend=backend),
            )
            paths[backend] = cache.store(tagged, make_trials(2))
        return cache, paths

    def test_disk_stats_groups_by_tag_and_backend(self, mixed_backend_cache):
        cache, _ = mixed_backend_cache
        stats = cache.disk_stats()
        assert stats["kernel_versions"] == {
            str(KERNEL_VERSION): 1,
            f"{KERNEL_VERSION}+array-api": 1,
            f"{KERNEL_VERSION}+numba": 1,
        }
        assert stats["backends"] == {"array-api": 1, "numba": 1, "numpy": 1}

    def test_gc_bare_version_keeps_every_backend(self, mixed_backend_cache):
        """Pre-PR-8 interface: other-backend entries at the kept version are
        current, not corrupt — a bare-version gc must not remove them."""
        cache, paths = mixed_backend_cache
        removed, _ = cache.gc(keep_kernel_version=KERNEL_VERSION)
        assert removed == 0
        assert all(p.exists() for p in paths.values())

    def test_gc_composite_tag_restricts_to_one_backend(self, mixed_backend_cache):
        cache, paths = mixed_backend_cache
        removed, _ = cache.gc(keep_kernel_version=f"{KERNEL_VERSION}+numba")
        assert removed == 2
        assert paths["numba"].exists()
        assert not paths["numpy"].exists()
        assert not paths["array-api"].exists()

    def test_gc_keep_backend_filter(self, mixed_backend_cache):
        cache, paths = mixed_backend_cache
        removed, _ = cache.gc(
            keep_kernel_version=KERNEL_VERSION, keep_backend="numpy", dry_run=True
        )
        assert removed == 2
        assert all(p.exists() for p in paths.values())  # dry run touches nothing
        removed, _ = cache.gc(
            keep_kernel_version=KERNEL_VERSION, keep_backend="numpy"
        )
        assert removed == 2
        assert paths["numpy"].exists()
        assert not paths["numba"].exists()

    def test_gc_stale_version_drops_other_backends_too(self, mixed_backend_cache):
        cache, paths = mixed_backend_cache
        removed, _ = cache.gc(keep_kernel_version="v-next")
        assert removed == 3
        assert not any(p.exists() for p in paths.values())
