"""Tests for the content-addressed on-disk result cache."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.sweep import HeuristicSpec, PETSpec, ResultCache, SweepPoint, TrialMetrics
from repro.workload.generator import WorkloadConfig


@pytest.fixture
def point() -> SweepPoint:
    return SweepPoint(
        label="demo",
        pet=PETSpec(kind="spec", seed=5),
        heuristic=HeuristicSpec(name="MM"),
        workload=WorkloadConfig(num_tasks=40, time_span=300, beta=1.5),
        config=ExperimentConfig(trials=2, seed=5),
    )


def make_trials(n: int) -> list[TrialMetrics]:
    return [
        TrialMetrics(
            robustness_percent=50.0 + i,
            fairness_variance=1.0,
            total_cost=2.0,
            cost_per_percent_on_time=0.04,
            completed_on_time=10 + i,
            total_tasks=40,
            per_type_completion_percent=(50.0, 60.0),
        )
        for i in range(n)
    ]


class TestResultCache:
    def test_miss_then_roundtrip(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        assert cache.load(point) is None
        trials = make_trials(2)
        path = cache.store(point, trials)
        assert path.exists()
        assert path.parent.parent == tmp_path
        assert cache.load(point) == trials
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "stores": 1}

    def test_artifact_is_self_describing(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        path = cache.store(point, make_trials(2))
        payload = json.loads(path.read_text())
        assert payload["key"] == point.cache_key()
        assert payload["label"] == "demo"
        assert payload["point"]["heuristic"]["name"] == "MM"
        assert len(payload["trials"]) == 2
        assert path.stem == point.cache_key()

    def test_trial_count_mismatch_is_a_miss(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        cache.store(point, make_trials(1))  # wrong count vs config.trials == 2
        assert cache.load(point) is None

    def test_corrupt_artifact_is_a_miss(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        path = cache.path_for(point)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.load(point) is None

    def test_no_stray_tmp_files_after_store(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        cache.store(point, make_trials(2))
        assert not list(tmp_path.rglob("*.tmp"))

    def test_kernel_version_bump_invalidates_cached_results(
        self, tmp_path, point, monkeypatch
    ):
        """A scoring-kernel semantics change must miss every old artefact.

        The engine/kernel version tag is part of the content address, so
        bumping :data:`repro.core.batch.KERNEL_VERSION` changes the key and
        previously stored results are simply never looked up again.
        """
        import repro.sweep.spec as spec_module

        cache = ResultCache(tmp_path)
        cache.store(point, make_trials(2))
        assert cache.load(point) is not None
        old_key = point.cache_key()
        assert spec_module.point_payload(point)["engine"] == spec_module.KERNEL_VERSION

        monkeypatch.setattr(
            spec_module, "KERNEL_VERSION", spec_module.KERNEL_VERSION + 1
        )
        assert point.cache_key() != old_key
        assert cache.load(point) is None  # old artefact is invisible
        cache.store(point, make_trials(2))
        assert cache.load(point) is not None  # re-executed result cached anew


class TestTrialMetricsPayload:
    def test_roundtrip(self):
        trial = make_trials(1)[0]
        assert TrialMetrics.from_payload(trial.to_payload()) == trial

    def test_survives_json(self):
        trial = make_trials(1)[0]
        rehydrated = TrialMetrics.from_payload(json.loads(json.dumps(trial.to_payload())))
        assert rehydrated == trial


class TestCacheMaintenance:
    def test_entries_flag_corrupt_artefacts(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        good = cache.store(point, make_trials(2))
        bad = tmp_path / "ab" / "deadbeef.json"
        bad.parent.mkdir(parents=True)
        bad.write_text("{ torn mid-write")
        entries = {e.key: e for e in cache.entries()}
        assert entries[good.stem].readable
        assert entries[good.stem].label == "demo"
        assert entries[good.stem].trials == 2
        assert not entries["deadbeef"].readable

    def test_disk_stats_and_gc(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        path = cache.store(point, make_trials(2))
        bad = tmp_path / "ab" / "deadbeef.json"
        bad.parent.mkdir(parents=True)
        bad.write_text("{ torn mid-write")

        stats = cache.disk_stats()
        assert stats["entries"] == 2
        assert stats["corrupt"] == 1
        assert stats["bytes"] > 0
        [(version, count)] = stats["kernel_versions"].items()
        assert count == 1

        # GC keeping the current version drops only the corrupt file...
        removed, _ = cache.gc(keep_kernel_version=version)
        assert removed == 1
        assert path.exists() and not bad.exists()
        # ...and keeping a different version drops everything else.
        removed, removed_bytes = cache.gc(keep_kernel_version="v-next")
        assert removed == 1 and removed_bytes > 0
        assert not path.exists()
        assert cache.disk_stats()["entries"] == 0
