"""Priority ordering and timing hints of the work queue.

The queue claims rows in ascending ``priority`` (shortest-expected-trial
first when the backend has timing hints), FIFO within a priority — and the
0.0 default means queues that never set priorities behave exactly as
before.  Legacy databases created before the ``priority``/``seconds``
columns existed are migrated in place on open.
"""

from __future__ import annotations

import pickle
import sqlite3
from contextlib import closing

import pytest

from repro.experiments.config import ExperimentConfig
from repro.sweep import (
    HeuristicSpec,
    PETSpec,
    SweepPoint,
    TrialMetrics,
    WorkQueue,
)
from repro.workload.generator import WorkloadConfig


def make_point(label: str, *, tasks: int = 40) -> SweepPoint:
    return SweepPoint(
        label=label,
        pet=PETSpec(kind="spec", seed=5),
        heuristic=HeuristicSpec(name="MM"),
        workload=WorkloadConfig(num_tasks=tasks, time_span=300, beta=1.5),
        config=ExperimentConfig(trials=1, seed=5),
    )


def make_metrics() -> TrialMetrics:
    return TrialMetrics(
        robustness_percent=50.0,
        fairness_variance=1.0,
        total_cost=2.0,
        cost_per_percent_on_time=0.04,
        completed_on_time=10,
        total_tasks=40,
        per_type_completion_percent=(50.0, 60.0),
    )


@pytest.fixture
def queue(tmp_path) -> WorkQueue:
    return WorkQueue(tmp_path / "queue", lease_seconds=10.0, max_attempts=3)


class TestPriorityOrdering:
    def test_default_priority_keeps_fifo(self, queue):
        first, second = make_point("first"), make_point("second", tasks=41)
        queue.enqueue_point(first)
        queue.enqueue_point(second)
        assert queue.claim("w").point.label == "first"
        assert queue.claim("w").point.label == "second"

    def test_lower_priority_claims_first(self, queue):
        slow, fast = make_point("slow"), make_point("fast", tasks=41)
        queue.enqueue_point(slow, priority=9.5)
        queue.enqueue_point(fast, priority=0.25)
        assert queue.claim("w").point.label == "fast"
        assert queue.claim("w").point.label == "slow"

    def test_unknown_points_run_before_timed_ones(self, queue):
        """Priority 0 (no hint) beats any measured duration — explore first."""
        timed, fresh = make_point("timed"), make_point("fresh", tasks=41)
        queue.enqueue_point(timed, priority=3.0)
        queue.enqueue_point(fresh)  # default 0.0
        assert queue.claim("w").point.label == "fresh"

    def test_priority_visible_on_rows(self, queue):
        queue.enqueue_point(make_point("p"), priority=1.5)
        [row] = queue.tasks()
        assert row.priority == 1.5
        assert row.seconds is None


class TestTimingHints:
    def test_fresh_queue_has_no_hints(self, queue):
        assert queue.timing_hints() == {}

    def test_completed_seconds_become_hints(self, queue):
        point = make_point("p")
        queue.enqueue_point(point)
        claimed = queue.claim("w")
        assert queue.complete(claimed.task_key, "w", make_metrics(), seconds=2.5)
        hints = queue.timing_hints()
        assert hints == {point.cache_key(): 2.5}
        [row] = queue.tasks()
        assert row.seconds == 2.5

    def test_hints_average_over_trials(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue", lease_seconds=10.0)
        point = SweepPoint(
            label="p",
            pet=PETSpec(kind="spec", seed=5),
            heuristic=HeuristicSpec(name="MM"),
            workload=WorkloadConfig(num_tasks=40, time_span=300, beta=1.5),
            config=ExperimentConfig(trials=2, seed=5),
        )
        queue.enqueue_point(point)
        for seconds in (2.0, 4.0):
            claimed = queue.claim("w")
            queue.complete(claimed.task_key, "w", make_metrics(), seconds=seconds)
        assert queue.timing_hints() == {point.cache_key(): 3.0}

    def test_completions_without_seconds_do_not_hint(self, queue):
        queue.enqueue_point(make_point("p"))
        claimed = queue.claim("w")
        queue.complete(claimed.task_key, "w", make_metrics())
        assert queue.timing_hints() == {}


class TestLegacySchemaMigration:
    def test_old_database_gains_columns_and_stays_fifo(self, tmp_path):
        """A queue.sqlite created before the priority/seconds columns opens
        cleanly, is migrated in place, and serves rows FIFO."""
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        legacy_schema = """
        CREATE TABLE tasks (
            task_key         TEXT PRIMARY KEY,
            point_key        TEXT NOT NULL,
            trial_index      INTEGER NOT NULL,
            label            TEXT NOT NULL,
            point_blob       BLOB NOT NULL,
            status           TEXT NOT NULL DEFAULT 'pending',
            attempts         INTEGER NOT NULL DEFAULT 0,
            max_attempts     INTEGER NOT NULL,
            lease_owner      TEXT,
            lease_expires_at REAL,
            result_json      TEXT,
            error            TEXT,
            enqueued_at      REAL NOT NULL,
            updated_at       REAL NOT NULL
        );
        CREATE INDEX tasks_status ON tasks (status, lease_expires_at);
        """
        with closing(sqlite3.connect(queue_dir / "queue.sqlite")) as conn:
            conn.executescript(legacy_schema)
            conn.execute(
                "INSERT INTO tasks (task_key, point_key, trial_index, label, point_blob,"
                " status, max_attempts, enqueued_at, updated_at)"
                " VALUES ('k:00000', 'k', 0, 'legacy', ?, 'pending', 3, 1.0, 1.0)",
                (pickle.dumps(make_point("legacy")),),
            )
            conn.commit()

        queue = WorkQueue(queue_dir)
        [row] = queue.tasks()
        assert row.priority == 0.0 and row.seconds is None
        claimed = queue.claim("w")
        assert claimed.point.label == "legacy"
        assert queue.complete(claimed.task_key, "w", make_metrics(), seconds=1.25)
        assert queue.timing_hints() == {"k": 1.25}

    def test_reopening_migrated_database_is_idempotent(self, tmp_path):
        WorkQueue(tmp_path / "queue")
        WorkQueue(tmp_path / "queue")  # second open must not re-ALTER
