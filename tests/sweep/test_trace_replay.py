"""Trace replay through the sweep pipeline: determinism, caching, fig9.

The contract of trace-backed sweep points:

* replaying the same trace file is **bit-identical** for every ``jobs``
  setting (the workers resolve the same file and the execution streams
  derive from the same spawned seeds);
* a rerun against the same cache directory executes **zero** simulations;
* the cache key folds the trace's *canonical content hash* — editing any
  task invalidates cached results, reformatting the JSON does not;
* the Figure 9 driver runs end to end from the shipped 660-task reference
  trace and an immediate rerun is served entirely from the result cache.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig9_transcoding import TRACE_LEVEL_LABEL, run_fig9
from repro.sweep import (
    HeuristicSpec,
    PETSpec,
    SweepPoint,
    SweepSpec,
    TraceSpec,
    run_sweep,
)
from repro.sweep.cache import ResultCache
from repro.workload.generator import WorkloadConfig
from repro.workload.traces import file_content_hash, save_trace, trace_content_hash
from repro.workload.transcoding import (
    REFERENCE_TRACE_TASKS,
    build_named_trace,
    reference_transcoding_trace,
)

REFERENCE_TRACE = (
    Path(__file__).resolve().parents[2] / "examples" / "transcoding_660.trace.json"
)


@pytest.fixture
def small_trace_file(tmp_path) -> Path:
    """A 40-task transcoding-shaped trace saved to disk."""
    trace = build_named_trace("transcoding-660", seed=5, num_tasks=40)
    return save_trace(trace, tmp_path / "small.trace.json")


def replay_spec(path: Path, *, trials: int = 2, seed: int = 2019) -> SweepSpec:
    config = ExperimentConfig(trials=trials, seed=seed, warmup_tasks=5, cooldown_tasks=5)
    return SweepSpec.from_traces(
        pet=PETSpec(kind="transcoding", seed=seed),
        heuristics={name: HeuristicSpec(name=name) for name in ("PAMF", "MM")},
        traces={"replay": TraceSpec(path=str(path))},
        config=config,
    )


class TestSpecValidation:
    def test_exactly_one_source_required(self):
        with pytest.raises(ValueError, match="exactly one of path or builder"):
            TraceSpec()
        with pytest.raises(ValueError, match="exactly one of path or builder"):
            TraceSpec(path="x.json", builder="transcoding-660")

    def test_unknown_builder_rejected(self):
        with pytest.raises(ValueError, match="unknown trace builder"):
            TraceSpec(builder="no-such-builder")

    def test_point_requires_workload_or_trace(self):
        config = ExperimentConfig(trials=1)
        pet = PETSpec(kind="transcoding")
        heuristic = HeuristicSpec(name="MM")
        with pytest.raises(ValueError, match="exactly one of workload or trace"):
            SweepPoint(
                label="x", pet=pet, heuristic=heuristic, workload=None, config=config
            )
        workload = WorkloadConfig(num_tasks=10, time_span=100)
        with pytest.raises(ValueError, match="exactly one of workload or trace"):
            SweepPoint(
                label="x",
                pet=pet,
                heuristic=heuristic,
                workload=workload,
                config=config,
                trace=TraceSpec(builder="transcoding-660"),
            )

    def test_builder_fingerprint_is_declarative(self):
        spec = TraceSpec(builder="transcoding-660", seed=7, num_tasks=33)
        assert spec.fingerprint() == {
            "builder": "transcoding-660",
            "seed": 7,
            "num_tasks": 33,
        }


class TestReplayDeterminism:
    def test_jobs1_and_jobs2_bit_identical(self, small_trace_file):
        spec = replay_spec(small_trace_file)
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=2)
        assert serial.trials_per_point == parallel.trials_per_point

    def test_every_heuristic_replays_identical_arrivals(self, small_trace_file):
        """Paired replay: both points resolve the same trace object."""
        from repro.sweep.executor import trace_for

        spec = replay_spec(small_trace_file)
        traces = {trace_for(point.trace) is not None for point in spec}
        assert traces == {True}
        resolved = [trace_for(point.trace) for point in spec]
        assert all(list(t) == list(resolved[0]) for t in resolved)

    def test_trace_for_sees_in_place_file_edits(self, small_trace_file):
        """An edited file must never be served stale from the resolver memo.

        A stale resolve would pair OLD arrivals with the NEW content hash
        in the cache key — permanently wrong cached results.
        """
        import os

        from repro.sweep.executor import trace_for

        spec = TraceSpec(path=str(small_trace_file))
        before = trace_for(spec)
        payload = json.loads(small_trace_file.read_text())
        payload["tasks"][0]["deadline"] += 5
        small_trace_file.write_text(json.dumps(payload))
        # Guard against same-granularity mtime on coarse filesystems.
        stat = small_trace_file.stat()
        os.utime(small_trace_file, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
        after = trace_for(spec)
        assert after[0].deadline == before[0].deadline + 5

    def test_incompatible_trace_fails_in_execute_layer(self, tmp_path):
        """Programmatic from_traces path fails fast, not with an IndexError."""
        from repro.workload.generator import WorkloadTrace
        from repro.workload.spec import TaskSpec

        specs = tuple(
            TaskSpec(arrival=i, task_id=i, task_type=i % 7, deadline=i + 50)
            for i in range(14)
        )
        trace = WorkloadTrace(
            specs, WorkloadConfig(num_tasks=14, time_span=100), num_task_types=7
        )
        path = save_trace(trace, tmp_path / "wide.trace.json")
        spec = replay_spec(path, trials=1)
        with pytest.raises(ValueError, match="7 task types"):
            run_sweep(spec, jobs=1)


class TestReplayCaching:
    def test_rerun_served_entirely_from_cache(self, small_trace_file, tmp_path):
        spec = replay_spec(small_trace_file)
        cache = ResultCache(tmp_path / "cache")
        first = run_sweep(spec, cache=cache)
        assert first.executed_trials > 0
        second = run_sweep(spec, cache=cache)
        assert second.executed_trials == 0
        assert second.cache_hits == len(spec)
        assert second.trials_per_point == first.trials_per_point

    def test_cache_key_folds_trace_content_hash(self, small_trace_file, tmp_path):
        point = replay_spec(small_trace_file).points[0]
        original_key = point.cache_key()

        # Reformatting the file (key order, indentation) keeps the key.
        payload = json.loads(small_trace_file.read_text())
        reformatted = tmp_path / "reformatted.trace.json"
        reformatted.write_text(json.dumps(payload, sort_keys=True, indent=None))
        reformatted_point = replay_spec(reformatted).points[0]
        assert reformatted_point.cache_key() == original_key

        # Editing one task's deadline changes the key.
        payload["tasks"][3]["deadline"] += 1
        edited = tmp_path / "edited.trace.json"
        edited.write_text(json.dumps(payload))
        edited_point = replay_spec(edited).points[0]
        assert edited_point.cache_key() != original_key

    def test_synthetic_point_keys_unchanged_by_trace_field(self):
        """Adding the trace field must not invalidate pre-existing caches."""
        from repro.sweep.spec import point_payload

        config = ExperimentConfig(trials=1)
        point = SweepPoint(
            label="x",
            pet=PETSpec(kind="transcoding"),
            heuristic=HeuristicSpec(name="MM"),
            workload=WorkloadConfig(num_tasks=10, time_span=100),
            config=config,
        )
        assert "trace" not in point_payload(point)


class TestFig9FromReferenceTrace:
    def test_reference_trace_file_matches_builder(self):
        assert REFERENCE_TRACE.exists(), "shipped reference trace is missing"
        assert file_content_hash(REFERENCE_TRACE) == trace_content_hash(
            reference_transcoding_trace()
        )

    def test_fig9_runs_from_shipped_trace_and_rerun_hits_cache(
        self, tmp_path, monkeypatch
    ):
        config = ExperimentConfig(trials=1, warmup_tasks=20, cooldown_tasks=20)
        cache_dir = tmp_path / "cache"
        first = run_fig9(config, trace=REFERENCE_TRACE, cache_dir=cache_dir)
        assert first.levels() == [TRACE_LEVEL_LABEL]
        for heuristic in ("PAMF", "MM"):
            robustness = first.robustness(TRACE_LEVEL_LABEL, heuristic)
            assert 0.0 <= robustness <= 100.0

        # The rerun must never simulate: poison both execution paths.
        import repro.sweep.executor as executor_module

        def boom(*args, **kwargs):  # pragma: no cover - only on regression
            raise AssertionError("rerun executed a simulation instead of using the cache")

        monkeypatch.setattr(executor_module, "execute_point", boom)
        monkeypatch.setattr(executor_module, "_execute_point_trial", boom)
        monkeypatch.setattr(
            executor_module.ParallelExecutor, "_run_pending", boom
        )
        second = run_fig9(config, trace=REFERENCE_TRACE, cache_dir=cache_dir)
        assert second.robustness(TRACE_LEVEL_LABEL, "PAMF") == first.robustness(
            TRACE_LEVEL_LABEL, "PAMF"
        )
        assert second.robustness(TRACE_LEVEL_LABEL, "MM") == first.robustness(
            TRACE_LEVEL_LABEL, "MM"
        )

    def test_incompatible_trace_rejected_before_simulating(self, tmp_path):
        """A trace with more task types than the transcoding PET fails fast."""
        from repro.workload.generator import WorkloadConfig as WC
        from repro.workload.generator import WorkloadTrace
        from repro.workload.spec import TaskSpec

        specs = tuple(
            TaskSpec(arrival=i, task_id=i, task_type=i % 7, deadline=i + 50)
            for i in range(14)
        )
        trace = WorkloadTrace(specs, WC(num_tasks=14, time_span=100), num_task_types=7)
        path = save_trace(trace, tmp_path / "spec_shaped.trace.json")
        with pytest.raises(ValueError, match="7 task types"):
            run_fig9(ExperimentConfig(trials=1), trace=path)

    def test_reference_trace_shape(self):
        trace = reference_transcoding_trace()
        assert len(trace) == REFERENCE_TRACE_TASKS
        assert trace.num_task_types == 4
        arrivals = [t.arrival for t in trace]
        assert arrivals == sorted(arrivals)
        # Burstiness: tasks share arrival ticks well below 1:1.
        assert len(set(arrivals)) < 0.75 * len(arrivals)
        # Heavy tail: the slowest slack dwarfs the median.
        slacks = sorted(t.slack for t in trace)
        assert slacks[-1] > 3 * slacks[len(slacks) // 2]
