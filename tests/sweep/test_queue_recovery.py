"""Crash recovery and concurrent-writer safety.

Two failure modes a durable multi-worker sweep must survive:

* a worker SIGKILL'd mid-trial — no cleanup code runs, so the only safety
  net is the lease: it must expire, the trial must be re-enqueued, and a
  surviving worker must complete it with bit-identical results;
* several workers storing into one shared :class:`ResultCache` directory —
  a reader must never observe a torn artefact (atomic temp-file +
  ``os.replace`` writes).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.experiments.config import ExperimentConfig, workload_for_level
from repro.sweep import (
    HeuristicSpec,
    PETSpec,
    ResultCache,
    SweepPoint,
    SweepSpec,
    TrialMetrics,
    WorkQueue,
    run_sweep,
    run_worker,
    task_key_for,
)

SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)

#: Claims a trial under a short lease, reports, then hangs until SIGKILL'd —
#: a stand-in for "worker crashed hard mid-trial" with the real claim path.
_DOOMED_WORKER = """
import sys, time
from repro.sweep import WorkQueue

queue = WorkQueue(sys.argv[1], lease_seconds=float(sys.argv[2]))
claimed = queue.claim("doomed-worker")
print("claimed" if claimed is not None else "nothing", flush=True)
time.sleep(600)
"""


def _make_spec(seed: int = 53) -> SweepSpec:
    config = ExperimentConfig(
        trials=2, seed=seed, warmup_tasks=5, cooldown_tasks=5, task_scale=0.1
    )
    pet = PETSpec(kind="spec", seed=config.seed)
    workload = workload_for_level("34k", config)
    return SweepSpec(
        points=(
            SweepPoint(
                label="MM",
                pet=pet,
                heuristic=HeuristicSpec("MM"),
                workload=workload,
                config=config,
            ),
        )
    )


class TestSigkillRecovery:
    def test_killed_workers_trial_is_recovered_bit_identically(self, tmp_path):
        """SIGKILL a worker holding a lease; a survivor finishes the sweep.

        The doomed process claims through the real ``WorkQueue.claim`` path
        (so a genuine lease is held by a genuinely dead process), gets
        SIGKILL'd, and after lease expiry an in-process surviving worker
        must re-claim and complete everything — with results bit-identical
        (atol=0) to a ``jobs=1`` run of the same spec.
        """
        spec = _make_spec()
        serial = run_sweep(spec, jobs=1)
        queue_dir = tmp_path / "queue"
        lease_seconds = 1.0
        queue = WorkQueue(queue_dir, lease_seconds=lease_seconds)
        for point in spec.points:
            queue.enqueue_point(point)

        env = {**os.environ, "PYTHONPATH": SRC_ROOT + os.pathsep + os.environ.get("PYTHONPATH", "")}
        doomed = subprocess.Popen(
            [sys.executable, "-c", _DOOMED_WORKER, str(queue_dir), str(lease_seconds)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert doomed.stdout.readline().strip() == "claimed"
            status = queue.status()
            assert status.leased == 1
            assert status.workers[0].owner == "doomed-worker"
            os.kill(doomed.pid, signal.SIGKILL)
            doomed.wait(timeout=30)
        finally:
            if doomed.poll() is None:  # pragma: no cover - cleanup on failure
                doomed.kill()

        # The lease outlives the killed process (SIGKILL runs no cleanup);
        # poll until expiry hands the trial back.  claim() leases rows
        # oldest-first, so the doomed worker held trial 0.
        doomed_key = task_key_for(spec.points[0], 0)
        deadline = time.time() + 30.0
        while queue.recover_expired() == 0:
            assert time.time() < deadline, "expired lease was never recovered"
            time.sleep(0.1)
        row = queue.tasks([doomed_key])[0]
        assert row.status == "pending"
        assert row.attempts == 1  # the doomed claim stays on the books

        # A surviving worker settles the whole queue, re-running the
        # recovered trial as its second attempt.
        executed = run_worker(
            queue_dir,
            poll_interval=0.02,
            lease_seconds=30.0,
            exit_when_empty=True,
        )
        assert executed == spec.total_trials
        assert queue.status().done == spec.total_trials
        assert queue.tasks([doomed_key])[0].attempts == 2

        # Re-claimed trials count a second attempt; results stay the same.
        keys = [task_key_for(spec.points[0], t) for t in range(spec.total_trials)]
        results = queue.results(keys)
        merged = [results[key] for key in keys]
        assert merged == serial.trials_per_point[0]

        # And a frontend sweep over the settled queue merges identically.
        outcome = run_sweep(spec, backend="queue", queue_dir=queue_dir, queue_workers=0)
        assert outcome.trials_per_point == serial.trials_per_point


def _hammer_store(root: str, seed: int, rounds: int) -> None:
    """Writer process: repeatedly store one point's trials into the cache.

    Fake deterministic metrics — concurrent-writer safety is about file
    integrity, not simulation output.
    """
    spec = _make_spec(seed)
    point = spec.points[0]
    trials = [
        TrialMetrics(
            robustness_percent=50.0,
            fairness_variance=1.0,
            total_cost=2.0,
            cost_per_percent_on_time=0.04,
            completed_on_time=10,
            total_tasks=40,
            per_type_completion_percent=(50.0, 60.0),
        )
        for _ in range(point.config.trials)
    ]
    cache = ResultCache(Path(root))
    for _ in range(rounds):
        cache.store(point, trials)


class TestConcurrentCacheWriters:
    def test_readers_never_observe_a_torn_artefact(self, tmp_path):
        """Several processes rewrite one artefact while we parse it in a loop.

        ``ResultCache.store`` goes through a same-directory temp file and
        ``os.replace``, so every read must see either the old or the new
        complete JSON — a partial file here would poison whole sweeps.
        """
        seed = 61
        spec = _make_spec(seed)
        point = spec.points[0]
        cache = ResultCache(tmp_path)
        path = cache.path_for(point)

        writers = [
            multiprocessing.Process(target=_hammer_store, args=(str(tmp_path), seed, 40))
            for _ in range(3)
        ]
        for writer in writers:
            writer.start()
        try:
            reads = 0
            deadline = time.time() + 120.0
            while any(w.is_alive() for w in writers) or reads == 0:
                assert time.time() < deadline, "writers never produced an artefact"
                if path.exists():
                    payload = json.loads(path.read_text())  # torn JSON would raise
                    assert len(payload["trials"]) == point.config.trials
                    reads += 1
        finally:
            for writer in writers:
                writer.join(timeout=60)
        assert reads > 0
        assert all(w.exitcode == 0 for w in writers)
        # Every temp file was either renamed into place or cleaned up.
        assert list(tmp_path.rglob("*.tmp")) == []
        # And the surviving artefact is a perfectly valid cache hit.
        assert cache.load(point) is not None


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
