"""Unit tests for the durable SQLite work queue.

Lease timing is driven through the explicit ``now`` parameters of
:meth:`WorkQueue.claim` / :meth:`WorkQueue.recover_expired`, so expiry and
crash recovery are exercised deterministically, without sleeping.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.sweep import (
    HeuristicSpec,
    PETSpec,
    SweepPoint,
    TrialMetrics,
    WorkQueue,
    task_key_for,
)
from repro.workload.generator import WorkloadConfig


@pytest.fixture
def point() -> SweepPoint:
    return SweepPoint(
        label="demo",
        pet=PETSpec(kind="spec", seed=5),
        heuristic=HeuristicSpec(name="MM"),
        workload=WorkloadConfig(num_tasks=40, time_span=300, beta=1.5),
        config=ExperimentConfig(trials=2, seed=5),
    )


@pytest.fixture
def queue(tmp_path) -> WorkQueue:
    return WorkQueue(tmp_path / "queue", lease_seconds=10.0, max_attempts=3)


def make_metrics(i: int = 0) -> TrialMetrics:
    return TrialMetrics(
        robustness_percent=50.0 + i,
        fairness_variance=1.0,
        total_cost=2.0,
        cost_per_percent_on_time=0.04,
        completed_on_time=10 + i,
        total_tasks=40,
        per_type_completion_percent=(50.0, 60.0),
    )


class TestEnqueue:
    def test_rows_are_content_addressed(self, queue, point):
        keys = queue.enqueue_point(point)
        assert keys == [task_key_for(point, 0), task_key_for(point, 1)]
        assert all(key.startswith(point.cache_key()) for key in keys)

    def test_enqueue_is_idempotent(self, queue, point):
        queue.enqueue_point(point)
        queue.enqueue_point(point)
        assert queue.status().total == point.config.trials

    def test_done_rows_survive_re_enqueue(self, queue, point):
        [key, _] = queue.enqueue_point(point)
        claimed = queue.claim("w1")
        queue.complete(claimed.task_key, "w1", make_metrics())
        queue.enqueue_point(point)
        assert queue.status().done == 1
        assert key in queue.results([key])


class TestClaimLifecycle:
    def test_claim_rebuilds_the_point(self, queue, point):
        queue.enqueue_point(point)
        claimed = queue.claim("w1")
        assert claimed.point == point
        assert claimed.trial_index == 0  # oldest (enqueue order) first
        assert claimed.attempts == 1

    def test_each_trial_claimed_once(self, queue, point):
        queue.enqueue_point(point)
        first = queue.claim("w1")
        second = queue.claim("w2")
        assert {first.trial_index, second.trial_index} == {0, 1}
        assert queue.claim("w3") is None

    def test_complete_round_trips_metrics_exactly(self, queue, point):
        [key, _] = queue.enqueue_point(point)
        claimed = queue.claim("w1")
        metrics = make_metrics()
        assert queue.complete(claimed.task_key, "w1", metrics)
        assert queue.results([key]) == {key: metrics}

    def test_complete_by_non_owner_is_ignored(self, queue, point):
        queue.enqueue_point(point)
        claimed = queue.claim("w1")
        assert not queue.complete(claimed.task_key, "imposter", make_metrics())
        assert queue.status().done == 0

    def test_renew_extends_and_reports_lost_leases(self, queue, point):
        queue.enqueue_point(point)
        claimed = queue.claim("w1")
        assert queue.renew(claimed.task_key, "w1")
        assert not queue.renew(claimed.task_key, "w2")


class TestCrashRecovery:
    def test_expired_lease_is_claimable_by_a_survivor(self, queue, point):
        queue.enqueue_point(point)
        t0 = 1000.0
        doomed = queue.claim("doomed", now=t0)
        # Within the lease, the trial is protected.
        assert queue.claim("survivor", now=t0 + 5.0).task_key != doomed.task_key
        assert queue.claim("survivor", now=t0 + 5.0) is None
        # After expiry, the survivor takes it over (second attempt).
        recovered = queue.claim("survivor", now=t0 + 11.0)
        assert recovered.task_key == doomed.task_key
        assert recovered.attempts == 2

    def test_recover_expired_re_enqueues(self, queue, point):
        queue.enqueue_point(point)
        t0 = 1000.0
        queue.claim("doomed", now=t0)
        assert queue.recover_expired(now=t0 + 5.0) == 0
        assert queue.recover_expired(now=t0 + 11.0) == 1
        status = queue.status()
        assert status.pending == 2 and status.leased == 0

    def test_repeated_crashes_dead_letter_the_trial(self, queue, point):
        queue.enqueue_point(point)
        now = 1000.0
        key = queue.claim("w", now=now).task_key
        for _ in range(queue.max_attempts - 1):
            now += queue.lease_seconds + 1.0
            assert queue.claim("w", now=now).task_key == key
        # All attempts burned; the next recovery pass declares it dead.
        now += queue.lease_seconds + 1.0
        queue.recover_expired(now=now)
        rows = {t.task_key: t for t in queue.tasks()}
        assert rows[key].status == "dead"
        assert "attempts exhausted" in rows[key].error
        # A dead row is never handed out again (the other trial still is).
        claimed = queue.claim("w", now=now)
        assert claimed is not None and claimed.task_key != key

    def test_failed_trial_retries_then_dead_letters(self, queue, point):
        queue.enqueue_point(point)
        claimed = queue.claim("w")
        assert queue.fail(claimed.task_key, "w", "boom 1")
        assert queue.tasks([claimed.task_key])[0].status == "pending"
        for attempt in range(2, queue.max_attempts + 1):
            again = queue.claim("w")
            queue.fail(again.task_key, "w", f"boom {attempt}")
        # claim() prefers oldest rows, so the same trial came back each time;
        # after max_attempts failures it must be dead with the last error.
        row = queue.tasks([claimed.task_key])[0]
        assert row.status == "dead"
        assert row.error == f"boom {queue.max_attempts}"


class TestMaintenance:
    def test_requeue_revives_dead_rows_with_fresh_budget(self, queue, point):
        queue.enqueue_point(point)
        claimed = queue.claim("w")
        for attempt in range(queue.max_attempts):
            queue.fail(claimed.task_key, "w", "boom")
            claimed = queue.claim("w") or claimed
        assert any(t.status == "dead" for t in queue.tasks())
        assert queue.requeue(include_dead=True) >= 1
        rows = queue.tasks()
        assert all(t.status in ("pending", "leased") for t in rows)
        assert all(t.error is None for t in rows if t.status == "pending")

    def test_drain(self, queue, point):
        queue.enqueue_point(point)
        claimed = queue.claim("w")
        queue.complete(claimed.task_key, "w", make_metrics())
        assert queue.drain(done_only=True) == 1
        assert queue.status().total == 1
        assert queue.drain() == 1
        assert queue.status().total == 0

    def test_status_reports_worker_heartbeats(self, queue, point):
        queue.enqueue_point(point)
        queue.claim("worker-a", now=1000.0)
        queue.claim("worker-b", now=1000.0)
        status = queue.status()
        owners = {lease.owner: lease for lease in status.workers}
        assert set(owners) == {"worker-a", "worker-b"}
        assert owners["worker-a"].tasks == 1
        assert owners["worker-a"].lease_expires_at == 1000.0 + queue.lease_seconds

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="lease_seconds"):
            WorkQueue(tmp_path, lease_seconds=0.0)
        with pytest.raises(ValueError, match="max_attempts"):
            WorkQueue(tmp_path, max_attempts=0)


class TestWorkerLoop:
    def test_idle_timeout_exits_an_idle_worker(self, tmp_path):
        from repro.sweep import run_worker

        lines: list[str] = []
        executed = run_worker(
            tmp_path / "queue",
            poll_interval=0.01,
            idle_timeout=0.05,
            log=lines.append,
        )
        assert executed == 0
        assert any("idle" in line for line in lines)

    def test_worker_logs_claims_and_completions(self, tmp_path, point):
        from repro.sweep import WorkQueue, run_worker

        WorkQueue(tmp_path / "queue").enqueue_point(point)
        lines: list[str] = []
        executed = run_worker(
            tmp_path / "queue",
            poll_interval=0.01,
            max_tasks=point.config.trials,
            log=lines.append,
        )
        assert executed == point.config.trials
        assert any("claimed" in line for line in lines)
        assert any("max tasks" in line for line in lines)

    def test_failing_trial_is_reported_and_retried(self, tmp_path, point, monkeypatch):
        from repro.sweep import WorkQueue, run_worker
        import repro.sweep.executor as executor_module

        queue = WorkQueue(tmp_path / "queue", max_attempts=2)
        queue.enqueue(point, 0)

        calls = {"n": 0}

        def flaky(p, trial_index):
            calls["n"] += 1
            raise ValueError("transient boom")

        monkeypatch.setattr(executor_module, "_execute_point_trial", flaky)
        lines: list[str] = []
        executed = run_worker(
            tmp_path / "queue",
            poll_interval=0.01,
            exit_when_empty=True,
            log=lines.append,
        )
        # Both attempts failed; the row is dead-lettered with the traceback.
        assert executed == 0
        assert calls["n"] == 2
        row = queue.tasks()[0]
        assert row.status == "dead"
        assert "transient boom" in row.error
        assert any("failed" in line for line in lines)


class TestReleaseRefundsAttempts:
    def test_release_returns_row_to_pending_without_burning_budget(self, queue, point):
        queue.enqueue_point(point)
        claimed = queue.claim("w1")
        assert queue.release(claimed.task_key, "w1")
        row = queue.tasks([claimed.task_key])[0]
        assert row.status == "pending"
        assert row.attempts == 0  # the abandoned claim was refunded
        assert not queue.release(claimed.task_key, "w1")  # no longer leased

    def test_interrupted_worker_releases_instead_of_failing(
        self, tmp_path, point, monkeypatch
    ):
        """Ctrl-C'ing a worker mid-trial hands the row back attempt-free, so
        any number of stop/restart cycles can never dead-letter the trial."""
        import repro.sweep.executor as executor_module
        from repro.sweep import run_worker

        queue = WorkQueue(tmp_path / "queue", max_attempts=2)
        queue.enqueue(point, 0)

        def interrupted(p, trial_index):
            raise KeyboardInterrupt

        monkeypatch.setattr(executor_module, "_execute_point_trial", interrupted)
        for _ in range(queue.max_attempts + 1):  # more restarts than attempts
            with pytest.raises(KeyboardInterrupt):
                run_worker(tmp_path / "queue", poll_interval=0.01)
        row = queue.tasks()[0]
        assert row.status == "pending"
        assert row.attempts == 0
