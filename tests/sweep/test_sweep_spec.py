"""Tests for the declarative sweep specifications and the cache key.

The cache-key tests are property-style: the content address must be stable
across interpreter processes (it backs an on-disk cache shared between runs)
and must change whenever any config field or the seed changes.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import fields, replace

import pytest

from repro.experiments.config import ExperimentConfig, workload_for_level
from repro.pruning.thresholds import PruningThresholds
from repro.sweep import HeuristicSpec, PETSpec, SweepPoint, SweepSpec, cache_key
from repro.workload.generator import WorkloadConfig


def make_point(**overrides) -> SweepPoint:
    config = overrides.pop("config", ExperimentConfig(trials=2, seed=11))
    defaults = dict(
        label="demo",
        pet=PETSpec(kind="spec", seed=11),
        heuristic=HeuristicSpec(name="PAM", thresholds=PruningThresholds()),
        workload=WorkloadConfig(num_tasks=50, time_span=400, beta=1.5),
        config=config,
        machine_prices=(1.0, 2.0),
        evict_executing_at_deadline=True,
    )
    defaults.update(overrides)
    return SweepPoint(**defaults)


def _key_in_subprocess(point: SweepPoint) -> str:
    return point.cache_key()


class TestPETSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown PET kind"):
            PETSpec(kind="wat", seed=1)

    def test_builds_both_kinds(self):
        assert PETSpec(kind="spec", seed=1).build().num_task_types == 12
        assert PETSpec(kind="transcoding", seed=1).build().num_task_types == 4


class TestHeuristicSpec:
    def test_name_normalised_and_validated(self):
        assert HeuristicSpec(name="pam").name == "PAM"
        with pytest.raises(ValueError, match="unknown heuristic"):
            HeuristicSpec(name="NOPE")

    def test_baselines_reject_pruning_knobs(self):
        with pytest.raises(ValueError, match="detector"):
            HeuristicSpec(name="MM", ewma_weight=0.9)
        with pytest.raises(ValueError, match="ablate"):
            HeuristicSpec(name="MOC", enable_dropping=False)

    def test_build_matches_paper_configurations(self):
        pam = HeuristicSpec(name="PAM", ewma_weight=0.5, schmitt_separation=0.0).build(12)
        assert pam.name == "PAM"
        pamf = HeuristicSpec(name="PAMF", fairness_factor=0.1).build(12)
        assert pamf.name == "PAMF"
        mm = HeuristicSpec(name="MM").build(12)
        assert mm.name == "MM"


class TestCacheKey:
    def test_stable_within_process(self):
        point = make_point()
        assert cache_key(point) == cache_key(make_point())
        assert point.cache_key() == cache_key(point)

    def test_stable_across_processes(self):
        """The address backs an on-disk cache: a fresh interpreter must
        derive the same key (sha256 over canonical JSON, not builtin hash)."""
        point = make_point()
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            remote = pool.submit(_key_in_subprocess, point).result()
        assert remote == point.cache_key()

    def test_label_is_cosmetic(self):
        assert make_point(label="a").cache_key() == make_point(label="b").cache_key()

    def test_changes_with_every_config_field_and_seed(self):
        base = make_point()
        variants = [
            make_point(pet=PETSpec(kind="transcoding", seed=11)),
            make_point(pet=PETSpec(kind="spec", seed=12)),
            make_point(heuristic=HeuristicSpec(name="MM")),
            make_point(
                heuristic=HeuristicSpec(
                    name="PAM", thresholds=PruningThresholds(dropping=0.25)
                )
            ),
            make_point(heuristic=HeuristicSpec(name="PAM", ewma_weight=0.5)),
            make_point(workload=WorkloadConfig(num_tasks=51, time_span=400, beta=1.5)),
            make_point(workload=WorkloadConfig(num_tasks=50, time_span=401, beta=1.5)),
            make_point(config=ExperimentConfig(trials=3, seed=11)),
            make_point(config=ExperimentConfig(trials=2, seed=12)),
            make_point(config=ExperimentConfig(trials=2, seed=11, warmup_tasks=7)),
            make_point(machine_prices=(1.0, 2.5)),
            make_point(machine_prices=None),
            make_point(evict_executing_at_deadline=False),
        ]
        keys = [v.cache_key() for v in variants]
        assert base.cache_key() not in keys
        assert len(set(keys)) == len(keys), "every variant must hash distinctly"

    def test_every_experiment_config_field_is_covered(self, monkeypatch):
        """Guard against adding an ExperimentConfig knob the hash ignores."""
        from repro.core.kernels import KERNEL_BACKEND_ENV

        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        base = make_point()
        bumps = {
            "trials": 3,
            "seed": 99,
            "warmup_tasks": 1,
            "cooldown_tasks": 1,
            "queue_capacity": 7,
            "max_impulses": 64,
            "task_scale": 2.0,
            "batch_window": 8,
            # Hashes through the engine tag ("<version>+<backend>"), not the
            # config payload — see point_payload's back-compat rules.
            "kernel_backend": "array-api",
        }
        assert {f.name for f in fields(ExperimentConfig)} == set(bumps)
        for name, value in bumps.items():
            changed = make_point(config=replace(base.config, **{name: value}))
            assert changed.cache_key() != base.cache_key(), name


class TestSweepSpec:
    def test_grid_is_workload_major(self):
        config = ExperimentConfig(trials=1, seed=3)
        spec = SweepSpec.from_grid(
            pet=PETSpec(kind="spec", seed=3),
            heuristics={"PAM": HeuristicSpec("PAM"), "MM": HeuristicSpec("MM")},
            workloads={
                "19k": workload_for_level("19k", config),
                "34k": workload_for_level("34k", config),
            },
            config=config,
        )
        assert [p.label for p in spec] == ["19k,PAM", "19k,MM", "34k,PAM", "34k,MM"]
        assert len(spec) == 4
        assert spec.total_trials == 4

    def test_trial_seeds_deterministic(self):
        point = make_point()
        first = [s.generate_state(2).tolist() for s in point.trial_seeds()]
        second = [s.generate_state(2).tolist() for s in point.trial_seeds()]
        assert first == second
        assert len(first) == point.config.trials
