"""Regression tests for the sweep executor.

The two guarantees the subsystem is built on:

* **Determinism** — ``jobs=1`` and ``jobs=4`` sweeps of the same
  :class:`SweepSpec` produce identical :class:`TrialMetrics`, and the serial
  path is byte-for-byte what the historical ``run_series`` computes.
* **Caching** — a second run of the same spec against the same cache
  executes zero simulations and returns identical results.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig, workload_for_level
from repro.experiments.runner import run_series
from repro.heuristics.registry import make_heuristic
from repro.sweep import (
    HeuristicSpec,
    ParallelExecutor,
    PETSpec,
    ResultCache,
    SweepPoint,
    SweepSpec,
    pet_for,
    run_sweep,
)


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return ExperimentConfig(
        trials=4, seed=31, warmup_tasks=5, cooldown_tasks=5, task_scale=0.15
    )


@pytest.fixture(scope="module")
def spec(config) -> SweepSpec:
    pet = PETSpec(kind="spec", seed=config.seed)
    workload = workload_for_level("34k", config)
    return SweepSpec(
        points=tuple(
            SweepPoint(
                label=name,
                pet=pet,
                heuristic=HeuristicSpec(name),
                workload=workload,
                config=config,
            )
            for name in ("MM", "PAM")
        )
    )


@pytest.fixture(scope="module")
def serial_outcome(spec):
    return run_sweep(spec, jobs=1)


class TestDeterminism:
    def test_serial_matches_run_series(self, spec, config, serial_outcome):
        """The subsystem's serial path is the historical trial loop."""
        for point, trials in zip(spec.points, serial_outcome.trials_per_point):
            legacy = run_series(
                label=point.label,
                pet=pet_for(point.pet),
                heuristic_factory=lambda name=point.heuristic.name: make_heuristic(
                    name, num_task_types=12
                ),
                workload=point.workload,
                config=config,
            )
            assert legacy.trials == trials

    def test_jobs_1_equals_jobs_4(self, spec, serial_outcome):
        parallel = run_sweep(spec, jobs=4)
        assert parallel.trials_per_point == serial_outcome.trials_per_point
        assert parallel.executed_trials == spec.total_trials

    def test_series_wrapping(self, spec, serial_outcome):
        series = serial_outcome.series()
        assert [s.label for s in series] == ["MM", "PAM"]
        for s, trials in zip(series, serial_outcome.trials_per_point):
            assert s.trials == trials
            assert 0.0 <= s.mean_robustness() <= 100.0


class TestCaching:
    def test_warm_rerun_executes_zero_simulations(self, tmp_path, spec, serial_outcome):
        cold = run_sweep(spec, jobs=2, cache_dir=tmp_path)
        assert cold.executed_trials == spec.total_trials
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(spec.points)
        assert cold.trials_per_point == serial_outcome.trials_per_point

        warm = run_sweep(spec, jobs=2, cache_dir=tmp_path)
        assert warm.executed_trials == 0
        assert warm.cache_hits == len(spec.points)
        assert warm.cache_misses == 0
        assert warm.trials_per_point == cold.trials_per_point

        # The serial path reads the same cache.
        warm_serial = run_sweep(spec, jobs=1, cache_dir=tmp_path)
        assert warm_serial.executed_trials == 0
        assert warm_serial.trials_per_point == cold.trials_per_point

    def test_shared_cache_instance_accumulates_stats(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        run_sweep(spec, cache=cache)
        run_sweep(spec, cache=cache)
        assert cache.stats.hits == len(spec.points)
        assert cache.stats.stores == len(spec.points)


class TestProgress:
    def test_one_report_per_point_with_cache_flags(self, tmp_path, spec):
        seen = []
        run_sweep(spec, cache_dir=tmp_path, progress=seen.append)
        assert [r.cached for r in seen] == [False, False]
        seen.clear()
        run_sweep(spec, cache_dir=tmp_path, progress=seen.append)
        assert [r.cached for r in seen] == [True, True]
        assert [r.label for r in seen] == ["MM", "PAM"]
        assert all(r.trials == spec.points[0].config.trials for r in seen)
        assert all(0.0 <= r.mean_robustness <= 100.0 for r in seen)

    def test_reports_recorded_on_outcome(self, spec):
        outcome = run_sweep(spec)
        assert len(outcome.reports) == len(spec.points)
        assert {r.key for r in outcome.reports} == {p.cache_key() for p in spec.points}


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelExecutor(jobs=0)

    def test_empty_spec_is_a_noop(self):
        outcome = run_sweep(SweepSpec())
        assert outcome.trials_per_point == []
        assert outcome.executed_trials == 0

    def test_series_map_is_strict(self, spec, serial_outcome):
        mapped = serial_outcome.series_map(["a", "b"])
        assert mapped["a"].trials == serial_outcome.trials_per_point[0]
        with pytest.raises(ValueError, match="keys"):
            serial_outcome.series_map(["only-one"])
