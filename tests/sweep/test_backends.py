"""Tests for the pluggable execution backends.

The load-bearing guarantee: every backend produces bit-identical
``TrialMetrics`` for the same :class:`SweepSpec`, because trials always run
through the same seeded entry point regardless of where they execute.  On
top of that, the executor's interrupt path must flush every point whose
trials all finished to the result cache before the interrupt propagates.
"""

from __future__ import annotations

import threading

import pytest

from repro.experiments.config import ExperimentConfig, workload_for_level
from repro.sweep import (
    BACKEND_NAMES,
    HeuristicSpec,
    PETSpec,
    ProcessBackend,
    ResultCache,
    SerialBackend,
    SweepPoint,
    SweepSpec,
    TrialResult,
    format_heartbeat,
    make_backend,
    run_sweep,
    run_worker,
)
from repro.sweep.queue import QueueStatus, WorkerLease


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return ExperimentConfig(
        trials=2, seed=47, warmup_tasks=5, cooldown_tasks=5, task_scale=0.1
    )


@pytest.fixture(scope="module")
def spec(config) -> SweepSpec:
    pet = PETSpec(kind="spec", seed=config.seed)
    workload = workload_for_level("34k", config)
    return SweepSpec(
        points=tuple(
            SweepPoint(
                label=name,
                pet=pet,
                heuristic=HeuristicSpec(name),
                workload=workload,
                config=config,
            )
            for name in ("MM", "PAM")
        )
    )


@pytest.fixture(scope="module")
def serial_outcome(spec):
    return run_sweep(spec, jobs=1)


class TestBackendResolution:
    def test_default_jobs_1_is_serial_in_process(self):
        assert isinstance(make_backend(None, jobs=1), SerialBackend)
        assert isinstance(make_backend("process", jobs=1), SerialBackend)

    def test_process_backend_for_multiple_jobs(self):
        backend = make_backend("process", jobs=3)
        assert isinstance(backend, ProcessBackend)
        assert backend.jobs == 3

    def test_serial_name_forces_serial(self):
        assert isinstance(make_backend("serial", jobs=4), SerialBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("rpc", jobs=1)

    def test_queue_backend_requires_queue_dir(self):
        with pytest.raises(ValueError, match="queue directory"):
            make_backend("queue", jobs=1)

    def test_spec_backend_knob_is_validated_and_consulted(self, spec):
        with pytest.raises(ValueError, match="unknown backend"):
            SweepSpec(points=spec.points, backend="rpc")
        queue_spec = SweepSpec(points=spec.points, backend="queue")
        with pytest.raises(ValueError, match="queue directory"):
            run_sweep(queue_spec)

    def test_backend_is_not_part_of_the_content_address(self, spec):
        relabelled = SweepSpec(points=spec.points, backend="serial")
        for a, b in zip(spec.points, relabelled.points):
            assert a.cache_key() == b.cache_key()


class TestBackendEquivalence:
    def test_serial_backend_matches_jobs_1(self, spec, serial_outcome):
        outcome = run_sweep(spec, backend="serial")
        assert outcome.trials_per_point == serial_outcome.trials_per_point

    def test_process_backend_matches_jobs_1(self, spec, serial_outcome):
        outcome = run_sweep(spec, jobs=2, backend="process")
        assert outcome.trials_per_point == serial_outcome.trials_per_point
        assert outcome.executed_trials == spec.total_trials

    def test_queue_backend_matches_jobs_1(self, tmp_path, spec, serial_outcome):
        """An in-thread worker drains the queue; results merge bit-identically.

        (Detached multi-process workers — including a SIGKILL'd one — are
        covered in ``test_queue_recovery.py``.)
        """
        queue_dir = tmp_path / "queue"
        worker = threading.Thread(
            target=run_worker,
            args=(queue_dir,),
            kwargs=dict(poll_interval=0.02, max_tasks=spec.total_trials),
        )
        worker.start()
        try:
            outcome = run_sweep(
                spec, backend="queue", queue_dir=queue_dir, queue_workers=0
            )
        finally:
            worker.join(timeout=120)
        assert outcome.trials_per_point == serial_outcome.trials_per_point
        assert outcome.executed_trials == spec.total_trials

    def test_warm_queue_serves_results_without_workers(
        self, tmp_path, spec, serial_outcome
    ):
        """Queue rows are durable and content-addressed: a second sweep over
        the same queue directory needs no workers at all."""
        queue_dir = tmp_path / "queue"
        worker = threading.Thread(
            target=run_worker,
            args=(queue_dir,),
            kwargs=dict(poll_interval=0.02, max_tasks=spec.total_trials),
        )
        worker.start()
        try:
            run_sweep(spec, backend="queue", queue_dir=queue_dir, queue_workers=0)
        finally:
            worker.join(timeout=120)
        rerun = run_sweep(spec, backend="queue", queue_dir=queue_dir, queue_workers=0)
        assert rerun.trials_per_point == serial_outcome.trials_per_point


class _InterruptingBackend:
    """Yields the results it was given, then raises ``KeyboardInterrupt``;
    the held-back results become the cancel() harvest."""

    def __init__(self, yield_before_interrupt: int) -> None:
        self.yield_before_interrupt = yield_before_interrupt
        self._results: list[TrialResult] = []
        self.cancelled = False
        self.closed = False

    def submit_trials(self, tasks) -> None:
        from repro.sweep.executor import _execute_point_trial

        self._results = [
            TrialResult(
                point_index=task.point_index,
                trial_index=task.trial_index,
                metrics=_execute_point_trial(task.point, task.trial_index),
            )
            for task in tasks
        ]

    def drain_results(self):
        yield from self._results[: self.yield_before_interrupt]
        raise KeyboardInterrupt

    def cancel(self):
        self.cancelled = True
        return self._results[self.yield_before_interrupt :]

    def close(self) -> None:
        self.closed = True


class TestGracefulInterrupt:
    def test_interrupt_flushes_completed_points_to_cache(self, tmp_path, spec):
        """Ctrl-C mid-sweep: outstanding work is cancelled and every point
        whose trials all finished is in the cache when the interrupt lands."""
        backend = _InterruptingBackend(yield_before_interrupt=spec.total_trials)
        cache = ResultCache(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, cache=cache, backend=backend)
        assert backend.cancelled and backend.closed
        assert cache.stats.stores == len(spec.points)
        for point in spec.points:
            assert cache.load(point) is not None

    def test_interrupt_harvests_undrained_results(self, tmp_path, spec):
        """Results that finished but were never drained still reach the cache
        via the cancel() harvest."""
        backend = _InterruptingBackend(yield_before_interrupt=1)
        cache = ResultCache(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, cache=cache, backend=backend)
        assert cache.stats.stores == len(spec.points)

    def test_interrupted_sweep_resumes_from_cache(self, tmp_path, spec, serial_outcome):
        backend = _InterruptingBackend(yield_before_interrupt=1)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, cache_dir=tmp_path, backend=backend)
        resumed = run_sweep(spec, cache_dir=tmp_path)
        assert resumed.executed_trials == 0
        assert resumed.trials_per_point == serial_outcome.trials_per_point


class TestHeartbeats:
    def test_format_heartbeat_renders_workers(self):
        status = QueueStatus(
            pending=3,
            leased=2,
            done=5,
            dead=1,
            workers=(WorkerLease(owner="host:42", tasks=2, lease_expires_at=1060.0),),
        )
        line = format_heartbeat(status, now=1000.0)
        assert line == (
            "[queue] 3 pending, 2 leased, 5 done, 1 dead"
            " | workers: host:42 (2 leased, 60s left)"
        )

    def test_format_heartbeat_without_workers(self):
        assert format_heartbeat(QueueStatus(pending=1)) == (
            "[queue] 1 pending, 0 leased, 0 done, 0 dead"
        )

    def test_format_heartbeat_expired_lease_says_so(self):
        """An expired lease renders as expired, never as '0s left'."""
        status = QueueStatus(
            leased=1,
            workers=(WorkerLease(owner="host:9", tasks=1, lease_expires_at=900.0),),
        )
        line = format_heartbeat(status, now=1000.0)
        assert "host:9 (1 leased, lease expired)" in line
        assert "no live workers" in line
        assert "0s left" not in line

    def test_format_heartbeat_mixed_live_and_expired(self):
        status = QueueStatus(
            leased=2,
            workers=(
                WorkerLease(owner="host:1", tasks=1, lease_expires_at=950.0),
                WorkerLease(owner="host:2", tasks=1, lease_expires_at=1030.0),
            ),
        )
        line = format_heartbeat(status, now=1000.0)
        assert "host:1 (1 leased, lease expired)" in line
        assert "host:2 (1 leased, 30s left)" in line
        assert "no live workers" not in line

    def test_format_heartbeat_dead_only_queue(self):
        """A queue with nothing runnable left points at the recovery path."""
        line = format_heartbeat(QueueStatus(done=2, dead=3), now=1000.0)
        assert line.startswith("[queue] 0 pending, 0 leased, 2 done, 3 dead")
        assert "stalled" in line
        assert "repro queue requeue --dead" in line

    def test_format_heartbeat_null_owner_never_crashes(self):
        status = QueueStatus(
            leased=1,
            workers=(WorkerLease(owner=None, tasks=1, lease_expires_at=0.0),),
        )
        line = format_heartbeat(status, now=1000.0)
        assert "<unknown owner> (1 leased, lease expired)" in line

    def test_status_tolerates_null_lease_columns(self, tmp_path):
        """A leased row with NULL owner/expiry (interrupted write) must not
        crash observation; it shows up as an already-expired lease."""
        import sqlite3
        from contextlib import closing

        from repro.sweep import WorkQueue

        queue = WorkQueue(tmp_path / "queue")
        with closing(sqlite3.connect(queue.db_path)) as conn:
            conn.execute(
                "INSERT INTO tasks (task_key, point_key, trial_index, label,"
                " point_blob, status, max_attempts, enqueued_at, updated_at)"
                " VALUES ('x:00000', 'x', 0, 'hurt', X'00', 'leased', 3, 1.0, 1.0)"
            )
            conn.commit()
        status = queue.status()
        assert status.leased == 1
        [lease] = status.workers
        assert lease.owner is None
        assert lease.lease_expires_at == 0.0
        line = format_heartbeat(status, now=1000.0)
        assert "no live workers" in line

    def test_stream_reporter_exposes_heartbeat(self, capsys):
        import io

        from repro.sweep import StreamReporter

        stream = io.StringIO()
        StreamReporter(stream).heartbeat(QueueStatus(pending=2))
        assert "[queue] 2 pending" in stream.getvalue()

    def test_queue_backend_emits_heartbeats_while_waiting(self, tmp_path, spec):
        beats: list[QueueStatus] = []
        worker = threading.Thread(
            target=run_worker,
            args=(tmp_path / "queue",),
            kwargs=dict(poll_interval=0.02, max_tasks=spec.total_trials),
        )
        worker.start()
        try:

            class _Progress:
                def __call__(self, report):
                    pass

                def heartbeat(self, status):
                    beats.append(status)

            run_sweep(
                spec,
                backend="queue",
                queue_dir=tmp_path / "queue",
                queue_workers=0,
                progress=_Progress(),
            )
        finally:
            worker.join(timeout=120)
        assert beats, "no heartbeat was emitted while waiting on remote workers"
        assert all(isinstance(b, QueueStatus) for b in beats)


def test_backend_names_are_stable():
    # The CLI, SweepSpec validation and docs all name these three.
    assert BACKEND_NAMES == ("serial", "process", "queue")


class TestDetachedWorkersEndToEnd:
    def test_fig4_queue_sweep_with_two_detached_workers_matches_serial(self, tmp_path):
        """The acceptance path: a figure-4 sweep through ``QueueBackend``
        with two spawned ``repro worker`` processes merges bit-identically
        (atol=0) to the ``jobs=1`` serial run, under identical cache keys.
        """
        from repro.experiments.fig4_lambda import run_fig4

        config = ExperimentConfig(
            trials=1, seed=29, warmup_tasks=5, cooldown_tasks=5, task_scale=0.1
        )
        lambdas = (0.5, 0.9)
        serial_cache = tmp_path / "serial-cache"
        queued_cache = tmp_path / "queued-cache"
        serial = run_fig4(config, lambdas=lambdas, cache_dir=serial_cache)
        queued = run_fig4(
            config,
            lambdas=lambdas,
            cache_dir=queued_cache,
            backend="queue",
            queue_dir=tmp_path / "queue",
            queue_workers=2,
        )
        assert set(queued.series) == set(serial.series)
        for key, series in serial.series.items():
            assert queued.series[key].trials == series.trials  # bit-identical
        # Identical sweep cache keys: both runs produced the same artefacts.
        serial_keys = sorted(p.name for p in serial_cache.glob("??/*.json"))
        queued_keys = sorted(p.name for p in queued_cache.glob("??/*.json"))
        assert serial_keys == queued_keys and serial_keys


class TestSpawnedWorkerFailure:
    def test_dead_spawned_workers_fail_fast_with_log_pointer(
        self, tmp_path, spec, monkeypatch
    ):
        """If every worker the backend spawned dies without draining the
        queue, the sweep fails fast naming the logs instead of hanging."""
        import sys

        from repro.sweep.backends import QueueBackend
        from repro.sweep.executor import TrialTask

        monkeypatch.setattr(sys, "executable", "/bin/false")
        backend = QueueBackend(tmp_path / "queue", workers=2, poll_interval=0.02)
        backend.submit_trials(
            [TrialTask(point_index=0, point=spec.points[0], trial_index=0)]
        )
        try:
            with pytest.raises(RuntimeError, match="stranded pending"):
                for _ in backend.drain_results():  # pragma: no cover - must raise
                    pass
        finally:
            backend.close()


class TestDeadLetterSurfacing:
    def test_drain_raises_queue_task_error_for_dead_rows(self, tmp_path, spec):
        """A trial that exhausted its attempts fails the sweep loudly, naming
        the point and the recorded error (instead of hanging forever)."""
        from repro.sweep import QueueTaskError, WorkQueue
        from repro.sweep.backends import QueueBackend, TrialTask

        queue = WorkQueue(tmp_path / "queue", max_attempts=1)
        point = spec.points[0]
        queue.enqueue(point, 0)
        claimed = queue.claim("w")
        queue.fail(claimed.task_key, "w", "ValueError: poisoned trial")

        backend = QueueBackend(tmp_path / "queue", workers=0, poll_interval=0.02)
        backend.submit_trials([TrialTask(point_index=0, point=point, trial_index=0)])
        with pytest.raises(QueueTaskError, match="poisoned trial"):
            for _ in backend.drain_results():  # pragma: no cover - must raise
                pass
        backend.close()


class TestDuplicateContentAddresses:
    def test_points_sharing_a_content_address_all_receive_results(
        self, tmp_path, config
    ):
        """Labels are excluded from cache keys, so a grid can contain points
        with identical content addresses; one physical queue row must then
        feed every such point (not just the last one submitted)."""
        pet = PETSpec(kind="spec", seed=config.seed)
        workload = workload_for_level("34k", config)
        twins = SweepSpec(
            points=tuple(
                SweepPoint(
                    label=label,
                    pet=pet,
                    heuristic=HeuristicSpec("MM"),
                    workload=workload,
                    config=config,
                )
                for label in ("twin-a", "twin-b")
            )
        )
        assert twins.points[0].cache_key() == twins.points[1].cache_key()
        serial = run_sweep(twins, jobs=1)

        worker = threading.Thread(
            target=run_worker,
            args=(tmp_path / "queue",),
            kwargs=dict(poll_interval=0.02, max_tasks=config.trials),  # one row set
        )
        worker.start()
        try:
            outcome = run_sweep(
                twins, backend="queue", queue_dir=tmp_path / "queue", queue_workers=0
            )
        finally:
            worker.join(timeout=120)
        assert outcome.trials_per_point == serial.trials_per_point
        assert all(outcome.trials_per_point)  # both twins populated
