"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.heuristic == "PAM"
        assert args.workload == "spec"

    def test_figure_arguments(self):
        args = build_parser().parse_args(["figure", "7", "--trials", "3"])
        assert args.command == "figure"
        assert args.number == 7
        assert args.trials == 3

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "3"])

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "4", "7", "--jobs", "4", "--cache-dir", "cache/"]
        )
        assert args.command == "sweep"
        assert args.numbers == [4, 7]
        assert args.jobs == 4
        assert args.cache_dir == "cache/"

    def test_figure_accepts_jobs_and_cache_dir(self):
        args = build_parser().parse_args(
            ["figure", "9", "--jobs", "2", "--cache-dir", "cache/"]
        )
        assert args.jobs == 2
        assert args.cache_dir == "cache/"

    def test_sweep_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "3"])

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--heuristic", "WHAT"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_kernel_backend_accepted_everywhere(self):
        parser = build_parser()
        assert parser.parse_args(["simulate"]).kernel_backend is None
        for argv in (
            ["simulate", "--kernel-backend", "array-api"],
            ["figure", "9", "--kernel-backend", "numba"],
            ["sweep", "4", "--kernel-backend", "numpy"],
            ["trace", "replay", "t.json", "--kernel-backend", "numba"],
            ["serve", "run", "--socket", "/tmp/s.sock", "--kernel-backend", "array-api"],
        ):
            args = parser.parse_args(argv)
            assert args.kernel_backend == argv[-1]

    def test_unknown_kernel_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--kernel-backend", "cuda"])

    def test_batch_window_argument(self):
        parser = build_parser()
        assert parser.parse_args(["figure", "9"]).batch_window == 0
        assert (
            parser.parse_args(["sweep", "4", "--batch-window", "8"]).batch_window == 8
        )
        assert (
            parser.parse_args(
                ["trace", "replay", "t.json", "--batch-window", "4"]
            ).batch_window
            == 4
        )
        with pytest.raises(SystemExit):
            parser.parse_args(["figure", "9", "--batch-window", "-1"])


class TestSimulateCommand:
    def test_runs_small_simulation(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--heuristic",
                "MM",
                "--tasks",
                "60",
                "--span",
                "500",
                "--workload",
                "transcoding",
                "--warmup",
                "5",
                "--cooldown",
                "5",
                "--seed",
                "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "robustness" in captured
        assert "outcomes:" in captured

    def test_simulate_with_kernel_backend(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--heuristic",
                "MM",
                "--tasks",
                "40",
                "--span",
                "400",
                "--workload",
                "transcoding",
                "--seed",
                "3",
                "--kernel-backend",
                "array-api",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "kernel backend" in captured
        assert "array-api" in captured

    def test_pruning_heuristic_runs(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--heuristic",
                "PAMF",
                "--tasks",
                "50",
                "--span",
                "400",
                "--workload",
                "transcoding",
                "--seed",
                "4",
                "--warmup",
                "5",
                "--cooldown",
                "5",
            ]
        )
        assert exit_code == 0
        assert "cost / percent" in capsys.readouterr().out


class TestFigureCommand:
    def test_figure9_with_artifacts(self, tmp_path, capsys):
        exit_code = main(
            [
                "figure",
                "9",
                "--trials",
                "1",
                "--task-scale",
                "0.4",
                "--output-dir",
                str(tmp_path),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 9" in captured
        records = json.loads((tmp_path / "figure9.json").read_text())
        assert records and "heuristic" in records[0]
        assert (tmp_path / "figure9.csv").exists()
        assert (tmp_path / "figure9.txt").exists()


class TestSweepCommand:
    def test_sweep_streams_progress_and_hits_cache(self, tmp_path, capsys):
        argv = [
            "sweep",
            "9",
            "--trials",
            "1",
            "--task-scale",
            "0.4",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
        assert "robustness" in captured.err  # per-point progress on stderr

        # Warm rerun: every point reported as a cache hit.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
        assert "cache" in captured.err

    def test_sweep_quiet_suppresses_progress(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    "9",
                    "--trials",
                    "1",
                    "--task-scale",
                    "0.4",
                    "--cache-dir",
                    str(tmp_path),
                    "--quiet",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
        assert captured.err == ""


class TestTraceCommand:
    def test_record_inspect_replay_round_trip(self, tmp_path, capsys):
        trace_file = tmp_path / "recorded.trace.json"
        assert (
            main(
                [
                    "trace",
                    "record",
                    "--builder",
                    "transcoding-660",
                    "--tasks",
                    "40",
                    "--seed",
                    "7",
                    "--out",
                    str(trace_file),
                ]
            )
            == 0
        )
        captured = capsys.readouterr().out
        assert trace_file.exists()
        assert "tasks              : 40" in captured
        assert "content sha256" in captured

        assert main(["trace", "inspect", str(trace_file)]) == 0
        captured = capsys.readouterr().out
        assert "tasks              : 40" in captured

        cache_dir = tmp_path / "cache"
        argv = [
            "trace",
            "replay",
            str(trace_file),
            "--heuristics",
            "PAMF",
            "MM",
            "--trials",
            "1",
            "--cache-dir",
            str(cache_dir),
            "--quiet",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr().out
        assert "replay,PAMF" in captured
        assert "replay,MM" in captured

        # Warm rerun executes nothing.
        assert main(argv) == 0
        captured = capsys.readouterr().out
        assert "0 trials executed" in captured

    def test_record_synthetic_workload(self, tmp_path, capsys):
        trace_file = tmp_path / "synthetic.trace.json"
        argv = [
            "trace",
            "record",
            "--workload",
            "transcoding",
            "--tasks",
            "30",
            "--span",
            "400",
            "--out",
            str(trace_file),
        ]
        assert main(argv) == 0
        assert trace_file.exists()
        assert "synthetic" in capsys.readouterr().out

    def test_sweep9_accepts_trace_file(self, tmp_path, capsys):
        trace_file = tmp_path / "small.trace.json"
        main(
            [
                "trace",
                "record",
                "--builder",
                "transcoding-660",
                "--tasks",
                "40",
                "--out",
                str(trace_file),
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "sweep",
                    "9",
                    "--trials",
                    "1",
                    "--trace",
                    str(trace_file),
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--quiet",
                ]
            )
            == 0
        )
        captured = capsys.readouterr().out
        assert "replay" in captured

    def test_trace_rejected_for_other_figures(self, tmp_path):
        with pytest.raises(SystemExit, match="only applies to figure 9"):
            main(["figure", "4", "--trace", "whatever.json", "--trials", "1"])

    def test_replay_missing_file_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="trace file not found"):
            main(["trace", "replay", str(tmp_path / "nope.json"), "--trials", "1"])

    def test_sweep9_missing_trace_file_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="trace file not found"):
            main(["sweep", "9", "--trace", str(tmp_path / "nope.json"), "--trials", "1"])

    def test_record_builder_rejects_span_and_beta(self, tmp_path):
        with pytest.raises(SystemExit, match="only apply to synthetic"):
            main(
                [
                    "trace",
                    "record",
                    "--builder",
                    "transcoding-660",
                    "--span",
                    "500",
                    "--out",
                    str(tmp_path / "t.json"),
                ]
            )

    def test_inspect_corrupt_file_names_task(self, tmp_path):
        trace_file = tmp_path / "bad.trace.json"
        main(
            [
                "trace",
                "record",
                "--builder",
                "transcoding-660",
                "--tasks",
                "5",
                "--out",
                str(trace_file),
            ]
        )
        payload = json.loads(trace_file.read_text())
        del payload["tasks"][2]["deadline"]
        trace_file.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="task 2: missing field 'deadline'"):
            main(["trace", "inspect", str(trace_file)])


class TestWorkerAndQueueCommands:
    def test_parser_accepts_backend_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "4", "--backend", "queue", "--queue-dir", "q/", "--queue-workers", "2"]
        )
        assert args.backend == "queue"
        assert args.queue_dir == "q/"
        assert args.queue_workers == 2

    def test_backend_defaults_to_process(self):
        args = build_parser().parse_args(["sweep", "4"])
        assert args.backend == "process"
        assert args.queue_dir is None
        assert args.queue_workers is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "4", "--backend", "rpc"])

    def test_queue_backend_requires_queue_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="--queue-dir"):
            main(["sweep", "4", "--backend", "queue", "--trials", "1"])
        with pytest.raises(SystemExit, match="--queue-dir"):
            main(
                [
                    "trace",
                    "replay",
                    "examples/transcoding_660.trace.json",
                    "--backend",
                    "queue",
                ]
            )

    def test_worker_exits_when_queue_is_empty(self, tmp_path, capsys):
        exit_code = main(
            [
                "worker",
                "--queue-dir",
                str(tmp_path / "queue"),
                "--exit-when-empty",
                "--quiet",
            ]
        )
        assert exit_code == 0
        assert "executed 0 trial(s)" in capsys.readouterr().out

    def test_queue_status_requeue_drain_round_trip(self, tmp_path, capsys):
        from repro.experiments.config import ExperimentConfig
        from repro.sweep import HeuristicSpec, PETSpec, SweepPoint, WorkQueue
        from repro.workload.generator import WorkloadConfig

        queue_dir = tmp_path / "queue"
        queue = WorkQueue(queue_dir)
        config = ExperimentConfig(trials=2, seed=5)
        point = SweepPoint(
            label="demo",
            pet=PETSpec(kind="spec", seed=5),
            heuristic=HeuristicSpec(name="MM"),
            workload=WorkloadConfig(num_tasks=40, time_span=300, beta=1.5),
            config=config,
        )
        queue.enqueue_point(point)
        queue.claim("cli-worker")

        assert main(["queue", "status", "--queue-dir", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "pending | 1" in out
        assert "leased  | 1" in out
        assert "cli-worker" in out

        assert main(["queue", "requeue", "--queue-dir", str(queue_dir)]) == 0
        assert "requeued 0 trial(s)" in capsys.readouterr().out

        assert main(["queue", "drain", "--queue-dir", str(queue_dir)]) == 0
        assert "drained 2" in capsys.readouterr().out
        assert queue.status().total == 0


class TestCacheCommands:
    @staticmethod
    def _store_artefact(cache_dir, seed=5, kernel_backend=None):
        from repro.experiments.config import ExperimentConfig
        from repro.sweep import HeuristicSpec, PETSpec, ResultCache, SweepPoint, TrialMetrics
        from repro.workload.generator import WorkloadConfig

        point = SweepPoint(
            label="demo",
            pet=PETSpec(kind="spec", seed=seed),
            heuristic=HeuristicSpec(name="MM"),
            workload=WorkloadConfig(num_tasks=40, time_span=300, beta=1.5),
            config=ExperimentConfig(
                trials=1, seed=seed, kernel_backend=kernel_backend
            ),
        )
        trials = [
            TrialMetrics(
                robustness_percent=50.0,
                fairness_variance=1.0,
                total_cost=2.0,
                cost_per_percent_on_time=0.04,
                completed_on_time=10,
                total_tasks=40,
                per_type_completion_percent=(50.0,),
            )
        ]
        return ResultCache(cache_dir).store(point, trials)

    def test_cache_stats_reports_kernel_versions(self, tmp_path, capsys):
        from repro.core.batch import KERNEL_VERSION

        self._store_artefact(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries            : 1" in out
        assert str(KERNEL_VERSION) in out
        assert "current" in out

    def test_cache_gc_drops_stale_kernel_versions(self, tmp_path, capsys):
        path = self._store_artefact(tmp_path)
        # Current-version artefacts survive a default gc...
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 0 artefact(s)" in capsys.readouterr().out
        assert path.exists()
        # ...a dry run against another version reports but keeps them...
        assert (
            main(
                [
                    "cache", "gc", "--cache-dir", str(tmp_path),
                    "--kernel-version", "v-next", "--dry-run",
                ]
            )
            == 0
        )
        assert "would remove 1 artefact(s)" in capsys.readouterr().out
        assert path.exists()
        # ...and a real gc against another version drops them.
        assert (
            main(
                ["cache", "gc", "--cache-dir", str(tmp_path), "--kernel-version", "v-next"]
            )
            == 0
        )
        assert "removed 1 artefact(s)" in capsys.readouterr().out
        assert not path.exists()

    def test_cache_stats_groups_by_backend_tag(self, tmp_path, capsys, monkeypatch):
        from repro.core.batch import KERNEL_VERSION
        from repro.core.kernels import KERNEL_BACKEND_ENV

        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        self._store_artefact(tmp_path)
        self._store_artefact(tmp_path, kernel_backend="numba")
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries            : 2" in out
        assert "backend" in out
        assert f"{KERNEL_VERSION}+numba" in out
        assert "numpy" in out
        # Both tags share the current version, so neither row is stale.
        assert "stale" not in out

    def test_cache_gc_backend_filter(self, tmp_path, capsys, monkeypatch):
        from repro.core.kernels import KERNEL_BACKEND_ENV

        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        numpy_path = self._store_artefact(tmp_path)
        numba_path = self._store_artefact(tmp_path, kernel_backend="numba")
        # Default gc keeps every backend at the current version.
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 0 artefact(s)" in capsys.readouterr().out
        assert numpy_path.exists() and numba_path.exists()
        # Restricting to one backend drops the other.
        assert (
            main(
                [
                    "cache", "gc", "--cache-dir", str(tmp_path),
                    "--kernel-backend", "numpy",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "removed 1 artefact(s)" in out
        assert "on backend 'numpy'" in out
        assert numpy_path.exists() and not numba_path.exists()


class TestServeCommands:
    def test_run_requires_socket(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "run"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["serve", "run", "--socket", "/tmp/s.sock"])
        assert args.serve_command == "run"
        assert args.pet == "transcoding"
        assert args.heuristic == "PAMF"
        assert args.drain_grace == 5.0
        assert args.workers == 1
        assert args.inbox_limit is None
        assert args.listen is None

    def test_run_accepts_tcp_listen_with_workers(self):
        args = build_parser().parse_args(
            [
                "serve", "run", "--listen", "tcp:127.0.0.1:0",
                "--workers", "4", "--inbox-limit", "64",
            ]
        )
        assert args.listen == "tcp:127.0.0.1:0"
        assert args.socket is None
        assert args.workers == 4
        assert args.inbox_limit == 64

    def test_run_socket_and_listen_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "run", "--socket", "/tmp/s.sock", "--listen", "tcp::0"]
            )

    def test_submit_requires_exactly_one_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "submit", "--trace", "t.json"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "serve", "submit", "--socket", "/tmp/s.sock",
                    "--connect", "tcp:127.0.0.1:7077", "--trace", "t.json",
                ]
            )
        args = build_parser().parse_args(
            ["serve", "submit", "--connect", "tcp:127.0.0.1:7077", "--trace", "t.json"]
        )
        assert args.connect == "tcp:127.0.0.1:7077"
        assert args.socket is None

    def test_submit_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "submit", "--socket", "/tmp/s.sock"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "serve", "submit", "--socket", "/tmp/s.sock",
                    "--trace", "t.json", "--task", "1", "0", "0", "50",
                ]
            )

    def test_bench_defaults(self):
        args = build_parser().parse_args(["serve", "bench"])
        assert args.serve_command == "bench"
        assert args.trace == "examples/transcoding_660.trace.json"
        assert args.rates == [10.0, 100.0, 1000.0]
        assert args.out == "BENCH_serve.json"
        assert not args.no_check
        assert args.transport == "unix"
        assert args.workers == 1
        assert args.inbox_limit is None

    def test_bench_topology_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "bench", "--transport", "tcp",
                "--workers", "2", "--inbox-limit", "8",
            ]
        )
        assert args.transport == "tcp"
        assert args.workers == 2
        assert args.inbox_limit == 8
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "bench", "--transport", "udp"])

    def test_bench_rejects_nonpositive_rate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "bench", "--rates", "0"])

    def test_bench_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        exit_code = main(
            [
                "serve", "bench",
                "--trace", "examples/transcoding_660.trace.json",
                "--tasks", "12",
                "--rates", "500", "5000",
                "--out", str(out),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "replay-equivalent to offline run: True" in captured.out
        assert f"wrote {out}" in captured.out
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "repro.serve"
        assert payload["trace_tasks"] == 12
        assert [row["multiplier"] for row in payload["rates"]] == [500.0, 5000.0]
        assert payload["transport"] == "unix"
        assert payload["workers"] == 1

    def test_bench_sharded_tcp_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve_shard2.json"
        exit_code = main(
            [
                "serve", "bench",
                "--trace", "examples/transcoding_660.trace.json",
                "--tasks", "12",
                "--rates", "2000",
                "--transport", "tcp",
                "--workers", "2",
                "--out", str(out),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "replay-equivalent to offline run: True" in captured.out
        payload = json.loads(out.read_text())
        assert payload["transport"] == "tcp"
        assert payload["workers"] == 2
        assert payload["equivalent_to_offline"] is True
