"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.heuristic == "PAM"
        assert args.workload == "spec"

    def test_figure_arguments(self):
        args = build_parser().parse_args(["figure", "7", "--trials", "3"])
        assert args.command == "figure"
        assert args.number == 7
        assert args.trials == 3

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "3"])

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "4", "7", "--jobs", "4", "--cache-dir", "cache/"]
        )
        assert args.command == "sweep"
        assert args.numbers == [4, 7]
        assert args.jobs == 4
        assert args.cache_dir == "cache/"

    def test_figure_accepts_jobs_and_cache_dir(self):
        args = build_parser().parse_args(
            ["figure", "9", "--jobs", "2", "--cache-dir", "cache/"]
        )
        assert args.jobs == 2
        assert args.cache_dir == "cache/"

    def test_sweep_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "3"])

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--heuristic", "WHAT"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSimulateCommand:
    def test_runs_small_simulation(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--heuristic",
                "MM",
                "--tasks",
                "60",
                "--span",
                "500",
                "--workload",
                "transcoding",
                "--warmup",
                "5",
                "--cooldown",
                "5",
                "--seed",
                "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "robustness" in captured
        assert "outcomes:" in captured

    def test_pruning_heuristic_runs(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--heuristic",
                "PAMF",
                "--tasks",
                "50",
                "--span",
                "400",
                "--workload",
                "transcoding",
                "--seed",
                "4",
                "--warmup",
                "5",
                "--cooldown",
                "5",
            ]
        )
        assert exit_code == 0
        assert "cost / percent" in capsys.readouterr().out


class TestFigureCommand:
    def test_figure9_with_artifacts(self, tmp_path, capsys):
        exit_code = main(
            [
                "figure",
                "9",
                "--trials",
                "1",
                "--task-scale",
                "0.4",
                "--output-dir",
                str(tmp_path),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 9" in captured
        records = json.loads((tmp_path / "figure9.json").read_text())
        assert records and "heuristic" in records[0]
        assert (tmp_path / "figure9.csv").exists()
        assert (tmp_path / "figure9.txt").exists()


class TestSweepCommand:
    def test_sweep_streams_progress_and_hits_cache(self, tmp_path, capsys):
        argv = [
            "sweep",
            "9",
            "--trials",
            "1",
            "--task-scale",
            "0.4",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
        assert "robustness" in captured.err  # per-point progress on stderr

        # Warm rerun: every point reported as a cache hit.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
        assert "cache" in captured.err

    def test_sweep_quiet_suppresses_progress(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    "9",
                    "--trials",
                    "1",
                    "--task-scale",
                    "0.4",
                    "--cache-dir",
                    str(tmp_path),
                    "--quiet",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
        assert captured.err == ""
