"""Cross-heuristic behavioural tests on shared workloads.

These run every heuristic on the same traces and check system-level
properties that must hold regardless of the mapping policy, plus the relative
behaviours that motivate the paper's comparison.
"""

from __future__ import annotations

import pytest

import repro
from repro.heuristics.registry import HEURISTIC_NAMES, make_heuristic


@pytest.fixture(scope="module")
def per_heuristic_results(small_gamma_pet, request):
    """One simulation per heuristic on a shared oversubscribed trace."""
    trace = repro.generate_workload(
        repro.WorkloadConfig(num_tasks=110, time_span=550, beta=1.5),
        small_gamma_pet,
        rng=21,
    )
    results = {}
    for name in HEURISTIC_NAMES:
        heuristic = make_heuristic(name, num_task_types=small_gamma_pet.num_task_types)
        results[name] = repro.simulate(small_gamma_pet, heuristic, trace, rng=22)
    return results


@pytest.fixture(scope="module")
def light_results(small_gamma_pet):
    """One simulation per heuristic on a lightly loaded trace."""
    trace = repro.generate_workload(
        repro.WorkloadConfig(num_tasks=30, time_span=1500, beta=3.0),
        small_gamma_pet,
        rng=31,
    )
    results = {}
    for name in HEURISTIC_NAMES:
        heuristic = make_heuristic(name, num_task_types=small_gamma_pet.num_task_types)
        results[name] = repro.simulate(small_gamma_pet, heuristic, trace, rng=32)
    return results


class TestUniversalInvariants:
    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_every_task_reaches_exactly_one_terminal_state(self, per_heuristic_results, name):
        result = per_heuristic_results[name]
        assert all(t.is_terminal for t in result.tasks)
        assert sum(result.status_counts().values()) == len(result.tasks)

    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_no_task_starts_before_arrival_or_mapping(self, per_heuristic_results, name):
        for task in per_heuristic_results[name].tasks:
            if task.exec_start is not None:
                assert task.exec_start >= task.arrival
                assert task.mapped_at is not None
                assert task.exec_start >= task.mapped_at

    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_on_time_tasks_really_met_their_deadlines(self, per_heuristic_results, name):
        for task in per_heuristic_results[name].tasks:
            if task.on_time:
                assert task.exec_end <= task.deadline

    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_busy_time_never_exceeds_span_per_machine(self, per_heuristic_results, name):
        result = per_heuristic_results[name]
        for busy in result.machine_busy_times:
            assert 0 <= busy <= result.end_time

    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_robustness_bounded(self, per_heuristic_results, name):
        assert 0.0 <= per_heuristic_results[name].robustness_percent() <= 100.0


class TestLightLoadBehaviour:
    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_everyone_does_well_without_oversubscription(self, light_results, name):
        """With ample slack and light load, every heuristic (including the
        pruning-aware ones — nothing should be pruned) completes most tasks."""
        assert light_results[name].robustness_percent() >= 75.0

    def test_pruning_heuristics_do_not_drop_needlessly(self, light_results):
        for name in ("PAM", "PAMF"):
            assert light_results[name].counters.proactive_drops == 0


class TestOversubscribedComparison:
    def test_pruning_mappers_lead_the_ranking(self, per_heuristic_results):
        robustness = {
            name: result.robustness_percent(warmup=10, cooldown=10)
            for name, result in per_heuristic_results.items()
        }
        ranking = sorted(robustness, key=robustness.get, reverse=True)
        assert ranking[0] in ("PAM", "PAMF")
        assert robustness["PAM"] >= robustness["MM"]

    def test_only_pruning_mappers_defer_or_prune(self, per_heuristic_results):
        for name, result in per_heuristic_results.items():
            if name in ("PAM", "PAMF"):
                assert result.counters.deferrals > 0
            else:
                assert result.counters.deferrals == 0
                assert result.counters.proactive_drops == 0

    def test_cost_of_pruning_mappers_not_higher(self, per_heuristic_results):
        pam_cost = per_heuristic_results["PAM"].total_cost()
        mm_cost = per_heuristic_results["MM"].total_cost()
        assert pam_cost <= mm_cost * 1.05
