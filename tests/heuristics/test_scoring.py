"""Tests for the fast phase-1 scoring primitives."""

from __future__ import annotations

import pytest

from repro.core.completion import DroppingPolicy
from repro.core.pmf import DiscretePMF
from repro.core.robustness import success_probability
from repro.heuristics.scoring import expected_completion, fast_success_probability, urgency


class TestFastSuccessProbability:
    def test_matches_exact_computation(self, simple_pmf, fig2_prev_pct):
        for deadline in range(2, 12):
            exact = success_probability(simple_pmf, fig2_prev_pct, deadline, DroppingPolicy.PENDING)
            fast = fast_success_probability(simple_pmf, fig2_prev_pct, deadline)
            assert fast == pytest.approx(exact)

    def test_idle_machine(self, simple_pmf):
        availability = DiscretePMF.point(10)
        assert fast_success_probability(simple_pmf, availability, 13) == pytest.approx(1.0)
        assert fast_success_probability(simple_pmf, availability, 12) == pytest.approx(0.75)
        assert fast_success_probability(simple_pmf, availability, 10) == 0.0

    def test_zero_when_start_at_or_after_deadline(self, simple_pmf):
        availability = DiscretePMF.point(20)
        assert fast_success_probability(simple_pmf, availability, 20) == 0.0
        assert fast_success_probability(simple_pmf, availability, 15) == 0.0

    def test_zero_mass_availability(self, simple_pmf):
        assert fast_success_probability(simple_pmf, DiscretePMF.zero(), 100) == 0.0

    def test_monotone_in_deadline(self, simple_pmf, fig2_prev_pct):
        values = [
            fast_success_probability(simple_pmf, fig2_prev_pct, d) for d in range(2, 15)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_bounded_by_one(self, simple_pmf, fig2_prev_pct):
        assert fast_success_probability(simple_pmf, fig2_prev_pct, 1000) <= 1.0


class TestExpectedCompletion:
    def test_sum_of_means(self, simple_pmf, fig2_prev_pct):
        assert expected_completion(simple_pmf, fig2_prev_pct) == pytest.approx(
            simple_pmf.mean() + fig2_prev_pct.mean()
        )

    def test_matches_convolution_mean(self, simple_pmf, fig2_prev_pct):
        conv_mean = simple_pmf.convolve(fig2_prev_pct).mean()
        assert expected_completion(simple_pmf, fig2_prev_pct) == pytest.approx(conv_mean)


class TestUrgency:
    def test_closer_deadline_is_more_urgent(self):
        assert urgency(100, 50) < urgency(60, 50)

    def test_formula(self):
        assert urgency(60, 50) == pytest.approx(0.1)

    def test_impossible_task_is_maximally_urgent(self):
        assert urgency(50, 50) == float("inf")
        assert urgency(40, 50) == float("inf")
