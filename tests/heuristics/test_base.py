"""Tests for the two-phase framework: virtual queues and the score table."""

from __future__ import annotations

import pytest

from repro.core.completion import DroppingPolicy
from repro.heuristics.base import ScoreTable, VirtualSystemState
from repro.heuristics.scoring import fast_success_probability
from repro.simulator.machine import Machine
from repro.simulator.mapping import MappingContext, batch_in_arrival_order
from repro.simulator.task import Task
from repro.workload.spec import TaskSpec


def make_task(task_id: int, *, task_type: int = 0, deadline: int = 500, arrival: int = 0) -> Task:
    return Task(TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline))


def make_context(tiny_pet, machines, batch=(), now=0):
    return MappingContext(
        now=now,
        batch=batch_in_arrival_order(batch),
        machines=tuple(machines),
        pet=tiny_pet,
        policy=DroppingPolicy.EVICT,
    )


class TestVirtualSystemState:
    def test_free_slots_reflect_real_queues(self, tiny_pet):
        m0 = Machine(0, "fast-a", queue_capacity=3)
        m1 = Machine(1, "fast-b", queue_capacity=3)
        m0.enqueue(make_task(10), now=0)
        context = make_context(tiny_pet, [m0, m1])
        virtual = VirtualSystemState(context)
        assert virtual.machines[0].free_slots == 2
        assert virtual.machines[1].free_slots == 3
        assert virtual.total_free_slots == 5

    def test_assign_consumes_slot_and_extends_availability(self, tiny_pet):
        m0 = Machine(0, "fast-a", queue_capacity=2)
        context = make_context(tiny_pet, [m0])
        virtual = VirtualSystemState(context)
        before = virtual.machines[0].availability.mean()
        task = make_task(1, task_type=0, deadline=400)
        virtual.assign(task, 0)
        after = virtual.machines[0].availability.mean()
        assert virtual.machines[0].free_slots == 1
        assert after > before

    def test_assign_to_full_machine_raises(self, tiny_pet):
        m0 = Machine(0, "fast-a", queue_capacity=1)
        m0.enqueue(make_task(10), now=0)
        context = make_context(tiny_pet, [m0])
        virtual = VirtualSystemState(context)
        with pytest.raises(RuntimeError):
            virtual.assign(make_task(1), 0)

    def test_dropped_tasks_excluded_from_availability(self, tiny_pet):
        m0 = Machine(0, "fast-a", queue_capacity=4)
        long_task = make_task(10, task_type=2, deadline=600)
        m0.enqueue(long_task, now=0)
        context = make_context(tiny_pet, [m0])
        with_task = VirtualSystemState(context)
        without_task = VirtualSystemState(context, dropped_task_ids={10})
        assert without_task.machines[0].free_slots == with_task.machines[0].free_slots + 1
        assert without_task.machines[0].availability.mean() < with_task.machines[0].availability.mean()

    def test_availability_override_used(self, tiny_pet):
        from repro.core.pmf import DiscretePMF

        m0 = Machine(0, "fast-a", queue_capacity=4)
        m0.enqueue(make_task(10), now=0)
        context = make_context(tiny_pet, [m0])
        override = {0: DiscretePMF.point(77)}
        virtual = VirtualSystemState(context, availability_override=override)
        assert virtual.machines[0].availability.probability_at(77) == pytest.approx(1.0)


class TestScoreTable:
    def test_scores_match_reference_functions(self, tiny_pet):
        m0 = Machine(0, "fast-a", queue_capacity=3)
        m1 = Machine(1, "fast-b", queue_capacity=3)
        m0.enqueue(make_task(10, task_type=2, deadline=600), now=0)
        batch = [make_task(1, task_type=0, deadline=40), make_task(2, task_type=1, deadline=35)]
        context = make_context(tiny_pet, [m0, m1], batch=batch)
        virtual = VirtualSystemState(context)
        table = ScoreTable(context, virtual, list(context.batch))
        for i, task in enumerate(table.tasks):
            for j in range(2):
                exec_pmf = tiny_pet.get(task.task_type, j)
                availability = virtual.machines[j].availability
                assert table.robustness[i, j] == pytest.approx(
                    fast_success_probability(exec_pmf, availability, task.deadline)
                )
                assert table.completion[i, j] == pytest.approx(
                    availability.mean() + exec_pmf.mean()
                )

    def test_best_pairs_robustness_based_prefers_affinity(self, tiny_pet):
        """With idle machines, an alpha task must pick fast-a and a beta task
        fast-b — the inconsistent-affinity matching the PET encodes."""
        machines = [Machine(0, "fast-a", queue_capacity=3), Machine(1, "fast-b", queue_capacity=3)]
        batch = [make_task(1, task_type=0, deadline=9), make_task(2, task_type=1, deadline=9)]
        context = make_context(tiny_pet, machines, batch=batch)
        virtual = VirtualSystemState(context)
        table = ScoreTable(context, virtual, list(context.batch))
        pairs = {p.task.task_id: p for p in table.best_pairs(robustness_based=True)}
        assert pairs[1].machine_index == 0
        assert pairs[2].machine_index == 1

    def test_best_pairs_completion_based_prefers_fastest_machine(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=3), Machine(1, "fast-b", queue_capacity=3)]
        batch = [make_task(1, task_type=0, deadline=900)]
        context = make_context(tiny_pet, machines, batch=batch)
        virtual = VirtualSystemState(context)
        table = ScoreTable(context, virtual, list(context.batch))
        pairs = table.best_pairs(robustness_based=False)
        assert pairs[0].machine_index == 0  # alpha is fastest on fast-a

    def test_deactivated_tasks_excluded(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=3)]
        batch = [make_task(1, deadline=100), make_task(2, deadline=100)]
        context = make_context(tiny_pet, machines, batch=batch)
        virtual = VirtualSystemState(context)
        table = ScoreTable(context, virtual, list(context.batch))
        table.deactivate([1])
        remaining = {p.task.task_id for p in table.best_pairs(robustness_based=True)}
        assert remaining == {2}
        table.deactivate([2])
        assert not table.any_active

    def test_full_machines_are_closed(self, tiny_pet):
        m0 = Machine(0, "fast-a", queue_capacity=1)
        m0.enqueue(make_task(10), now=0)
        m1 = Machine(1, "fast-b", queue_capacity=1)
        batch = [make_task(1, task_type=0, deadline=100)]
        context = make_context(tiny_pet, [m0, m1], batch=batch)
        virtual = VirtualSystemState(context)
        table = ScoreTable(context, virtual, list(context.batch))
        pairs = table.best_pairs(robustness_based=True)
        # Only fast-b has a free slot, even though fast-a would be better.
        assert pairs[0].machine_index == 1

    def test_refresh_after_assignment_changes_scores(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=3)]
        batch = [make_task(1, task_type=0, deadline=100), make_task(2, task_type=0, deadline=100)]
        context = make_context(tiny_pet, machines, batch=batch)
        virtual = VirtualSystemState(context)
        table = ScoreTable(context, virtual, list(context.batch))
        before = table.completion[1, 0]
        virtual.assign(table.tasks[0], 0)
        table.refresh_machine(0, virtual)
        after = table.completion[1, 0]
        assert after > before
