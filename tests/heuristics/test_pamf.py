"""Tests for the Fair Pruning Mapper (PAMF)."""

from __future__ import annotations

import pytest

from repro.core.completion import DroppingPolicy
from repro.heuristics.pamf import FairPruningMapper
from repro.pruning.thresholds import PruningThresholds
from repro.simulator.machine import Machine
from repro.simulator.mapping import MappingContext, TerminalEvent, batch_in_arrival_order
from repro.simulator.task import Task
from repro.workload.spec import TaskSpec


def make_task(task_id: int, *, task_type: int = 0, deadline: int = 500, arrival: int = 0) -> Task:
    return Task(TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline))


def make_context(tiny_pet, machines, batch, *, now=0, misses=0, terminal=()):
    return MappingContext(
        now=now,
        batch=batch_in_arrival_order(batch),
        machines=tuple(machines),
        pet=tiny_pet,
        policy=DroppingPolicy.EVICT,
        misses_since_last_event=misses,
        terminal_events=tuple(terminal),
    )


class TestSufferageIntegration:
    def test_terminal_events_update_sufferage(self, tiny_pet):
        pamf = FairPruningMapper(tiny_pet.num_task_types, fairness_factor=0.1)
        machine = Machine(0, "fast-a", queue_capacity=6)
        events = [TerminalEvent(5, task_type=2, on_time=False)]
        pamf.map_tasks(make_context(tiny_pet, [machine], [], terminal=events))
        assert pamf.fairness.sufferage_of(2) == pytest.approx(0.1)

    def test_suffering_type_gets_relaxed_deferring_threshold(self, tiny_pet):
        """A marginal task of a suffering type is mapped while the same task
        of a non-suffering type would be deferred."""
        thresholds = PruningThresholds(dropping=0.5, deferring=0.9)
        machines = [Machine(0, "fast-a", queue_capacity=6), Machine(1, "fast-b", queue_capacity=6)]
        marginal = make_task(1, task_type=2, deadline=14)

        neutral = FairPruningMapper(tiny_pet.num_task_types, thresholds, fairness_factor=0.2)
        decision = neutral.map_tasks(make_context(tiny_pet, machines, [marginal]))
        assert decision.assignments == []

        suffering = FairPruningMapper(tiny_pet.num_task_types, thresholds, fairness_factor=0.2)
        misses = [TerminalEvent(i, task_type=2, on_time=False) for i in range(3)]
        machines2 = [Machine(0, "fast-a", queue_capacity=6), Machine(1, "fast-b", queue_capacity=6)]
        decision = suffering.map_tasks(
            make_context(tiny_pet, machines2, [make_task(1, task_type=2, deadline=14)], terminal=misses)
        )
        assert {a.task_id for a in decision.assignments} == {1}

    def test_successes_rebalance_sufferage(self, tiny_pet):
        pamf = FairPruningMapper(tiny_pet.num_task_types, fairness_factor=0.1)
        machine = Machine(0, "fast-a", queue_capacity=6)
        events = [
            TerminalEvent(1, task_type=0, on_time=False),
            TerminalEvent(2, task_type=0, on_time=True),
        ]
        pamf.map_tasks(make_context(tiny_pet, [machine], [], terminal=events))
        assert pamf.fairness.sufferage_of(0) == pytest.approx(0.0)

    def test_zero_fairness_factor_behaves_like_pam(self, tiny_pet):
        from repro.heuristics.pam import PruningAwareMapper

        machines_a = [Machine(0, "fast-a", queue_capacity=6), Machine(1, "fast-b", queue_capacity=6)]
        machines_b = [Machine(0, "fast-a", queue_capacity=6), Machine(1, "fast-b", queue_capacity=6)]
        batch = [make_task(i, task_type=i % 3, deadline=60 + 10 * i) for i in range(5)]
        pam_decision = PruningAwareMapper().map_tasks(make_context(tiny_pet, machines_a, batch))
        pamf_decision = FairPruningMapper(tiny_pet.num_task_types, fairness_factor=0.0).map_tasks(
            make_context(tiny_pet, machines_b, batch)
        )
        assert [
            (a.task_id, a.machine_index) for a in pam_decision.assignments
        ] == [(a.task_id, a.machine_index) for a in pamf_decision.assignments]

    def test_reset_clears_sufferage(self, tiny_pet):
        pamf = FairPruningMapper(tiny_pet.num_task_types, fairness_factor=0.1)
        machine = Machine(0, "fast-a", queue_capacity=6)
        pamf.map_tasks(
            make_context(
                tiny_pet, [machine], [], terminal=[TerminalEvent(1, task_type=1, on_time=False)]
            )
        )
        pamf.reset()
        assert pamf.fairness.sufferage_of(1) == 0.0

    def test_name_and_factor(self, tiny_pet):
        pamf = FairPruningMapper(tiny_pet.num_task_types, fairness_factor=0.15)
        assert pamf.name == "PAMF"
        assert pamf.fairness_factor == pytest.approx(0.15)
