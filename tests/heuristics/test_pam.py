"""Tests for the Pruning Aware Mapper (PAM)."""

from __future__ import annotations

from repro.core.completion import DroppingPolicy
from repro.heuristics.pam import PruningAwareMapper
from repro.pruning.oversubscription import OversubscriptionDetector
from repro.pruning.thresholds import PruningThresholds
from repro.simulator.machine import Machine
from repro.simulator.mapping import MappingContext, batch_in_arrival_order
from repro.simulator.task import Task
from repro.workload.spec import TaskSpec


def make_task(task_id: int, *, task_type: int = 0, deadline: int = 500, arrival: int = 0) -> Task:
    return Task(TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline))


def make_context(tiny_pet, machines, batch, *, now=0, misses=0):
    return MappingContext(
        now=now,
        batch=batch_in_arrival_order(batch),
        machines=tuple(machines),
        pet=tiny_pet,
        policy=DroppingPolicy.EVICT,
        misses_since_last_event=misses,
    )


class TestDeferring:
    def test_low_robustness_task_deferred(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=6), Machine(1, "fast-b", queue_capacity=6)]
        # gamma takes >=12 units everywhere; deadline 14 gives < 90% robustness.
        marginal = make_task(1, task_type=2, deadline=14)
        strong = make_task(2, task_type=0, deadline=200)
        context = make_context(tiny_pet, machines, [marginal, strong])
        pam = PruningAwareMapper(PruningThresholds(dropping=0.5, deferring=0.9))
        decision = pam.map_tasks(context)
        assigned = {a.task_id for a in decision.assignments}
        assert 2 in assigned
        assert 1 not in assigned
        assert 1 in decision.deferrals

    def test_deferred_task_mapped_when_threshold_lowered(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=6), Machine(1, "fast-b", queue_capacity=6)]
        marginal = make_task(1, task_type=2, deadline=14)
        context = make_context(tiny_pet, machines, [marginal])
        lenient = PruningAwareMapper(PruningThresholds(dropping=0.1, deferring=0.2))
        decision = lenient.map_tasks(context)
        assert {a.task_id for a in decision.assignments} == {1}

    def test_deferring_can_be_disabled(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=6)]
        marginal = make_task(1, task_type=2, deadline=14)
        context = make_context(tiny_pet, machines, [marginal])
        pam = PruningAwareMapper(enable_deferring=False)
        decision = pam.map_tasks(context)
        assert {a.task_id for a in decision.assignments} == {1}

    def test_phase2_prefers_lowest_completion_among_robust_pairs(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=1), Machine(1, "fast-b", queue_capacity=1)]
        alpha = make_task(1, task_type=0, deadline=300)  # quick on fast-a
        gamma = make_task(2, task_type=2, deadline=300)  # long everywhere
        context = make_context(tiny_pet, machines, [alpha, gamma])
        pam = PruningAwareMapper()
        decision = pam.map_tasks(context)
        # Both are robust with a 300 deadline; the alpha task has the lower
        # expected completion time so it is committed first (to fast-a).
        assert decision.assignments[0].task_id == 1
        assert decision.assignments[0].machine_index == 0


class TestDropping:
    def test_queue_drops_happen_only_when_oversubscribed(self, tiny_pet):
        machine = Machine(0, "fast-a", queue_capacity=6)
        doomed = make_task(10, task_type=2, deadline=6)
        machine.enqueue(doomed, now=0)
        pam = PruningAwareMapper(
            detector=OversubscriptionDetector(ewma_weight=0.9, toggle_level=1.0)
        )
        quiet = make_context(tiny_pet, [machine], [], now=1, misses=0)
        assert pam.map_tasks(quiet).queue_drops == []
        stressed = make_context(tiny_pet, [machine], [], now=1, misses=5)
        drops = pam.map_tasks(stressed).queue_drops
        assert {d.task_id for d in drops} == {10}

    def test_dropping_can_be_disabled(self, tiny_pet):
        machine = Machine(0, "fast-a", queue_capacity=6)
        machine.enqueue(make_task(10, task_type=2, deadline=6), now=0)
        pam = PruningAwareMapper(enable_dropping=False)
        stressed = make_context(tiny_pet, [machine], [], now=1, misses=5)
        assert pam.map_tasks(stressed).queue_drops == []

    def test_freed_slot_is_reused_within_same_event(self, tiny_pet):
        machine = Machine(0, "fast-a", queue_capacity=1)
        machine.enqueue(make_task(10, task_type=2, deadline=6), now=0)
        fresh = make_task(1, task_type=0, deadline=200)
        pam = PruningAwareMapper()
        context = make_context(tiny_pet, [machine], [fresh], now=1, misses=5)
        decision = pam.map_tasks(context)
        assert {d.task_id for d in decision.queue_drops} == {10}
        assert {a.task_id for a in decision.assignments} == {1}
        decision.validate(context)


class TestStateManagement:
    def test_reset_clears_detector(self, tiny_pet):
        pam = PruningAwareMapper()
        machine = Machine(0, "fast-a", queue_capacity=6)
        context = make_context(tiny_pet, [machine], [], misses=10)
        pam.map_tasks(context)
        assert pam.pruner.detector.dropping_engaged
        pam.reset()
        assert not pam.pruner.detector.dropping_engaged

    def test_thresholds_property(self):
        thresholds = PruningThresholds(dropping=0.4, deferring=0.8)
        pam = PruningAwareMapper(thresholds)
        assert pam.thresholds is thresholds

    def test_name(self):
        assert PruningAwareMapper().name == "PAM"
