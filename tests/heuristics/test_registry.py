"""Tests for the heuristic registry."""

from __future__ import annotations

import pytest

from repro.heuristics.base import MappingHeuristic
from repro.heuristics.pam import PruningAwareMapper
from repro.heuristics.pamf import FairPruningMapper
from repro.heuristics.registry import HEURISTIC_NAMES, make_heuristic
from repro.pruning.thresholds import PruningThresholds


class TestRegistry:
    def test_all_paper_heuristics_listed(self):
        assert set(HEURISTIC_NAMES) == {"PAM", "PAMF", "MOC", "MM", "MSD", "MMU"}

    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_every_name_builds(self, name):
        heuristic = make_heuristic(name, num_task_types=4)
        assert isinstance(heuristic, MappingHeuristic)
        assert heuristic.name == name

    def test_case_insensitive(self):
        assert isinstance(make_heuristic("pam"), PruningAwareMapper)
        assert isinstance(make_heuristic(" mm "), MappingHeuristic)

    def test_pamf_requires_task_type_count(self):
        with pytest.raises(ValueError):
            make_heuristic("PAMF")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_heuristic("SUPER")

    def test_thresholds_forwarded(self):
        thresholds = PruningThresholds(dropping=0.3, deferring=0.7)
        pam = make_heuristic("PAM", thresholds=thresholds)
        assert pam.thresholds is thresholds

    def test_fairness_factor_forwarded(self):
        pamf = make_heuristic("PAMF", num_task_types=5, fairness_factor=0.2)
        assert isinstance(pamf, FairPruningMapper)
        assert pamf.fairness_factor == pytest.approx(0.2)

    def test_fresh_instances_per_call(self):
        assert make_heuristic("PAM") is not make_heuristic("PAM")
