"""Tests for the baseline heuristics (MM, MSD, MMU, MOC)."""

from __future__ import annotations

import pytest

from repro.core.completion import DroppingPolicy
from repro.heuristics.base import CandidatePair
from repro.heuristics.baselines import (
    MaxOntimeCompletions,
    MinCompletionMaxUrgency,
    MinCompletionMinCompletion,
    MinCompletionSoonestDeadline,
)
from repro.simulator.machine import Machine
from repro.simulator.mapping import MappingContext, MappingDecision, batch_in_arrival_order
from repro.simulator.task import Task
from repro.workload.spec import TaskSpec


def make_task(task_id: int, *, task_type: int = 0, deadline: int = 500, arrival: int = 0) -> Task:
    return Task(TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline))


def make_pair(task, machine=0, completion=10.0, robustness=0.5, mean_exec=5.0) -> CandidatePair:
    return CandidatePair(
        task=task,
        machine_index=machine,
        expected_completion=completion,
        robustness=robustness,
        mean_execution=mean_exec,
    )


def make_context(tiny_pet, machines, batch, now=0):
    return MappingContext(
        now=now,
        batch=batch_in_arrival_order(batch),
        machines=tuple(machines),
        pet=tiny_pet,
        policy=DroppingPolicy.EVICT,
    )


class TestPhase2Selection:
    def test_mm_selects_minimum_completion(self, tiny_pet):
        heuristic = MinCompletionMinCompletion()
        pairs = [
            make_pair(make_task(1), completion=20.0),
            make_pair(make_task(2), completion=10.0),
            make_pair(make_task(3), completion=15.0),
        ]
        assert heuristic.phase2_select(pairs, None).task.task_id == 2

    def test_mm_breaks_ties_by_mean_execution(self):
        heuristic = MinCompletionMinCompletion()
        pairs = [
            make_pair(make_task(1), completion=10.0, mean_exec=9.0),
            make_pair(make_task(2), completion=10.0, mean_exec=3.0),
        ]
        assert heuristic.phase2_select(pairs, None).task.task_id == 2

    def test_msd_selects_soonest_deadline(self):
        heuristic = MinCompletionSoonestDeadline()
        pairs = [
            make_pair(make_task(1, deadline=300), completion=5.0),
            make_pair(make_task(2, deadline=100), completion=50.0),
        ]
        assert heuristic.phase2_select(pairs, None).task.task_id == 2

    def test_msd_breaks_ties_by_completion(self):
        heuristic = MinCompletionSoonestDeadline()
        pairs = [
            make_pair(make_task(1, deadline=100), completion=50.0),
            make_pair(make_task(2, deadline=100), completion=5.0),
        ]
        assert heuristic.phase2_select(pairs, None).task.task_id == 2

    def test_mmu_selects_greatest_urgency(self):
        heuristic = MinCompletionMaxUrgency()
        pairs = [
            make_pair(make_task(1, deadline=100), completion=10.0),  # slack 90
            make_pair(make_task(2, deadline=30), completion=10.0),   # slack 20 -> more urgent
        ]
        assert heuristic.phase2_select(pairs, None).task.task_id == 2

    def test_mmu_prioritises_already_hopeless_tasks(self):
        """The behaviour the paper criticises: tasks whose expected completion
        exceeds their deadline are treated as maximally urgent."""
        heuristic = MinCompletionMaxUrgency()
        pairs = [
            make_pair(make_task(1, deadline=100), completion=10.0),
            make_pair(make_task(2, deadline=10), completion=50.0),  # impossible
        ]
        assert heuristic.phase2_select(pairs, None).task.task_id == 2

    def test_moc_selects_highest_robustness(self):
        heuristic = MaxOntimeCompletions()
        pairs = [
            make_pair(make_task(1), robustness=0.6, machine=0),
            make_pair(make_task(2), robustness=0.9, machine=1),
            make_pair(make_task(3), robustness=0.7, machine=2),
        ]
        assert heuristic.phase2_select(pairs, None).task.task_id == 2

    def test_moc_permutation_prefers_distinct_machines(self):
        """When the top pairs collide on one machine, the permutation phase
        prefers committing the pair whose robustness is not discounted."""
        heuristic = MaxOntimeCompletions(permutation_depth=3)
        pairs = [
            make_pair(make_task(1), robustness=0.90, machine=0),
            make_pair(make_task(2), robustness=0.89, machine=0),
            make_pair(make_task(3), robustness=0.88, machine=1),
        ]
        chosen = heuristic.phase2_select(pairs, None)
        assert chosen.task.task_id in (1, 3)


class TestMocCulling:
    def test_culls_below_threshold(self, tiny_pet):
        heuristic = MaxOntimeCompletions(culling_threshold=0.30)
        pairs = [
            make_pair(make_task(1), robustness=0.10),
            make_pair(make_task(2), robustness=0.50),
        ]
        kept, culled = heuristic.filter_candidates(pairs, None, MappingDecision())
        assert [p.task.task_id for p in kept] == [2]
        assert culled == {1}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MaxOntimeCompletions(culling_threshold=1.5)
        with pytest.raises(ValueError):
            MaxOntimeCompletions(permutation_depth=0)


class TestFullMappingEvents:
    def test_mm_fills_free_slots(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=2), Machine(1, "fast-b", queue_capacity=2)]
        batch = [make_task(i, task_type=i % 3, deadline=900) for i in range(6)]
        context = make_context(tiny_pet, machines, batch)
        decision = MinCompletionMinCompletion().map_tasks(context)
        decision.validate(context)
        assert len(decision.assignments) == 4  # all four free slots filled
        assert len({a.task_id for a in decision.assignments}) == 4

    def test_mm_exhausts_small_batch(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=6), Machine(1, "fast-b", queue_capacity=6)]
        batch = [make_task(1, deadline=900)]
        context = make_context(tiny_pet, machines, batch)
        decision = MinCompletionMinCompletion().map_tasks(context)
        assert len(decision.assignments) == 1

    def test_mm_assigns_affine_machine_when_free(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=6), Machine(1, "fast-b", queue_capacity=6)]
        batch = [make_task(1, task_type=1, deadline=900)]  # beta fastest on fast-b
        context = make_context(tiny_pet, machines, batch)
        decision = MinCompletionMinCompletion().map_tasks(context)
        assert decision.assignments[0].machine_index == 1

    def test_moc_leaves_hopeless_tasks_unmapped(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=6), Machine(1, "fast-b", queue_capacity=6)]
        hopeless = make_task(1, task_type=2, deadline=5)  # cannot finish anywhere
        fine = make_task(2, task_type=0, deadline=900)
        context = make_context(tiny_pet, machines, [hopeless, fine])
        decision = MaxOntimeCompletions().map_tasks(context)
        assigned = {a.task_id for a in decision.assignments}
        assert 2 in assigned
        assert 1 not in assigned

    def test_empty_batch_returns_empty_decision(self, tiny_pet):
        machines = [Machine(0, "fast-a", queue_capacity=2)]
        context = make_context(tiny_pet, machines, [])
        for heuristic in (
            MinCompletionMinCompletion(),
            MinCompletionSoonestDeadline(),
            MinCompletionMaxUrgency(),
            MaxOntimeCompletions(),
        ):
            decision = heuristic.map_tasks(context)
            assert decision.assignments == []

    def test_no_free_slots_returns_empty_decision(self, tiny_pet):
        machine = Machine(0, "fast-a", queue_capacity=1)
        machine.enqueue(make_task(50), now=0)
        context = make_context(tiny_pet, [machine], [make_task(1, deadline=900)])
        decision = MinCompletionMinCompletion().map_tasks(context)
        assert decision.assignments == []

    def test_heuristic_names(self):
        assert MinCompletionMinCompletion().name == "MM"
        assert MinCompletionSoonestDeadline().name == "MSD"
        assert MinCompletionMaxUrgency().name == "MMU"
        assert MaxOntimeCompletions().name == "MOC"
