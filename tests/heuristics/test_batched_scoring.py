"""ScoreTable's batched mapping-event scoring vs the scalar reference.

The equivalence gate for the heuristics layer: a mapping event scored
through the batched engine (`ScoreTable` -> `batched_success_probability`)
must reproduce the scalar per-pair functions
(:func:`fast_success_probability` / :func:`expected_completion`) **bit for
bit** (``atol=0``), both on the initial full-grid pass and after phase-2
commits trigger single-column refreshes.
"""

from __future__ import annotations

import numpy as np

from repro.core.completion import DroppingPolicy
from repro.heuristics.base import ScoreTable, VirtualSystemState
from repro.heuristics.scoring import expected_completion, fast_success_probability
from repro.simulator.machine import Machine, batched_availability
from repro.simulator.mapping import MappingContext, batch_in_arrival_order
from repro.simulator.task import Task
from repro.workload.spec import TaskSpec


def make_task(task_id: int, *, task_type: int = 0, deadline: int = 500, arrival: int = 0) -> Task:
    return Task(TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline))


def make_event(pet, *, now: int = 0, queue_plan=(), batch_plan=()) -> MappingContext:
    """Build a mapping event: machines with queued tasks plus a batch queue.

    ``queue_plan[j]`` lists (task_id, task_type, deadline) tuples enqueued on
    machine ``j``; ``batch_plan`` lists the unmapped batch tasks.
    """
    machines = []
    for j in range(pet.num_machines):
        machine = Machine(j, pet.machine_names[j], queue_capacity=4)
        for task_id, task_type, deadline in (queue_plan[j] if j < len(queue_plan) else ()):
            machine.enqueue(make_task(task_id, task_type=task_type, deadline=deadline), now=now)
        machines.append(machine)
    batch = [make_task(tid, task_type=tt, deadline=d) for tid, tt, d in batch_plan]
    return MappingContext(
        now=now,
        batch=batch_in_arrival_order(batch),
        machines=tuple(machines),
        pet=pet,
        policy=DroppingPolicy.EVICT,
    )


def scalar_reference(pet, virtual, tasks):
    """The pre-batching double loop, pair by pair through the scalar API."""
    n, m = len(tasks), len(virtual.machines)
    robustness = np.full((n, m), -1.0)
    completion = np.full((n, m), np.inf)
    for i, task in enumerate(tasks):
        for vm in virtual.machines:
            if not vm.has_free_slot:
                continue
            exec_pmf = pet.get(task.task_type, vm.index)
            robustness[i, vm.index] = fast_success_probability(
                exec_pmf, vm.availability, task.deadline
            )
            if not vm.availability.is_zero():
                completion[i, vm.index] = expected_completion(exec_pmf, vm.availability)
    return robustness, completion


def paper_scale_event(pet, *, n_tasks: int = 40, seed: int = 17) -> MappingContext:
    rng = np.random.default_rng(seed)
    queue_plan = [
        [
            (1000 + 10 * j + k, int(rng.integers(0, pet.num_task_types)), int(rng.integers(100, 400)))
            for k in range(int(rng.integers(0, 3)))
        ]
        for j in range(pet.num_machines)
    ]
    batch_plan = [
        (i, int(rng.integers(0, pet.num_task_types)), int(rng.integers(30, 500)))
        for i in range(n_tasks)
    ]
    return make_event(pet, queue_plan=queue_plan, batch_plan=batch_plan)


class TestScoreTableEquivalence:
    def test_initial_grid_bit_identical_to_scalar_loop(self, small_gamma_pet):
        context = paper_scale_event(small_gamma_pet)
        virtual = VirtualSystemState(context)
        table = ScoreTable(context, virtual, list(context.batch))
        robustness, completion = scalar_reference(
            small_gamma_pet, virtual, table.tasks
        )
        assert np.array_equal(table.robustness, robustness)
        assert np.array_equal(table.completion, completion)

    def test_refresh_after_commits_stays_bit_identical(self, small_gamma_pet):
        context = paper_scale_event(small_gamma_pet, seed=23)
        virtual = VirtualSystemState(context)
        table = ScoreTable(context, virtual, list(context.batch))
        # Commit a few provisional assignments, refreshing one column each
        # time, exactly as the two-phase loop does.
        for step in range(3):
            pairs = table.best_pairs(robustness_based=True)
            if not pairs:
                break
            chosen = pairs[step % len(pairs)]
            virtual.assign(chosen.task, chosen.machine_index)
            table.deactivate([chosen.task.task_id])
            table.refresh_machine(chosen.machine_index, virtual)
            robustness, completion = scalar_reference(
                small_gamma_pet, virtual, table.tasks
            )
            open_cols = table.machine_open
            assert np.array_equal(table.robustness[:, open_cols], robustness[:, open_cols])
            assert np.array_equal(table.completion[:, open_cols], completion[:, open_cols])

    def test_full_machines_closed_columns(self, tiny_pet):
        context = make_event(
            tiny_pet,
            queue_plan=[[(90, 0, 300)] * 4, []],  # machine 0 completely full
            batch_plan=[(1, 0, 100), (2, 1, 120)],
        )
        virtual = VirtualSystemState(context)
        table = ScoreTable(context, virtual, list(context.batch))
        assert not table.machine_open[0]
        assert np.all(table.robustness[:, 0] == -1.0)
        assert np.all(np.isinf(table.completion[:, 0]))
        assert table.machine_open[1]

    def test_empty_batch_is_noop(self, tiny_pet):
        context = make_event(tiny_pet)
        virtual = VirtualSystemState(context)
        table = ScoreTable(context, virtual, [])
        assert table.n == 0
        assert not table.best_pairs(robustness_based=True)


class TestBatchedAvailabilityHelper:
    def test_rows_match_scalar_availability(self, small_gamma_pet):
        context = paper_scale_event(small_gamma_pet, seed=31)
        batch = batched_availability(
            context.machines, small_gamma_pet, context.now, policy=context.policy
        )
        assert batch.n_pmfs == small_gamma_pet.num_machines
        for j, machine in enumerate(context.machines):
            scalar = machine.availability_pmf(
                small_gamma_pet, context.now, policy=context.policy
            )
            row = batch.row(j).compact()
            assert row.allclose(scalar, atol=0)

    def test_context_availability_batch_uses_cache(self, small_gamma_pet):
        context = paper_scale_event(small_gamma_pet, seed=37)
        batch = context.availability_batch()
        for j in range(small_gamma_pet.num_machines):
            assert batch.row(j).compact().allclose(
                context.machine_availability(j).compact(), atol=0
            )
