"""Tests for the cost model (Figure 8 metric)."""

from __future__ import annotations

import math

import pytest

from repro.pet.builders import TRANSCODING_MACHINE_NAMES
from repro.pet.spec_data import SPEC_MACHINE_NAMES
from repro.simulator.cost import (
    DEFAULT_PRICE,
    SPEC_MACHINE_PRICES,
    TRANSCODING_MACHINE_PRICES,
    cost_per_percent_robustness,
    default_prices_for,
    price_for_machine,
    total_cost,
)


class TestPriceTables:
    def test_every_spec_machine_has_a_price(self):
        for name in SPEC_MACHINE_NAMES:
            assert name in SPEC_MACHINE_PRICES
            assert SPEC_MACHINE_PRICES[name] > 0

    def test_every_transcoding_machine_has_a_price(self):
        for name in TRANSCODING_MACHINE_NAMES:
            assert name in TRANSCODING_MACHINE_PRICES

    def test_gpu_is_most_expensive_vm(self):
        assert TRANSCODING_MACHINE_PRICES["gpu"] == max(TRANSCODING_MACHINE_PRICES.values())

    def test_unknown_machine_gets_default(self):
        assert price_for_machine("mystery-box") == DEFAULT_PRICE

    def test_default_prices_aligned(self):
        prices = default_prices_for(SPEC_MACHINE_NAMES)
        assert len(prices) == len(SPEC_MACHINE_NAMES)
        assert prices[0] == SPEC_MACHINE_PRICES[SPEC_MACHINE_NAMES[0]]


class TestCostComputation:
    def test_total_cost_formula(self):
        assert total_cost([1000, 2000], [0.5, 1.0]) == pytest.approx(0.5 + 2.0)

    def test_total_cost_zero_busy_time(self):
        assert total_cost([0, 0], [0.5, 1.0]) == 0.0

    def test_total_cost_length_mismatch(self):
        with pytest.raises(ValueError):
            total_cost([1.0], [0.5, 1.0])

    def test_cost_per_percent(self):
        assert cost_per_percent_robustness(10.0, 50.0) == pytest.approx(0.2)

    def test_cost_per_percent_with_zero_robustness_is_infinite(self):
        assert math.isinf(cost_per_percent_robustness(10.0, 0.0))
