"""Tests for machines, bounded FCFS queues and their probabilistic snapshots."""

from __future__ import annotations

import pytest

from repro.core.completion import DroppingPolicy
from repro.simulator.machine import Machine
from repro.simulator.task import Task
from repro.workload.spec import TaskSpec


def make_task(task_id: int, *, task_type: int = 0, arrival: int = 0, deadline: int = 100) -> Task:
    return Task(TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline))


@pytest.fixture
def machine() -> Machine:
    return Machine(index=0, name="fast-a", queue_capacity=3)


class TestQueueMechanics:
    def test_initial_state(self, machine):
        assert machine.is_idle
        assert machine.free_slots == 3
        assert machine.occupied_slots == 0
        assert machine.queued_tasks() == []

    def test_enqueue_fills_slots(self, machine):
        for i in range(3):
            machine.enqueue(make_task(i), now=0)
        assert machine.free_slots == 0
        with pytest.raises(RuntimeError):
            machine.enqueue(make_task(99), now=0)

    def test_capacity_counts_executing_task(self, machine):
        machine.enqueue(make_task(0), now=0)
        machine.start_next(now=0, actual_execution_time=10)
        machine.enqueue(make_task(1), now=0)
        machine.enqueue(make_task(2), now=0)
        assert machine.occupied_slots == 3
        assert not machine.has_free_slot

    def test_fcfs_order(self, machine):
        first, second = make_task(0), make_task(1)
        machine.enqueue(first, now=0)
        machine.enqueue(second, now=0)
        started = machine.start_next(now=0, actual_execution_time=5)
        assert started is first
        assert machine.pending[0] is second

    def test_start_requires_idle_machine(self, machine):
        machine.enqueue(make_task(0), now=0)
        machine.start_next(now=0, actual_execution_time=5)
        machine.enqueue(make_task(1), now=0)
        with pytest.raises(RuntimeError):
            machine.start_next(now=1, actual_execution_time=5)

    def test_start_requires_pending_task(self, machine):
        with pytest.raises(RuntimeError):
            machine.start_next(now=0, actual_execution_time=5)

    def test_finish_accumulates_busy_time(self, machine):
        task = make_task(0)
        machine.enqueue(task, now=0)
        machine.start_next(now=5, actual_execution_time=10)
        machine.finish_executing(task, now=15)
        assert machine.busy_time == 10
        assert machine.is_idle

    def test_finish_rejects_wrong_task(self, machine):
        task, other = make_task(0), make_task(1)
        machine.enqueue(task, now=0)
        machine.start_next(now=0, actual_execution_time=5)
        with pytest.raises(RuntimeError):
            machine.finish_executing(other, now=5)

    def test_remove_pending(self, machine):
        task = make_task(0)
        machine.enqueue(task, now=0)
        machine.remove_pending(task)
        assert machine.occupied_slots == 0
        with pytest.raises(RuntimeError):
            machine.remove_pending(task)

    def test_queue_version_bumps_on_mutations(self, machine):
        version = machine.queue_version
        task = make_task(0)
        machine.enqueue(task, now=0)
        assert machine.queue_version > version
        version = machine.queue_version
        machine.start_next(now=0, actual_execution_time=3)
        assert machine.queue_version > version
        version = machine.queue_version
        machine.finish_executing(task, now=3)
        assert machine.queue_version > version

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Machine(0, "x", queue_capacity=0)
        with pytest.raises(ValueError):
            Machine(0, "x", price_per_time=-1)


class TestProbabilisticSnapshots:
    def test_idle_machine_availability_is_now(self, machine, tiny_pet):
        availability = machine.availability_pmf(tiny_pet, now=42)
        assert availability.probability_at(42) == pytest.approx(1.0)

    def test_snapshot_tracks_queue_depth(self, machine, tiny_pet):
        for i, deadline in enumerate((200, 220, 240)):
            machine.enqueue(make_task(i, task_type=0, deadline=deadline), now=0)
        snapshot = machine.queue_snapshot(tiny_pet, now=0, policy=DroppingPolicy.NONE)
        assert len(snapshot.tasks) == 3
        assert len(snapshot.completion_pmfs) == 3
        means = [p.mean() for p in snapshot.completion_pmfs]
        assert means[0] < means[1] < means[2]

    def test_availability_reflects_executing_task_start(self, machine, tiny_pet):
        task = make_task(0, task_type=0, deadline=300)
        machine.enqueue(task, now=0)
        machine.start_next(now=50, actual_execution_time=5)
        availability = machine.availability_pmf(tiny_pet, now=60, policy=DroppingPolicy.NONE)
        # anchored at the start time 50 plus the PET support of type 0 on machine 0
        assert availability.support()[0] >= 54
        assert availability.mean() == pytest.approx(50 + tiny_pet.get(0, 0).mean())

    def test_evict_policy_bounds_availability_by_deadline(self, machine, tiny_pet):
        task = make_task(0, task_type=2, deadline=10)  # gamma: long execution, tight deadline
        machine.enqueue(task, now=0)
        machine.start_next(now=0, actual_execution_time=20)
        availability = machine.availability_pmf(tiny_pet, now=1, policy=DroppingPolicy.EVICT)
        assert availability.support()[1] <= 10

    def test_conditioned_pmf_excludes_past(self, machine, tiny_pet):
        task = make_task(0, task_type=0, deadline=300)
        machine.enqueue(task, now=0)
        machine.start_next(now=0, actual_execution_time=6)
        conditioned = machine.executing_completion_pmf(tiny_pet, now=5, condition_on_now=True)
        assert conditioned.support()[0] >= 6
        assert conditioned.is_normalised()

    def test_conditioned_pmf_when_overdue(self, machine, tiny_pet):
        task = make_task(0, task_type=0, deadline=300)
        machine.enqueue(task, now=0)
        machine.start_next(now=0, actual_execution_time=50)
        # Far beyond the PET support: the conditional distribution is empty,
        # the machine is assumed to free up at the next tick.
        conditioned = machine.executing_completion_pmf(tiny_pet, now=200, condition_on_now=True)
        assert conditioned.probability_at(201) == pytest.approx(1.0)

    def test_snapshot_cache_reused_until_queue_changes(self, machine, tiny_pet):
        machine.enqueue(make_task(0, deadline=500), now=0)
        first = machine.queue_snapshot(tiny_pet, now=0)
        second = machine.queue_snapshot(tiny_pet, now=10)
        assert second is first  # cached: queue unchanged, anchoring not time-dependent
        machine.enqueue(make_task(1, deadline=500), now=10)
        third = machine.queue_snapshot(tiny_pet, now=10)
        assert third is not first
        assert len(third.tasks) == 2
