"""Differential property harness: heap engine vs the frozen legacy loop.

The PR 7 rework rebuilt :class:`~repro.simulator.engine.HCSimulator` around
a single global event heap with optional batched scheduling rounds.  The
pre-rework loop is frozen verbatim as
:class:`~repro.simulator.legacy.LegacyHCSimulator`, and this suite is the
gate that the rework changed nothing observable at ``batch_window=0``:

* **Hypothesis differential tests** — random traces replayed through both
  loops must produce identical *decision sequences* (every observer
  callback, in order) and identical metrics, with atol=0;
* the same holds when the heap engine is driven through the **streaming
  API** (``begin_stream``/``inject_task``/``advance_until``) instead of
  batch replay, including mid-trace time advancement;
* the **660-task reference trace** is pinned heuristic by heuristic;
* under **batched rounds** (``batch_window > 0``) the engine keeps its
  documented contracts: streaming equals batch replay, observer
  ``on_assigned`` callbacks of one round surface in ascending task-id
  order, a terminal callback never precedes its task's assignment, and a
  ``ROUND`` marker bounds mapping latency even across quiet stretches.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heuristics import make_heuristic
from repro.pet.builders import build_transcoding_pet
from repro.simulator.engine import HCSimulator, SimulatorConfig
from repro.simulator.events import EventKind
from repro.simulator.legacy import LegacyHCSimulator
from repro.workload.generator import WorkloadConfig, WorkloadTrace
from repro.workload.spec import TaskSpec
from repro.workload.traces import load_trace

REFERENCE_TRACE = (
    Path(__file__).resolve().parent.parent.parent
    / "examples"
    / "transcoding_660.trace.json"
)

HEURISTICS = ["MM", "PAM", "PAMF"]


class RecordingObserver:
    """Records every engine callback, in order, as comparable tuples."""

    def __init__(self) -> None:
        self.log: list[tuple] = []

    def on_assigned(self, task, machine_index, now):
        self.log.append(("assigned", task.task_id, machine_index, now))

    def on_terminal(self, task):
        self.log.append(
            ("terminal", task.task_id, task.status.value, task.on_time)
        )

    def on_mapping_event(self, now, decision):
        self.log.append(
            (
                "mapping",
                now,
                tuple((a.task_id, a.machine_index) for a in decision.assignments),
                tuple((d.task_id, d.machine_index) for d in decision.queue_drops),
                tuple(decision.deferrals),
            )
        )


def _signature(result):
    return (
        tuple(
            (
                t.task_id,
                t.status.value,
                t.machine,
                t.mapped_at,
                t.exec_start,
                t.exec_end,
                t.actual_execution_time,
                t.dropped_at,
                t.drop_reason,
                t.times_deferred,
            )
            for t in result.tasks
        ),
        result.counters.as_dict(),
        result.machine_busy_times,
        result.end_time,
    )


def _run_legacy(pet, trace, *, heuristic="PAMF", seed=17):
    sim = LegacyHCSimulator(
        pet, make_heuristic(heuristic, num_task_types=pet.num_task_types), rng=seed
    )
    observer = RecordingObserver()
    sim.observer = observer
    return sim.run(trace), observer.log


def _run_heap(pet, trace, *, heuristic="PAMF", seed=17, config=None, streamed=False):
    sim = HCSimulator(
        pet,
        make_heuristic(heuristic, num_task_types=pet.num_task_types),
        config=config,
        rng=seed,
    )
    observer = RecordingObserver()
    sim.observer = observer
    if not streamed:
        return sim.run(trace), observer.log
    sim.begin_stream()
    for spec in trace:
        # The serving layer's admission pattern: time advances to each
        # arrival before it is injected, so the engine steps mid-trace.
        sim.advance_until(spec.arrival)
        sim.inject_task(spec)
    return sim.finish_stream(), observer.log


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def traces(draw, *, max_tasks: int = 20, num_types: int = 3) -> WorkloadTrace:
    """Short, bursty, tightly-deadlined traces over the tiny 2-machine PET.

    Deadlines are drawn tight enough that drops, evictions and deferrals
    all occur, which is where the two loops could plausibly diverge.
    """
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    specs = []
    for task_id in range(n):
        arrival = draw(st.integers(min_value=0, max_value=80))
        slack = draw(st.integers(min_value=1, max_value=60))
        task_type = draw(st.integers(min_value=0, max_value=num_types - 1))
        specs.append(
            TaskSpec(
                arrival=arrival,
                task_id=task_id,
                task_type=task_type,
                deadline=arrival + slack,
            )
        )
    specs.sort()
    config = WorkloadConfig(num_tasks=n, time_span=100)
    return WorkloadTrace(tuple(specs), config, num_task_types=num_types)


# ----------------------------------------------------------------------
# Differential: heap loop vs legacy loop at batch_window=0
# ----------------------------------------------------------------------


class TestHeapMatchesLegacy:
    @given(trace=traces(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_batch_replay_identical(self, tiny_pet, trace, data):
        heuristic = data.draw(st.sampled_from(HEURISTICS))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        legacy_result, legacy_log = _run_legacy(
            tiny_pet, trace, heuristic=heuristic, seed=seed
        )
        heap_result, heap_log = _run_heap(
            tiny_pet, trace, heuristic=heuristic, seed=seed
        )
        assert heap_log == legacy_log
        assert _signature(heap_result) == _signature(legacy_result)

    @given(trace=traces(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_mid_trace_stream_injection_identical(self, tiny_pet, trace, data):
        heuristic = data.draw(st.sampled_from(HEURISTICS))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        legacy_result, legacy_log = _run_legacy(
            tiny_pet, trace, heuristic=heuristic, seed=seed
        )
        heap_result, heap_log = _run_heap(
            tiny_pet, trace, heuristic=heuristic, seed=seed, streamed=True
        )
        assert heap_log == legacy_log
        assert _signature(heap_result) == _signature(legacy_result)

    @given(trace=traces(), seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_explicit_window_zero_config_identical(self, tiny_pet, trace, seed):
        """``batch_window=0`` spelled out is the per-event legacy protocol."""
        legacy_result, legacy_log = _run_legacy(tiny_pet, trace, seed=seed)
        heap_result, heap_log = _run_heap(
            tiny_pet, trace, seed=seed, config=SimulatorConfig(batch_window=0)
        )
        assert heap_log == legacy_log
        assert _signature(heap_result) == _signature(legacy_result)

    @given(
        trace=traces(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        window=st.sampled_from([1, 3, 7, 15]),
    )
    @settings(max_examples=25, deadline=None)
    def test_batched_streaming_equals_batched_replay(self, tiny_pet, trace, seed, window):
        """Rounds depend only on event times + window, not the driving mode."""
        config = SimulatorConfig(batch_window=window)
        replay_result, replay_log = _run_heap(tiny_pet, trace, seed=seed, config=config)
        stream_result, stream_log = _run_heap(
            tiny_pet, trace, seed=seed, config=config, streamed=True
        )
        assert stream_log == replay_log
        assert _signature(stream_result) == _signature(replay_result)


@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_reference_trace_pinned_against_legacy(heuristic):
    """Acceptance gate: 660-task reference trace, heap vs legacy, atol=0."""
    trace = load_trace(REFERENCE_TRACE)
    pet = build_transcoding_pet(rng=2019)
    legacy_result, legacy_log = _run_legacy(pet, trace, heuristic=heuristic, seed=2021)
    heap_result, heap_log = _run_heap(pet, trace, heuristic=heuristic, seed=2021)
    assert heap_log == legacy_log
    assert _signature(heap_result) == _signature(legacy_result)


def test_legacy_loop_refuses_batched_rounds(tiny_pet):
    heuristic = make_heuristic("MM", num_task_types=tiny_pet.num_task_types)
    with pytest.raises(ValueError, match="legacy reference loop"):
        LegacyHCSimulator(
            tiny_pet, heuristic, config=SimulatorConfig(batch_window=4)
        )


# ----------------------------------------------------------------------
# Batched-rounds contracts (observer ordering, round latency, markers)
# ----------------------------------------------------------------------


def _burst_trace(num_tasks: int = 18, *, spread: int = 40, slack: int = 120) -> WorkloadTrace:
    """A dense burst over the tiny PET: several arrivals per round window."""
    specs = tuple(
        TaskSpec(
            arrival=1 + (i * spread) // num_tasks,
            task_id=i,
            task_type=i % 3,
            deadline=1 + (i * spread) // num_tasks + slack,
        )
        for i in range(num_tasks)
    )
    return WorkloadTrace(specs, WorkloadConfig(num_tasks=num_tasks, time_span=spread + 1))


class TestBatchedRoundContracts:
    @pytest.mark.parametrize("window", [5, 10, 25])
    def test_round_assignments_surface_in_task_id_order(self, tiny_pet, window):
        _, log = _run_heap(
            tiny_pet,
            _burst_trace(),
            seed=3,
            config=SimulatorConfig(batch_window=window),
        )
        rounds_with_assignments = 0
        current_round: list[int] = []
        for entry in log:
            if entry[0] == "assigned":
                current_round.append(entry[1])
            else:
                # Any non-assignment callback ends the contiguous run of
                # one round's assignment callbacks.
                if len(current_round) > 1:
                    rounds_with_assignments += 1
                    assert current_round == sorted(current_round)
                current_round = []
        assert rounds_with_assignments >= 1, "burst should batch multiple assignments"

    @pytest.mark.parametrize("window", [0, 7])
    def test_terminal_never_precedes_assignment(self, tiny_pet, window):
        result, log = _run_heap(
            tiny_pet,
            _burst_trace(),
            seed=3,
            config=SimulatorConfig(batch_window=window),
        )
        assigned_at: dict[int, int] = {}
        for index, entry in enumerate(log):
            if entry[0] == "assigned":
                assigned_at[entry[1]] = index
            elif entry[0] == "terminal":
                task_id = entry[1]
                if task_id in assigned_at:
                    assert assigned_at[task_id] < index
        # Every task that reached a machine must have surfaced via on_assigned.
        mapped = {t.task_id for t in result.tasks if t.machine is not None}
        assert mapped == set(assigned_at)

    def test_round_marker_bounds_mapping_latency(self, tiny_pet):
        """A mid-round arrival with no later events still maps at the round
        boundary: the ROUND marker forces the step."""
        window = 10
        specs = (
            TaskSpec(arrival=0, task_id=0, task_type=0, deadline=200),
            # Arrives mid-round; nothing else happens until far later, so
            # only the ROUND marker at t=10 can trigger its mapping.
            TaskSpec(arrival=3, task_id=1, task_type=1, deadline=200),
        )
        trace = WorkloadTrace(specs, WorkloadConfig(num_tasks=2, time_span=4))
        sim = HCSimulator(
            tiny_pet,
            make_heuristic("MM", num_task_types=tiny_pet.num_task_types),
            config=SimulatorConfig(batch_window=window),
            rng=1,
        )
        result = sim.run(trace)
        tasks = {t.task_id: t for t in result.tasks}
        assert tasks[0].mapped_at == 0  # first step fires the first round
        assert tasks[1].mapped_at == window

    def test_round_markers_do_not_leak_into_pending_events(self, tiny_pet):
        sim = HCSimulator(
            tiny_pet,
            make_heuristic("MM", num_task_types=tiny_pet.num_task_types),
            config=SimulatorConfig(batch_window=10),
            rng=1,
        )
        sim.begin_stream()
        sim.inject_task(TaskSpec(arrival=0, task_id=0, task_type=0, deadline=200))
        sim.inject_task(TaskSpec(arrival=3, task_id=1, task_type=1, deadline=200))
        sim.advance_until(4)
        # Task 1 is parked until the round fires; the ROUND marker sits in
        # the heap but is not a pending *task* event.
        assert sim.events.count_kind(EventKind.ROUND) == 1
        assert sim.pending_events == sim.events.count_kind(EventKind.FINISH)
        sim.finish_stream()
        assert len(sim.events) == 0

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="batch_window"):
            SimulatorConfig(batch_window=-1)
