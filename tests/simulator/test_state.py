"""Tests for the persistent incremental ``SystemState`` availability engine.

Three layers of guarantees:

* unit: incremental chain maintenance after every kind of queue mutation is
  bit-identical to a from-scratch rebuild (and to the pre-existing
  per-machine snapshot path);
* kernel: the lockstep rebuild path (ragged-batch convolve) matches the
  scalar chain step bit for bit;
* trial: seeded fig4-scale simulations with the incremental state produce
  bit-identical ``SimulationResult`` metrics to runs forced through the
  ``rebuild()`` cross-check mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.completion import DroppingPolicy
from repro.core.pmf import DiscretePMF
from repro.heuristics.registry import make_heuristic
from repro.simulator.engine import HCSimulator, SimulatorConfig
from repro.simulator.machine import Machine
from repro.simulator.mapping import MappingContext, batch_in_arrival_order
from repro.simulator.state import SystemState, SystemStateError
from repro.simulator.task import Task
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.spec import TaskSpec


def make_task(task_id: int, *, task_type: int = 0, deadline: int = 500, arrival: int = 0) -> Task:
    return Task(TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline))


def pmf_equal(a: DiscretePMF, b: DiscretePMF) -> bool:
    """Bit-exact comparison (compacted, zero-mass PMFs compare equal)."""
    a, b = a.compact(), b.compact()
    if a.is_zero() and b.is_zero():
        return True
    return a.offset == b.offset and np.array_equal(a.probs, b.probs)


def reference_availability(machine: Machine, pet, now: int, **kwargs) -> DiscretePMF:
    """The pre-existing per-machine snapshot path (fresh machine clone)."""
    return machine.availability_pmf(pet, now, **kwargs)


@pytest.fixture
def machines() -> list[Machine]:
    return [
        Machine(0, "fast-a", queue_capacity=4),
        Machine(1, "fast-b", queue_capacity=4),
    ]


class TestIncrementalMaintenance:
    def test_empty_machines_available_now(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet)
        assert state.availability(0, 42).probability_at(42) == pytest.approx(1.0)
        batch = state.availability_batch(7)
        assert batch.n_pmfs == 2
        assert batch.row(0).probability_at(7) == pytest.approx(1.0)

    def test_enqueue_extends_chain_incrementally(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet, cross_check=True)
        m0 = machines[0]
        for i, deadline in enumerate((200, 240, 280)):
            task = make_task(i, deadline=deadline)
            m0.enqueue(task, now=0)
            state.notify_enqueue(0, task)
            got = state.availability(0, 0)
            want = reference_availability(m0, tiny_pet, 0)
            assert pmf_equal(got, want)
        assert len(state.chain(0, 0)) == 3

    def test_start_reanchors_head(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet, cross_check=True)
        m0 = machines[0]
        task = make_task(0, deadline=300)
        m0.enqueue(task, now=0)
        state.notify_enqueue(0, task)
        state.availability(0, 0)
        m0.start_next(now=5, actual_execution_time=6)
        state.notify_start(0)
        got = state.availability(0, 5)
        want = reference_availability(m0, tiny_pet, 5)
        assert pmf_equal(got, want)

    def test_finish_drops_head_and_rebases(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet, cross_check=True)
        m0 = machines[0]
        head, rest = make_task(0, deadline=300), make_task(1, deadline=400)
        for task in (head, rest):
            m0.enqueue(task, now=0)
            state.notify_enqueue(0, task)
        m0.start_next(now=0, actual_execution_time=4)
        state.notify_start(0)
        state.availability(0, 0)
        m0.finish_executing(head, now=4)
        state.notify_finish(0, head)
        got = state.availability(0, 4)
        want = reference_availability(m0, tiny_pet, 4)
        assert pmf_equal(got, want)
        assert len(state.chain(0, 4)) == 1

    def test_remove_recomputes_suffix_only(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet, cross_check=True)
        m0 = machines[0]
        tasks = [make_task(i, deadline=200 + 40 * i) for i in range(4)]
        for task in tasks:
            m0.enqueue(task, now=0)
            state.notify_enqueue(0, task)
        prefix = state.chain(0, 0)[:2]
        m0.remove_pending(tasks[2])
        state.notify_remove(0, tasks[2])
        got = state.availability(0, 0)
        want = reference_availability(m0, tiny_pet, 0)
        assert pmf_equal(got, want)
        # The untouched prefix entries are reused, not recomputed.
        assert state.chain(0, 0)[0] is prefix[0]
        assert state.chain(0, 0)[1] is prefix[1]

    def test_unnotified_mutation_resyncs_defensively(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet)
        m0 = machines[0]
        task = make_task(0, deadline=200)
        m0.enqueue(task, now=0)  # no notification on purpose
        got = state.availability(0, 0)
        want = reference_availability(m0, tiny_pet, 0)
        assert pmf_equal(got, want)

    def test_overdue_executing_head_reanchors_with_now(self, tiny_pet, machines):
        """An executing task queried past its deadline: the EVICT collapse
        point ``max(deadline, now + 1)`` tracks the query time, so the
        chain must be re-anchored instead of served stale (cross-check mode
        would otherwise diverge from the rebuild path)."""
        state = SystemState(machines, tiny_pet, cross_check=True)
        m0 = machines[0]
        task = make_task(0, task_type=2, deadline=10)  # gamma: long execution
        m0.enqueue(task, now=0)
        state.notify_enqueue(0, task)
        m0.start_next(now=0, actual_execution_time=50)  # overruns the deadline
        state.notify_start(0)
        before = state.availability(0, 5)
        after = state.availability(0, 12)
        assert pmf_equal(before, reference_availability(m0, tiny_pet, 5))
        assert pmf_equal(after, reference_availability(m0, tiny_pet, 12))
        assert before.support()[1] == 10  # collapsed at the deadline
        assert after.support()[1] == 13  # collapse moved to max(10, 12 + 1)

    def test_idle_pending_chain_reanchors_with_now(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet, cross_check=True)
        m0 = machines[0]
        task = make_task(0, deadline=300)
        m0.enqueue(task, now=0)
        state.notify_enqueue(0, task)
        at_zero = state.availability(0, 0)
        at_ten = state.availability(0, 10)
        assert pmf_equal(at_ten, reference_availability(m0, tiny_pet, 10))
        assert at_ten.mean() > at_zero.mean()

    def test_availability_excluding_reuses_prefix(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet)
        m0 = machines[0]
        tasks = [make_task(i, deadline=200 + 40 * i) for i in range(4)]
        for task in tasks:
            m0.enqueue(task, now=0)
            state.notify_enqueue(0, task)
        got = state.availability_excluding(0, {tasks[2].task_id}, 0)
        context = MappingContext(
            now=0,
            batch=(),
            machines=tuple(machines),
            pet=tiny_pet,
            policy=DroppingPolicy.EVICT,
        )
        want = context.availability_excluding(0, {tasks[2].task_id})
        assert pmf_equal(got, want)

    def test_batch_rows_match_scalar_availability(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet)
        for i, machine in enumerate(machines):
            task = make_task(i, task_type=i, deadline=250)
            machine.enqueue(task, now=0)
            state.notify_enqueue(machine.index, task)
        batch = state.availability_batch(0)
        for j, machine in enumerate(machines):
            assert pmf_equal(batch.row(j), reference_availability(machine, tiny_pet, 0))

    def test_rebuild_matches_incremental(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet)
        m0 = machines[0]
        for i in range(3):
            task = make_task(i, deadline=200 + 30 * i)
            m0.enqueue(task, now=0)
            state.notify_enqueue(0, task)
        incremental = [p.compact() for p in state.chain(0, 0)]
        state.rebuild(0)
        rebuilt = [p.compact() for p in state.chain(0, 0)]
        assert len(incremental) == len(rebuilt)
        for a, b in zip(incremental, rebuilt):
            assert pmf_equal(a, b)

    def test_cross_check_detects_corruption(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet, cross_check=True)
        m0 = machines[0]
        task = make_task(0, deadline=200)
        m0.enqueue(task, now=0)
        state.notify_enqueue(0, task)
        state.availability(0, 0)
        # Corrupt the cached chain behind the state's back.
        rec = state._records[0]
        rec.chain[-1] = rec.chain[-1].shift(3)
        rec.revision += 1
        with pytest.raises(SystemStateError):
            state.availability(0, 0)


class TestMappingContextViews:
    def test_context_serves_live_state(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet)
        task = make_task(0, deadline=250)
        machines[0].enqueue(task, now=0)
        state.notify_enqueue(0, task)
        context = MappingContext(
            now=0,
            batch=batch_in_arrival_order(()),
            machines=tuple(machines),
            pet=tiny_pet,
            policy=DroppingPolicy.EVICT,
            state=state,
        )
        assert context.machine_availability(0) is state.availability(0, 0)
        assert context.availability_batch() is state.availability_batch(0)

    def test_fallback_matches_state_path(self, tiny_pet, machines):
        state = SystemState(machines, tiny_pet)
        task = make_task(0, deadline=250)
        machines[0].enqueue(task, now=0)
        state.notify_enqueue(0, task)
        common = dict(
            now=0,
            batch=batch_in_arrival_order(()),
            machines=tuple(machines),
            pet=tiny_pet,
            policy=DroppingPolicy.EVICT,
        )
        with_state = MappingContext(state=state, **common)
        without_state = MappingContext(**common)
        for j in range(len(machines)):
            assert pmf_equal(
                with_state.machine_availability(j), without_state.machine_availability(j)
            )


def _signature(result):
    return (
        tuple(
            (t.task_id, t.status.value, t.machine, t.exec_start, t.exec_end, t.dropped_at)
            for t in result.tasks
        ),
        result.counters.as_dict(),
        result.machine_busy_times,
        result.end_time,
    )


@pytest.mark.parametrize("batch_window", [0, 25])
@pytest.mark.parametrize("heuristic_name", ["MM", "PAM", "PAMF"])
def test_full_trial_incremental_vs_rebuild_cross_check(
    spec_pet_small, heuristic_name, batch_window
):
    """Seeded fig4-scale trials: incremental state vs forced rebuild cross-check.

    The cross-check run re-derives every queried chain from scratch through
    the lockstep rebuild kernel and raises on any bit-level divergence; on
    top of that the trial-level metrics must be bit-identical to the plain
    incremental run.  Runs in both engine modes: per-event (``window=0``)
    and batched scheduling rounds.
    """
    trace = generate_workload(
        WorkloadConfig(num_tasks=250, time_span=1000, beta=1.2), spec_pet_small, rng=5
    )

    def run(config):
        heuristic = make_heuristic(
            heuristic_name, num_task_types=spec_pet_small.num_task_types
        )
        sim = HCSimulator(spec_pet_small, heuristic, config=config, rng=17)
        return sim.run(trace)

    incremental = run(SimulatorConfig(batch_window=batch_window))
    crosschecked = run(
        SimulatorConfig(state_cross_check=True, batch_window=batch_window)
    )
    assert _signature(incremental) == _signature(crosschecked)
    assert incremental.robustness_percent(warmup=20, cooldown=20) == crosschecked.robustness_percent(
        warmup=20, cooldown=20
    )


def test_full_trial_pending_policy_cross_check(spec_pet_small):
    """The PENDING dropping regime flows through the same equivalence gate."""
    trace = generate_workload(
        WorkloadConfig(num_tasks=150, time_span=800, beta=1.5), spec_pet_small, rng=9
    )

    def run(cross_check):
        heuristic = make_heuristic("PAM", num_task_types=spec_pet_small.num_task_types)
        config = SimulatorConfig(
            evict_executing_at_deadline=False, state_cross_check=cross_check
        )
        return HCSimulator(spec_pet_small, heuristic, config=config, rng=3).run(trace)

    assert _signature(run(False)) == _signature(run(True))


@pytest.fixture(scope="module")
def spec_pet_small():
    from repro.pet.builders import build_spec_pet

    return build_spec_pet(rng=1, n_samples=120)
