"""Integration tests for the event-driven HC simulator."""

from __future__ import annotations

import pytest

from repro.heuristics.baselines import MinCompletionMinCompletion
from repro.heuristics.pam import PruningAwareMapper
from repro.simulator.engine import HCSimulator, SimulatorConfig, simulate
from repro.simulator.task import DropReason, TaskStatus


class TestBasicRuns:
    def test_all_tasks_reach_terminal_state(self, small_gamma_pet, small_trace):
        result = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=1)
        assert len(result.tasks) == len(small_trace)
        assert all(t.is_terminal for t in result.tasks)

    def test_light_load_mostly_succeeds(self, small_gamma_pet, light_trace):
        result = simulate(small_gamma_pet, MinCompletionMinCompletion(), light_trace, rng=1)
        assert result.robustness_percent() > 80.0

    def test_on_time_tasks_satisfy_deadlines(self, small_gamma_pet, small_trace):
        result = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=2)
        for task in result.tasks:
            if task.on_time:
                assert task.exec_end is not None and task.exec_end <= task.deadline

    def test_completed_tasks_have_consistent_times(self, small_gamma_pet, small_trace):
        result = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=2)
        for task in result.tasks:
            if task.status is TaskStatus.COMPLETED:
                assert task.exec_start is not None
                assert task.exec_end == task.exec_start + task.actual_execution_time
                assert task.exec_start >= task.arrival

    def test_dropped_tasks_have_reasons(self, small_gamma_pet, small_trace):
        result = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=2)
        for task in result.tasks:
            if task.status is TaskStatus.DROPPED:
                assert task.drop_reason is not None

    def test_busy_time_consistency(self, small_gamma_pet, small_trace):
        result = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=3)
        total_task_busy = sum(t.busy_time for t in result.tasks)
        assert sum(result.machine_busy_times) == pytest.approx(total_task_busy)

    def test_counters_are_coherent(self, small_gamma_pet, small_trace):
        result = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=3)
        counters = result.counters
        assert counters.mapping_events > 0
        assert counters.assignments <= len(small_trace)
        completed = sum(1 for t in result.tasks if t.status is TaskStatus.COMPLETED)
        assert counters.completions == completed


class TestDeterminism:
    def test_same_seed_same_result(self, small_gamma_pet, small_trace):
        a = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=7)
        b = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=7)
        assert a.robustness_percent() == b.robustness_percent()
        assert a.total_cost() == b.total_cost()
        assert [t.status for t in a.tasks] == [t.status for t in b.tasks]

    def test_different_seed_usually_differs(self, small_gamma_pet, small_trace):
        a = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=7)
        b = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=8)
        differs = a.robustness_percent() != b.robustness_percent() or [
            t.exec_start for t in a.tasks
        ] != [t.exec_start for t in b.tasks]
        assert differs


class TestSystemModel:
    def test_queue_capacity_never_exceeded(self, small_gamma_pet, small_trace):
        config = SimulatorConfig(queue_capacity=2)
        sim = HCSimulator(small_gamma_pet, MinCompletionMinCompletion(), config=config, rng=1)
        result = sim.run(small_trace)
        # Post-hoc check: no machine ever holds more than `capacity` tasks at
        # once.  Reconstruct occupancy from execution intervals: at most one
        # executing task at a time per machine.
        for machine_index in range(small_gamma_pet.num_machines):
            intervals = [
                (t.exec_start, t.exec_end)
                for t in result.tasks
                if t.machine == machine_index and t.exec_start is not None
            ]
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1  # no preemption / multitasking

    def test_eviction_at_deadline_when_enabled(self, small_gamma_pet, small_trace):
        config = SimulatorConfig(evict_executing_at_deadline=True)
        result = simulate(
            small_gamma_pet, MinCompletionMinCompletion(), small_trace, config=config, rng=4
        )
        for task in result.tasks:
            if task.drop_reason is DropReason.DEADLINE_MISS_EXECUTING:
                assert task.exec_end == task.deadline
            if task.status is TaskStatus.COMPLETED:
                assert task.on_time  # late completions are impossible with eviction

    def test_late_completions_allowed_without_eviction(self, small_gamma_pet, small_trace):
        config = SimulatorConfig(evict_executing_at_deadline=False)
        result = simulate(
            small_gamma_pet, MinCompletionMinCompletion(), small_trace, config=config, rng=4
        )
        late = [t for t in result.tasks if t.status is TaskStatus.COMPLETED and not t.on_time]
        assert late, "an oversubscribed run without eviction should finish some tasks late"

    def test_eviction_reduces_wasted_busy_time(self, small_gamma_pet, small_trace):
        evict = simulate(
            small_gamma_pet,
            MinCompletionMinCompletion(),
            small_trace,
            config=SimulatorConfig(evict_executing_at_deadline=True),
            rng=5,
        )
        keep = simulate(
            small_gamma_pet,
            MinCompletionMinCompletion(),
            small_trace,
            config=SimulatorConfig(evict_executing_at_deadline=False),
            rng=5,
        )
        assert sum(evict.machine_busy_times) <= sum(keep.machine_busy_times)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SimulatorConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            SimulatorConfig(max_impulses=0)

    def test_price_list_must_match_machines(self, small_gamma_pet):
        with pytest.raises(ValueError):
            HCSimulator(
                small_gamma_pet,
                MinCompletionMinCompletion(),
                machine_prices=[1.0],
            )


class TestWithPruningHeuristic:
    def test_pam_run_exercises_pruning_under_load(self, small_gamma_pet, small_trace):
        result = simulate(small_gamma_pet, PruningAwareMapper(), small_trace, rng=6)
        assert all(t.is_terminal for t in result.tasks)
        # Under oversubscription the deferring stage must be active; the
        # dropping stage fires only when queued tasks degrade below the
        # dropping threshold, which this small trace may or may not trigger.
        assert result.counters.deferrals > 0
        assert result.counters.proactive_drops >= 0

    def test_pam_beats_minmin_on_oversubscribed_trace(self, small_gamma_pet, small_trace):
        mm = simulate(small_gamma_pet, MinCompletionMinCompletion(), small_trace, rng=9)
        pam = simulate(small_gamma_pet, PruningAwareMapper(), small_trace, rng=9)
        assert pam.robustness_percent() > mm.robustness_percent()

    def test_pruned_tasks_marked(self, small_gamma_pet, small_trace):
        result = simulate(small_gamma_pet, PruningAwareMapper(), small_trace, rng=6)
        pruned = [t for t in result.tasks if t.drop_reason is DropReason.PRUNED]
        assert len(pruned) == result.counters.proactive_drops
