"""Tests for runtime task state transitions."""

from __future__ import annotations

import pytest

from repro.simulator.task import DropReason, Task, TaskStatus
from repro.workload.spec import TaskSpec


@pytest.fixture
def task() -> Task:
    return Task(TaskSpec(arrival=10, task_id=1, task_type=2, deadline=60))


class TestProperties:
    def test_spec_passthrough(self, task):
        assert task.task_id == 1
        assert task.task_type == 2
        assert task.arrival == 10
        assert task.deadline == 60

    def test_initial_state(self, task):
        assert task.status is TaskStatus.PENDING
        assert not task.is_terminal
        assert not task.on_time
        assert task.busy_time == 0


class TestLifecycle:
    def test_normal_on_time_completion(self, task):
        task.mark_mapped(machine=3, now=12)
        assert task.status is TaskStatus.QUEUED
        task.mark_executing(now=20, actual_execution_time=15)
        assert task.status is TaskStatus.EXECUTING
        task.mark_completed(now=35)
        assert task.status is TaskStatus.COMPLETED
        assert task.on_time
        assert task.busy_time == 15
        assert task.is_terminal

    def test_late_completion_not_on_time(self, task):
        task.mark_mapped(0, 12)
        task.mark_executing(now=50, actual_execution_time=30)
        task.mark_completed(now=80)
        assert task.status is TaskStatus.COMPLETED
        assert not task.on_time

    def test_completion_exactly_at_deadline_is_on_time(self, task):
        task.mark_mapped(0, 12)
        task.mark_executing(now=40, actual_execution_time=20)
        task.mark_completed(now=60)
        assert task.on_time

    def test_drop_while_pending(self, task):
        task.mark_dropped(now=70, reason=DropReason.DEADLINE_MISS_UNMAPPED)
        assert task.status is TaskStatus.DROPPED
        assert task.drop_reason is DropReason.DEADLINE_MISS_UNMAPPED
        assert task.dropped_at == 70
        assert not task.on_time

    def test_drop_while_executing_records_busy_time(self, task):
        task.mark_mapped(1, 12)
        task.mark_executing(now=20, actual_execution_time=100)
        task.mark_dropped(now=60, reason=DropReason.DEADLINE_MISS_EXECUTING)
        assert task.busy_time == 40
        assert task.exec_end == 60

    def test_pruned_drop(self, task):
        task.mark_mapped(1, 12)
        task.mark_dropped(now=30, reason=DropReason.PRUNED)
        assert task.drop_reason is DropReason.PRUNED


class TestInvalidTransitions:
    def test_cannot_execute_from_pending(self, task):
        with pytest.raises(RuntimeError):
            task.mark_executing(now=20, actual_execution_time=5)

    def test_cannot_complete_without_executing(self, task):
        with pytest.raises(RuntimeError):
            task.mark_completed(now=20)

    def test_cannot_map_terminal_task(self, task):
        task.mark_dropped(10, DropReason.PRUNED)
        with pytest.raises(RuntimeError):
            task.mark_mapped(0, 11)

    def test_cannot_drop_twice(self, task):
        task.mark_dropped(10, DropReason.PRUNED)
        with pytest.raises(RuntimeError):
            task.mark_dropped(11, DropReason.PRUNED)

    def test_execution_time_must_be_positive(self, task):
        task.mark_mapped(0, 12)
        with pytest.raises(ValueError):
            task.mark_executing(now=20, actual_execution_time=0)
