"""Tests for the mapping context/decision interface."""

from __future__ import annotations

import pytest

from repro.core.completion import DroppingPolicy
from repro.simulator.machine import Machine
from repro.simulator.mapping import (
    Assignment,
    MappingContext,
    MappingDecision,
    QueueDrop,
    batch_in_arrival_order,
)
from repro.simulator.task import Task
from repro.workload.spec import TaskSpec


def make_task(task_id: int, *, arrival: int = 0, task_type: int = 0, deadline: int = 500) -> Task:
    return Task(TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline))


@pytest.fixture
def context(tiny_pet):
    machines = (
        Machine(0, "fast-a", queue_capacity=3),
        Machine(1, "fast-b", queue_capacity=3),
    )
    machines[0].enqueue(make_task(100, deadline=400), now=0)
    batch = (make_task(1, arrival=5), make_task(2, arrival=3))
    return MappingContext(
        now=10,
        batch=batch_in_arrival_order(batch),
        machines=machines,
        pet=tiny_pet,
        policy=DroppingPolicy.EVICT,
    )


class TestMappingContext:
    def test_batch_sorted_by_arrival(self, context):
        assert [t.task_id for t in context.batch] == [2, 1]

    def test_machine_availability_cached(self, context):
        first = context.machine_availability(0)
        second = context.machine_availability(0)
        assert first is second

    def test_idle_machine_availability(self, context):
        availability = context.machine_availability(1)
        assert availability.probability_at(10) == pytest.approx(1.0)

    def test_execution_pmf_lookup(self, context, tiny_pet):
        task = context.batch[0]
        assert context.execution_pmf(task, 1) is tiny_pet.get(task.task_type, 1)

    def test_free_slots(self, context):
        assert context.free_slots() == 2 + 3

    def test_batch_task_lookup(self, context):
        assert context.batch_task(1).task_id == 1
        with pytest.raises(KeyError):
            context.batch_task(999)


class TestMappingDecision:
    def test_assign_accepts_objects_and_indices(self, context):
        decision = MappingDecision()
        decision.assign(context.batch[0], context.machines[1])
        decision.assign(1, 0)
        assert decision.assignments == [Assignment(2, 1), Assignment(1, 0)]

    def test_defer_and_drop_helpers(self, context):
        decision = MappingDecision()
        decision.defer(context.batch[0])
        decision.drop_from_queue(100, 0)
        assert decision.deferrals == [2]
        assert decision.queue_drops == [QueueDrop(100, 0)]

    def test_validate_accepts_consistent_decision(self, context):
        decision = MappingDecision()
        decision.assign(2, 1)
        decision.drop_from_queue(100, 0)
        decision.validate(context)

    def test_validate_rejects_unknown_task(self, context):
        decision = MappingDecision()
        decision.assign(999, 0)
        with pytest.raises(ValueError):
            decision.validate(context)

    def test_validate_rejects_duplicate_assignment(self, context):
        decision = MappingDecision()
        decision.assign(1, 0)
        decision.assign(1, 1)
        with pytest.raises(ValueError):
            decision.validate(context)

    def test_validate_rejects_unknown_machine(self, context):
        decision = MappingDecision()
        decision.assign(1, 7)
        with pytest.raises(ValueError):
            decision.validate(context)

    def test_validate_rejects_drop_of_unqueued_task(self, context):
        decision = MappingDecision()
        decision.drop_from_queue(1, 0)  # task 1 is in the batch, not on machine 0
        with pytest.raises(ValueError):
            decision.validate(context)
