"""Tests for simulation metrics (robustness, fairness, cost)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.metrics import SimulationCounters, SimulationResult
from repro.simulator.task import DropReason, Task
from repro.workload.spec import TaskSpec


def make_result(statuses: list[tuple[int, bool | None]], *, num_types: int = 2) -> SimulationResult:
    """Build a synthetic result.

    ``statuses`` is a list of (task_type, on_time) where ``on_time`` None
    means the task was dropped.
    """
    tasks = []
    for i, (task_type, on_time) in enumerate(statuses):
        task = Task(TaskSpec(arrival=i, task_id=i, task_type=task_type, deadline=i + 100))
        if on_time is None:
            task.mark_dropped(i + 200, DropReason.DEADLINE_MISS_UNMAPPED)
        else:
            task.mark_mapped(0, i)
            task.mark_executing(i + 1, 10)
            task.mark_completed(i + 11 if on_time else i + 300)
        tasks.append(task)
    return SimulationResult(
        tasks=tuple(tasks),
        machine_names=("m0", "m1"),
        machine_busy_times=(1000.0, 500.0),
        machine_prices=(1.0, 2.0),
        num_task_types=num_types,
        counters=SimulationCounters(),
        end_time=999,
    )


class TestRobustness:
    def test_all_on_time(self):
        result = make_result([(0, True), (1, True)])
        assert result.robustness_percent() == pytest.approx(100.0)

    def test_mixed(self):
        result = make_result([(0, True), (0, False), (1, None), (1, True)])
        assert result.robustness_percent() == pytest.approx(50.0)
        assert result.completed_on_time() == 2

    def test_warmup_cooldown_trimming(self):
        # first and last tasks fail; middle two succeed
        result = make_result([(0, None), (0, True), (1, True), (1, None)])
        assert result.robustness_percent() == pytest.approx(50.0)
        assert result.robustness_percent(warmup=1, cooldown=1) == pytest.approx(100.0)

    def test_trimming_everything_falls_back_to_all(self):
        result = make_result([(0, True), (1, None)])
        assert result.robustness_percent(warmup=5, cooldown=5) == pytest.approx(50.0)

    def test_negative_trim_rejected(self):
        result = make_result([(0, True)])
        with pytest.raises(ValueError):
            result.evaluated_tasks(warmup=-1)

    def test_empty_result(self):
        result = SimulationResult(
            tasks=(),
            machine_names=("m0",),
            machine_busy_times=(0.0,),
            machine_prices=(1.0,),
            num_task_types=1,
        )
        assert result.robustness_percent() == 0.0


class TestFairness:
    def test_per_type_percentages(self):
        result = make_result([(0, True), (0, True), (1, None), (1, True)])
        per_type = result.per_type_completion_percent()
        assert per_type[0] == pytest.approx(100.0)
        assert per_type[1] == pytest.approx(50.0)

    def test_unused_type_is_nan(self):
        result = make_result([(0, True)], num_types=3)
        per_type = result.per_type_completion_percent()
        assert np.isnan(per_type[1]) and np.isnan(per_type[2])

    def test_variance_zero_when_types_equal(self):
        result = make_result([(0, True), (1, True)])
        assert result.fairness_variance() == pytest.approx(0.0)

    def test_variance_positive_when_types_differ(self):
        result = make_result([(0, True), (0, True), (1, None), (1, None)])
        assert result.fairness_variance() > 0


class TestCostMetrics:
    def test_total_cost(self):
        result = make_result([(0, True)])
        assert result.total_cost() == pytest.approx(1000 * 1.0 / 1000 + 500 * 2.0 / 1000)

    def test_cost_per_percent(self):
        result = make_result([(0, True), (1, None)])
        expected = result.total_cost() / 50.0
        assert result.cost_per_percent_on_time() == pytest.approx(expected)

    def test_cost_per_percent_infinite_when_nothing_completes(self):
        result = make_result([(0, None), (1, None)])
        assert result.cost_per_percent_on_time() == float("inf")


class TestSummaries:
    def test_status_counts(self):
        result = make_result([(0, True), (0, False), (1, None)])
        counts = result.status_counts()
        assert counts["completed-on-time"] == 1
        assert counts["completed-late"] == 1
        assert counts[DropReason.DEADLINE_MISS_UNMAPPED.value] == 1

    def test_summary_keys(self):
        summary = make_result([(0, True)]).summary()
        for key in ("robustness_percent", "total_cost", "mapping_events", "tasks"):
            assert key in summary

    def test_counters_as_dict(self):
        counters = SimulationCounters(mapping_events=3, assignments=2)
        payload = counters.as_dict()
        assert payload["mapping_events"] == 3
        assert payload["assignments"] == 2
