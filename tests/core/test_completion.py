"""Tests of the completion-time model under task dropping (Eqs. 2-5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.completion import (
    DroppingPolicy,
    completion_pmf,
    pct_evict_drop,
    pct_no_drop,
    pct_pending_drop,
    queue_completion_pmfs,
    start_pmf_for_idle_machine,
)
from repro.core.pmf import DiscretePMF


class TestNoDrop:
    def test_matches_plain_convolution(self, simple_pmf, fig2_prev_pct):
        result = pct_no_drop(simple_pmf, fig2_prev_pct)
        assert result.allclose(simple_pmf.convolve(fig2_prev_pct))

    def test_figure2_impulses(self, simple_pmf, fig2_prev_pct):
        result = pct_no_drop(simple_pmf, fig2_prev_pct)
        expected = {4: 0.125, 5: 0.3125, 6: 0.3125, 7: 0.1875, 8: 0.0625}
        for t, p in expected.items():
            assert result.probability_at(t) == pytest.approx(p)

    def test_idle_machine_shift(self, simple_pmf):
        start = start_pmf_for_idle_machine(100)
        result = pct_no_drop(simple_pmf, start)
        assert result.allclose(simple_pmf.shift(100))

    def test_mass_conserved(self, simple_pmf, fig2_prev_pct):
        assert pct_no_drop(simple_pmf, fig2_prev_pct).total_mass() == pytest.approx(1.0)


class TestPendingDrop:
    def test_no_truncation_when_deadline_far(self, simple_pmf, fig2_prev_pct):
        far = pct_pending_drop(simple_pmf, fig2_prev_pct, deadline=100)
        assert far.allclose(pct_no_drop(simple_pmf, fig2_prev_pct))

    def test_pass_through_when_predecessor_late(self, simple_pmf, fig2_prev_pct):
        # Deadline 4: the predecessor finishing at 4 or 5 means the task is
        # dropped while pending and the machine frees exactly then.
        result = pct_pending_drop(simple_pmf, fig2_prev_pct, deadline=4)
        assert result.probability_at(4) == pytest.approx(0.25 + 0.5 * 0.25)
        assert result.probability_at(5) == pytest.approx(0.25 + 0.25 * 0.5 + 0.25 * 0.5)
        assert result.total_mass() == pytest.approx(1.0)

    def test_all_mass_passes_through_when_deadline_before_predecessor(
        self, simple_pmf, fig2_prev_pct
    ):
        result = pct_pending_drop(simple_pmf, fig2_prev_pct, deadline=3)
        # The predecessor can never finish strictly before 3, so the task
        # never starts and the availability is exactly the predecessor PCT.
        assert result.allclose(fig2_prev_pct)

    def test_mass_conserved_for_any_deadline(self, simple_pmf, fig2_prev_pct):
        for deadline in range(2, 12):
            result = pct_pending_drop(simple_pmf, fig2_prev_pct, deadline)
            assert result.total_mass() == pytest.approx(1.0)

    def test_earlier_deadline_never_increases_support(self, simple_pmf, fig2_prev_pct):
        support_far = pct_pending_drop(simple_pmf, fig2_prev_pct, 100).support()[1]
        support_near = pct_pending_drop(simple_pmf, fig2_prev_pct, 5).support()[1]
        assert support_near <= support_far


class TestEvictDrop:
    def test_no_mass_beyond_deadline_when_task_started(self, simple_pmf, fig2_prev_pct):
        deadline = 6
        result = pct_evict_drop(simple_pmf, fig2_prev_pct, deadline)
        # Predecessor always finishes by 5 < 6, so the task always starts and
        # must leave the machine by its deadline.
        assert result.support()[1] <= deadline
        assert result.total_mass() == pytest.approx(1.0)

    def test_eviction_mass_collects_at_deadline(self, simple_pmf, fig2_prev_pct):
        deadline = 6
        no_drop = pct_no_drop(simple_pmf, fig2_prev_pct)
        result = pct_evict_drop(simple_pmf, fig2_prev_pct, deadline)
        late_mass = no_drop.mass_from(deadline)
        assert result.probability_at(deadline) == pytest.approx(late_mass)

    def test_predecessor_late_mass_passes_through(self, simple_pmf, fig2_prev_pct):
        # Deadline 4: predecessor mass at 4 and 5 is "task dropped while
        # pending" and must stay at the predecessor's completion times.
        result = pct_evict_drop(simple_pmf, fig2_prev_pct, deadline=4)
        assert result.probability_at(5) >= 0.25  # predecessor finishing at 5
        assert result.total_mass() == pytest.approx(1.0)

    def test_mass_conserved_for_any_deadline(self, simple_pmf, fig2_prev_pct):
        for deadline in range(2, 12):
            result = pct_evict_drop(simple_pmf, fig2_prev_pct, deadline)
            assert result.total_mass() == pytest.approx(1.0)

    def test_equivalent_to_pending_when_deadline_far(self, simple_pmf, fig2_prev_pct):
        far_evict = pct_evict_drop(simple_pmf, fig2_prev_pct, 100)
        far_pending = pct_pending_drop(simple_pmf, fig2_prev_pct, 100)
        assert far_evict.allclose(far_pending)


class TestDispatcherAndChains:
    def test_dispatcher_selects_policy(self, simple_pmf, fig2_prev_pct):
        for policy, reference in [
            (DroppingPolicy.NONE, pct_no_drop(simple_pmf, fig2_prev_pct)),
            (DroppingPolicy.PENDING, pct_pending_drop(simple_pmf, fig2_prev_pct, 6)),
            (DroppingPolicy.EVICT, pct_evict_drop(simple_pmf, fig2_prev_pct, 6)),
        ]:
            assert completion_pmf(simple_pmf, fig2_prev_pct, 6, policy).allclose(reference)

    def test_dispatcher_rejects_unknown_policy(self, simple_pmf, fig2_prev_pct):
        with pytest.raises(ValueError):
            completion_pmf(simple_pmf, fig2_prev_pct, 6, policy="bogus")  # type: ignore[arg-type]

    def test_queue_chain_lengths_and_monotone_means(self, simple_pmf):
        pets = [simple_pmf, simple_pmf, simple_pmf]
        deadlines = [50, 60, 70]
        chain = queue_completion_pmfs(
            pets, deadlines, start=DiscretePMF.point(0), policy=DroppingPolicy.NONE
        )
        assert len(chain) == 3
        means = [pmf.mean() for pmf in chain]
        assert means[0] < means[1] < means[2]
        assert means[2] == pytest.approx(3 * simple_pmf.mean())

    def test_queue_chain_with_eviction_bounded_by_deadlines(self, simple_pmf):
        pets = [simple_pmf] * 4
        deadlines = [3, 6, 9, 12]
        chain = queue_completion_pmfs(
            pets, deadlines, start=DiscretePMF.point(0), policy=DroppingPolicy.EVICT
        )
        for pmf, deadline in zip(chain, deadlines):
            assert pmf.support()[1] <= deadline
            assert pmf.total_mass() == pytest.approx(1.0)

    def test_queue_chain_applies_aggregation(self, rng):
        wide = DiscretePMF.from_samples(rng.gamma(2, 30, size=400))
        chain = queue_completion_pmfs(
            [wide] * 3,
            [10_000] * 3,
            start=DiscretePMF.point(0),
            policy=DroppingPolicy.NONE,
            max_impulses=16,
        )
        for pmf in chain:
            assert np.count_nonzero(pmf.probs) <= 16

    def test_queue_chain_length_mismatch(self, simple_pmf):
        with pytest.raises(ValueError):
            queue_completion_pmfs([simple_pmf], [1, 2], start=DiscretePMF.point(0))

    def test_dropping_improves_tasks_behind(self, simple_pmf):
        """Dropping a hopeless task lets the task behind it start earlier —
        the cascading benefit the paper's model quantifies (Section IV)."""
        long_task = DiscretePMF.from_impulses({20: 1.0})
        behind = simple_pmf
        start = DiscretePMF.point(0)
        # Without dropping, the task behind waits the full 20 units.
        chain_keep = queue_completion_pmfs(
            [long_task, behind], [5, 10], start=start, policy=DroppingPolicy.NONE
        )
        # With evict-capable dropping, the hopeless head leaves at its deadline.
        chain_evict = queue_completion_pmfs(
            [long_task, behind], [5, 10], start=start, policy=DroppingPolicy.EVICT
        )
        assert chain_evict[1].cdf(10) > chain_keep[1].cdf(10)
