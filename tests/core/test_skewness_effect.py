"""Reproduction of the paper's Figure 3: the skewness of a task's
completion-time PMF changes the robustness of the task queued behind it,
even when the task's own robustness is identical (0.75 in all three cases).
"""

from __future__ import annotations

import pytest

from repro.core.completion import DroppingPolicy
from repro.core.pmf import DiscretePMF
from repro.core.robustness import success_probability


@pytest.fixture
def next_task_pet() -> DiscretePMF:
    """Execution-time PMF of task i+1 in Figure 3 (left-most PMFs)."""
    return DiscretePMF.from_impulses({1: 0.25, 2: 0.50, 3: 0.25})


# Completion-time PMFs of task i (the middle PMFs of Figure 3).  All three
# have robustness 0.75 against task i's deadline of 3 but different skews.
NO_SKEW = DiscretePMF.from_impulses({2: 0.25, 3: 0.50, 4: 0.25})
LEFT_SKEW = DiscretePMF.from_impulses({1: 0.05, 2: 0.10, 3: 0.60, 4: 0.25})
RIGHT_SKEW = DiscretePMF.from_impulses({2: 0.50, 3: 0.25, 4: 0.25})

DEADLINE_I = 3
DEADLINE_NEXT = 5


def test_all_three_predecessors_have_equal_robustness():
    for pct in (NO_SKEW, LEFT_SKEW, RIGHT_SKEW):
        assert pct.cdf(DEADLINE_I) == pytest.approx(0.75)


def test_skewness_signs_match_figure3():
    assert NO_SKEW.skewness() == pytest.approx(0.0, abs=1e-9)
    assert LEFT_SKEW.skewness() < 0.0
    assert RIGHT_SKEW.skewness() > 0.0


def test_positive_skew_helps_the_next_task(next_task_pet):
    """Figure 3(c) vs 3(b): the next task (deadline 5) is more robust behind
    a positively skewed predecessor than behind a negatively skewed one."""
    behind_right = success_probability(next_task_pet, RIGHT_SKEW, DEADLINE_NEXT, DroppingPolicy.NONE)
    behind_none = success_probability(next_task_pet, NO_SKEW, DEADLINE_NEXT, DroppingPolicy.NONE)
    behind_left = success_probability(next_task_pet, LEFT_SKEW, DEADLINE_NEXT, DroppingPolicy.NONE)
    assert behind_right > behind_none > behind_left


def test_figure3_quantitative_values(next_task_pet):
    """The paper reports 0.6875 (no skew), 0.6625 (left skew), 0.75 (right skew)."""
    assert success_probability(
        next_task_pet, NO_SKEW, DEADLINE_NEXT, DroppingPolicy.NONE
    ) == pytest.approx(0.6875)
    assert success_probability(
        next_task_pet, LEFT_SKEW, DEADLINE_NEXT, DroppingPolicy.NONE
    ) == pytest.approx(0.6625)
    assert success_probability(
        next_task_pet, RIGHT_SKEW, DEADLINE_NEXT, DroppingPolicy.NONE
    ) == pytest.approx(0.75)


def test_dropping_threshold_adjustment_favours_right_skew():
    """Eq. 7: a positively skewed task gets a lower (more lenient) dropping
    threshold than a negatively skewed one at the same queue position."""
    from repro.pruning.thresholds import adjusted_dropping_threshold

    base = 0.5
    lenient = adjusted_dropping_threshold(base, RIGHT_SKEW, queue_position=0, rho=0.1)
    strict = adjusted_dropping_threshold(base, LEFT_SKEW, queue_position=0, rho=0.1)
    assert lenient < base < strict
