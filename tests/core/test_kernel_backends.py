"""Differential suite for the pluggable kernel backends (PR 8 tentpole).

Every installed backend is driven through random ``PMFBatch`` inputs and
compared against two references:

* the **scalar** path (:class:`DiscretePMF` ops /
  :mod:`repro.heuristics.scoring`) — the NumPy backend must match it at
  ``atol=0``, extending the original batched-kernel contract;
* the **NumPy backend** — accelerator backends must match it within their
  own pinned ``rtol``/``atol`` attributes (the documented tolerance policy;
  the jitted numba path pins ``0.0`` and is therefore bit-identical too).

A full seeded 660-task reference-trace trial per installed backend closes
the loop at the whole-simulation level.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (
    KERNEL_VERSION,
    CDFTable,
    PMFBatch,
    batched_convolve,
    batched_convolve_ragged,
    batched_shift,
    batched_success_probability,
    sequential_sum,
)
from repro.core.completion import DroppingPolicy, batched_completion_step
from repro.core.kernels import (
    ARRAY_API_NAMESPACE_ENV,
    KERNEL_BACKEND_ENV,
    ArrayApiBackend,
    KernelBackendUnavailable,
    NumpyBackend,
    active_backend,
    available_backends,
    backend_available,
    get_backend,
    kernel_cache_tag,
    parse_kernel_tag,
    resolve_backend,
    resolved_backend_name,
    set_active_backend,
    use_backend,
)
from repro.core.pmf import DiscretePMF
from repro.heuristics.registry import make_heuristic
from repro.heuristics.scoring import expected_completion, fast_success_probability
from repro.pet.builders import build_transcoding_pet
from repro.simulator.engine import HCSimulator, SimulatorConfig, simulate
from repro.workload.traces import load_trace

REFERENCE_TRACE = (
    Path(__file__).resolve().parent.parent.parent
    / "examples"
    / "transcoding_660.trace.json"
)

INSTALLED = available_backends()


def _assert_backend_close(backend, actual, reference) -> None:
    """Apply the backend's pinned tolerance (bit-identity when it pins 0)."""
    actual = np.asarray(actual)
    reference = np.asarray(reference)
    if backend.rtol == 0.0 and backend.atol == 0.0:
        assert np.array_equal(actual, reference), backend.name
    else:
        np.testing.assert_allclose(
            actual, reference, rtol=backend.rtol, atol=backend.atol
        )


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def pmf_strategy(draw, min_time=-8, max_time=50, allow_zero_mass=True):
    n = draw(st.integers(min_value=0 if allow_zero_mass else 1, max_value=5))
    if n == 0:
        return DiscretePMF.zero()
    times = draw(
        st.lists(
            st.integers(min_time, max_time), min_size=n, max_size=n, unique=True
        )
    )
    weights = draw(
        st.lists(st.floats(0.01, 1.0, allow_nan=False), min_size=n, max_size=n)
    )
    mass = draw(st.floats(0.05, 1.0, allow_nan=False))
    scale = mass / sum(weights)
    return DiscretePMF.from_impulses(
        {t: w * scale for t, w in zip(times, weights)}
    )


@st.composite
def batch_strategy(draw, min_rows=1, max_rows=5, **pmf_kwargs):
    rows = draw(
        st.lists(pmf_strategy(**pmf_kwargs), min_size=min_rows, max_size=max_rows)
    )
    return PMFBatch.from_pmfs(rows)


@st.composite
def scoring_case_strategy(draw):
    """Random (availability, execution grid, tasks) scoring problem."""
    n_machines = draw(st.integers(1, 4))
    n_types = draw(st.integers(1, 3))
    n_tasks = draw(st.integers(1, 6))
    avail_pmfs = [
        draw(pmf_strategy(min_time=0, max_time=40)) for _ in range(n_machines)
    ]
    grid = [
        [
            draw(pmf_strategy(min_time=1, max_time=25, allow_zero_mass=False))
            for _ in range(n_machines)
        ]
        for _ in range(n_types)
    ]
    types = draw(
        st.lists(st.integers(0, n_types - 1), min_size=n_tasks, max_size=n_tasks)
    )
    deadlines = draw(
        st.lists(st.integers(0, 80), min_size=n_tasks, max_size=n_tasks)
    )
    return avail_pmfs, grid, np.array(types), np.array(deadlines)


def _assert_same_pmf(got: DiscretePMF, want: DiscretePMF) -> None:
    """Bit-identical after compaction; zero-mass PMFs are equal regardless
    of the offset each path canonicalises to."""
    got, want = got.compact(), want.compact()
    if got.is_zero() and want.is_zero():
        return
    assert got.offset == want.offset
    assert np.array_equal(got.probs, want.probs)


# ----------------------------------------------------------------------
# Differential kernels, per installed backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", INSTALLED)
class TestBackendDifferential:
    @settings(max_examples=25, deadline=None)
    @given(batch=batch_strategy(), data=st.data())
    def test_shift_matches_reference(self, name, batch, data):
        backend = get_backend(name)
        scalar_delta = data.draw(st.integers(-10, 10))
        out = backend.shift(batch, scalar_delta)
        ref = batched_shift(batch, scalar_delta)
        assert out.offset == ref.offset
        _assert_backend_close(backend, out.probs, ref.probs)

        deltas = np.array(
            data.draw(
                st.lists(
                    st.integers(-10, 10),
                    min_size=batch.n_pmfs,
                    max_size=batch.n_pmfs,
                )
            ),
            dtype=np.int64,
        )
        out = backend.shift(batch, deltas)
        ref = batched_shift(batch, deltas)
        assert out.offset == ref.offset
        _assert_backend_close(backend, out.probs, ref.probs)

    @settings(max_examples=25, deadline=None)
    @given(batch=batch_strategy(), kernel=pmf_strategy(min_time=0, max_time=20))
    def test_convolve_matches_reference_and_scalar(self, name, batch, kernel):
        backend = get_backend(name)
        out = backend.convolve(batch, kernel)
        ref = batched_convolve(batch, kernel)
        assert out.offset == ref.offset
        _assert_backend_close(backend, out.probs, ref.probs)
        if backend.rtol == 0.0:  # scalar atol=0 leg of the contract
            for i in range(batch.n_pmfs):
                _assert_same_pmf(out.row(i), batch.row(i).convolve_with(kernel))

    @settings(max_examples=25, deadline=None)
    @given(batch=batch_strategy(), data=st.data())
    def test_convolve_ragged_matches_reference_and_scalar(self, name, batch, data):
        backend = get_backend(name)
        kernels = [
            data.draw(pmf_strategy(min_time=0, max_time=20))
            for _ in range(batch.n_pmfs)
        ]
        out = backend.convolve_ragged(batch, kernels)
        ref = batched_convolve_ragged(batch, kernels)
        assert out.offset == ref.offset
        _assert_backend_close(backend, out.probs, ref.probs)
        if backend.rtol == 0.0:
            for i in range(batch.n_pmfs):
                _assert_same_pmf(out.row(i), batch.row(i).convolve_with(kernels[i]))

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.lists(st.floats(-5.0, 5.0, allow_nan=False), min_size=0, max_size=8),
            min_size=1,
            max_size=5,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1)
    )
    def test_sequential_sum_matches_reference(self, name, values):
        backend = get_backend(name)
        arr = np.array(values, dtype=np.float64)
        for axis in (-1, 0, 1):
            _assert_backend_close(
                backend,
                backend.sequential_sum(arr, axis=axis),
                sequential_sum(arr, axis=axis),
            )

    @settings(max_examples=25, deadline=None)
    @given(case=scoring_case_strategy())
    def test_success_probability_matches_reference_and_scalar(self, name, case):
        backend = get_backend(name)
        avail_pmfs, grid, types, deadlines = case
        batch = PMFBatch.from_pmfs(avail_pmfs)
        table = CDFTable.from_grid(grid)
        out = backend.success_probability(batch, table, types, deadlines)
        ref = batched_success_probability(batch, table, types, deadlines)
        _assert_backend_close(backend, out, ref)
        if backend.rtol == 0.0:  # scalar atol=0 leg of the contract
            for i, (task_type, deadline) in enumerate(zip(types, deadlines)):
                for j, avail in enumerate(avail_pmfs):
                    scalar = fast_success_probability(
                        grid[task_type][j], avail, int(deadline)
                    )
                    assert out[i, j] == scalar

    @settings(max_examples=25, deadline=None)
    @given(case=scoring_case_strategy())
    def test_expected_completion_matches_scalar(self, name, case):
        backend = get_backend(name)
        avail_pmfs, grid, types, _ = case
        means = np.array([p.mean() for p in avail_pmfs], dtype=np.float64)
        exec_means = np.array(
            [[grid[t][j].mean() for j in range(len(avail_pmfs))] for t in types],
            dtype=np.float64,
        )
        out = backend.expected_completion(means, exec_means)
        for i, task_type in enumerate(types):
            for j, avail in enumerate(avail_pmfs):
                scalar = expected_completion(grid[task_type][j], avail)
                if np.isnan(scalar):
                    assert np.isnan(out[i, j])
                elif backend.rtol == 0.0:
                    assert out[i, j] == scalar
                else:
                    np.testing.assert_allclose(
                        out[i, j], scalar, rtol=backend.rtol, atol=backend.atol
                    )

    def test_ragged_rejects_row_mismatch(self, name):
        backend = get_backend(name)
        batch = PMFBatch.from_pmfs([DiscretePMF.point(1), DiscretePMF.point(2)])
        with pytest.raises(ValueError, match="one kernel per row"):
            backend.convolve_ragged(batch, [DiscretePMF.point(0)])

    def test_success_probability_rejects_machine_mismatch(self, name):
        backend = get_backend(name)
        batch = PMFBatch.single(DiscretePMF.point(3))
        table = CDFTable.from_pmf(DiscretePMF.point(2))
        with pytest.raises(ValueError, match="one row per entry"):
            backend.success_probability(
                batch,
                table,
                np.array([0]),
                np.array([10]),
                machine_indices=np.array([0, 0]),
            )

    def test_success_probability_zero_mass_availability(self, name):
        backend = get_backend(name)
        batch = PMFBatch(np.zeros((2, 3)), 0)
        table = CDFTable.from_grid([[DiscretePMF.point(2), DiscretePMF.point(3)]])
        out = backend.success_probability(batch, table, np.array([0]), np.array([9]))
        assert np.array_equal(out, np.zeros((1, 2)))


# ----------------------------------------------------------------------
# Full seeded reference-trace trial per installed backend
# ----------------------------------------------------------------------


def _trial_signature(result):
    return tuple(
        (
            t.task_id,
            t.status.value,
            t.machine,
            t.mapped_at,
            t.exec_start,
            t.exec_end,
            t.dropped_at,
        )
        for t in result.tasks
    )


@pytest.fixture(scope="module")
def reference_trace():
    return load_trace(REFERENCE_TRACE)


@pytest.fixture(scope="module")
def reference_result(reference_trace):
    pet = build_transcoding_pet(rng=2019)
    heuristic = make_heuristic("PAMF", num_task_types=pet.num_task_types)
    return simulate(pet, heuristic, reference_trace, rng=2021)


@pytest.mark.parametrize("name", INSTALLED)
def test_reference_trace_trial_matches(name, reference_trace, reference_result):
    """660-task seeded trial: every installed backend vs the default run."""
    backend = get_backend(name)
    pet = build_transcoding_pet(rng=2019)
    heuristic = make_heuristic("PAMF", num_task_types=pet.num_task_types)
    result = simulate(
        pet,
        heuristic,
        reference_trace,
        config=SimulatorConfig(kernel_backend=name),
        rng=2021,
    )
    if backend.rtol == 0.0 and backend.atol == 0.0:
        assert _trial_signature(result) == _trial_signature(reference_result)
    else:
        # Tolerance backends may legally flip knife-edge ties; require the
        # same decision stream shape and a matching headline metric.
        assert [t.status.value for t in result.tasks] == [
            t.status.value for t in reference_result.tasks
        ]
        assert result.robustness_percent() == pytest.approx(
            reference_result.robustness_percent(), abs=0.5
        )


def test_default_backend_unscoped_run_unchanged(reference_trace, reference_result):
    """kernel_backend=None must leave the process-wide default untouched."""
    pet = build_transcoding_pet(rng=2019)
    heuristic = make_heuristic("PAMF", num_task_types=pet.num_task_types)
    result = simulate(
        pet, heuristic, reference_trace, config=SimulatorConfig(), rng=2021
    )
    assert _trial_signature(result) == _trial_signature(reference_result)


# ----------------------------------------------------------------------
# Dispatch plumbing: the engine and the chain step honour the scope
# ----------------------------------------------------------------------


class _SpyBackend(NumpyBackend):
    name = "numpy"

    def __init__(self):
        self.calls: dict[str, int] = {}

    def _count(self, key):
        self.calls[key] = self.calls.get(key, 0) + 1

    def convolve_ragged(self, batch, kernels):
        self._count("convolve_ragged")
        return super().convolve_ragged(batch, kernels)

    def success_probability(self, *args, **kwargs):
        self._count("success_probability")
        return super().success_probability(*args, **kwargs)

    def expected_completion(self, *args, **kwargs):
        self._count("expected_completion")
        return super().expected_completion(*args, **kwargs)


def test_completion_step_dispatches_through_active_backend():
    spy = _SpyBackend()
    pets = [
        DiscretePMF.from_impulses({3: 0.5, 4: 0.25, 5: 0.25}),
        DiscretePMF.from_impulses({2: 0.4, 4: 0.3, 6: 0.3}),
    ]
    # Sparse predecessors (nonzeros < dense width) so the lockstep step
    # takes its ragged-convolve branch rather than the scalar fallback.
    prevs = [
        DiscretePMF.from_impulses({1: 0.4, 6: 0.3}),
        DiscretePMF.from_impulses({2: 0.5, 9: 0.2}),
    ]
    with use_backend(spy):
        out = batched_completion_step(pets, prevs, [50, 50], DroppingPolicy.EVICT)
    assert spy.calls.get("convolve_ragged", 0) >= 1
    ref = batched_completion_step(pets, prevs, [50, 50], DroppingPolicy.EVICT)
    for got, want in zip(out, ref):
        assert got.offset == want.offset
        assert np.array_equal(got.probs, want.probs)


def test_engine_scopes_backend_around_event_loop(reference_trace):
    spy = _SpyBackend()
    pet = build_transcoding_pet(rng=2019)
    heuristic = make_heuristic("PAMF", num_task_types=pet.num_task_types)
    sim = HCSimulator(pet, heuristic, rng=2021)
    sim._kernel_backend = spy  # a live instance is accepted wherever a name is
    sim.run(
        type(reference_trace)(reference_trace.tasks[:40], reference_trace.config)
    )
    assert spy.calls.get("success_probability", 0) >= 1
    assert spy.calls.get("expected_completion", 0) >= 1
    assert active_backend() is not spy  # scope restored after the run


# ----------------------------------------------------------------------
# Registry, selection order, tags
# ----------------------------------------------------------------------


class TestSelection:
    def test_numpy_always_available(self):
        assert "numpy" in INSTALLED
        assert backend_available("numpy")
        assert not backend_available("not-a-backend")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolved_backend_name("cuda")

    def test_selection_order(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert resolved_backend_name(None) == "numpy"
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "array-api")
        assert resolved_backend_name(None) == "array-api"
        # Explicit selection wins over the environment.
        assert resolved_backend_name("numpy") == "numpy"
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "warp-drive")
        with pytest.raises(ValueError, match="REPRO_KERNEL_BACKEND"):
            resolved_backend_name(None)

    def test_resolve_backend_passes_instances_through(self):
        instance = NumpyBackend()
        assert resolve_backend(instance) is instance
        assert resolve_backend("numpy") is get_backend("numpy")

    def test_use_backend_scopes_and_restores(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        previous = set_active_backend("numpy")
        with use_backend("array-api") as scoped:
            assert active_backend() is scoped
            assert scoped.name == "array-api"
        assert active_backend() is previous
        # None is a no-op scope.
        with use_backend(None) as scoped:
            assert scoped is previous
        assert active_backend() is previous

    def test_use_backend_restores_on_exception(self):
        previous = set_active_backend("numpy")
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("array-api"):
                raise RuntimeError("boom")
        assert active_backend() is previous

    @pytest.mark.skipif(
        backend_available("numba"), reason="numba installed: backend is available"
    )
    def test_missing_numba_is_unavailable_not_broken(self):
        assert "numba" not in INSTALLED
        with pytest.raises(KernelBackendUnavailable, match="numba"):
            get_backend("numba")
        # Fail-fast at simulator construction, not mid-run.
        pet = build_transcoding_pet(rng=2019)
        heuristic = make_heuristic("MM", num_task_types=pet.num_task_types)
        with pytest.raises(KernelBackendUnavailable, match="numba"):
            HCSimulator(
                pet, heuristic, config=SimulatorConfig(kernel_backend="numba")
            )

    def test_simulator_config_validates_backend_name(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            SimulatorConfig(kernel_backend="warp-drive")

    def test_array_api_backend_reports_namespace(self):
        backend = ArrayApiBackend()
        assert backend.name == "array-api"
        assert isinstance(backend.namespace_name, str)
        explicit = ArrayApiBackend(namespace=np)
        assert explicit.namespace_name == "numpy"

    def test_array_api_shift_rejects_bad_delta_shape(self):
        backend = ArrayApiBackend()
        batch = PMFBatch.from_pmfs([DiscretePMF.point(1), DiscretePMF.point(2)])
        with pytest.raises(ValueError, match="scalar delta or shape"):
            backend.shift(batch, np.array([1, 2, 3]))

    def test_array_api_boundary_conversion(self):
        """Non-ndarray namespace outputs convert back through __array__."""
        backend = ArrayApiBackend()
        out = backend._to_numpy([1.0, 2.0])
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float64

    def test_array_api_namespace_env(self, monkeypatch):
        monkeypatch.setenv(ARRAY_API_NAMESPACE_ENV, "numpy")
        assert ArrayApiBackend().namespace_name == "numpy"
        monkeypatch.setenv(ARRAY_API_NAMESPACE_ENV, "not_a_real_namespace")
        with pytest.raises(KernelBackendUnavailable, match="not importable"):
            ArrayApiBackend()


class TestCacheTags:
    def test_numpy_tag_is_the_bare_version(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert kernel_cache_tag() == KERNEL_VERSION
        assert kernel_cache_tag("numpy") == KERNEL_VERSION
        assert kernel_cache_tag("numpy", version=7) == 7

    def test_other_backends_get_composite_tags(self):
        assert kernel_cache_tag("array-api") == f"{KERNEL_VERSION}+array-api"
        assert kernel_cache_tag("numba", version=9) == "9+numba"

    def test_env_var_selects_the_tag_backend(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "array-api")
        assert kernel_cache_tag() == f"{KERNEL_VERSION}+array-api"

    def test_parse_kernel_tag(self):
        assert parse_kernel_tag(3) == ("3", "numpy")
        assert parse_kernel_tag("3") == ("3", "numpy")
        assert parse_kernel_tag("3+numba") == ("3", "numba")
        assert parse_kernel_tag("v-next+array-api") == ("v-next", "array-api")
