"""Property-based tests for the completion-time model (Eqs. 2-5).

The invariants checked here hold for *any* execution-time PMF, predecessor
completion-time PMF and deadline:

* all three regimes conserve probability mass;
* the evict regime never leaves "task ran" mass after the deadline;
* the no-drop completion stochastically dominates the drop-aware ones before
  the deadline (dropping can only free the machine earlier);
* the success probability is the same under pending and evict dropping and
  never exceeds the no-drop success probability... (it equals it below, since
  a task that would be dropped while pending could never have met its
  deadline anyway).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.completion import (
    DroppingPolicy,
    pct_evict_drop,
    pct_no_drop,
    pct_pending_drop,
)
from repro.core.pmf import DiscretePMF
from repro.core.robustness import success_probability


@st.composite
def pmfs(draw, min_time: int = 1, max_time: int = 30, max_impulses: int = 5):
    n = draw(st.integers(min_value=1, max_value=max_impulses))
    times = draw(
        st.lists(
            st.integers(min_value=min_time, max_value=max_time),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    weights = draw(st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=n, max_size=n))
    total = sum(weights)
    return DiscretePMF.from_impulses({t: w / total for t, w in zip(times, weights)})


deadlines = st.integers(min_value=1, max_value=70)


@given(pmfs(), pmfs(), deadlines)
@settings(max_examples=80, deadline=None)
def test_all_regimes_conserve_mass(pet, prev, deadline):
    for result in (
        pct_no_drop(pet, prev),
        pct_pending_drop(pet, prev, deadline),
        pct_evict_drop(pet, prev, deadline),
    ):
        np.testing.assert_allclose(result.total_mass(), 1.0, rtol=1e-9)


@given(pmfs(), pmfs(), deadlines)
@settings(max_examples=80, deadline=None)
def test_evict_regime_bounds_ran_branch_by_deadline(pet, prev, deadline):
    result = pct_evict_drop(pet, prev, deadline)
    # Any mass after the deadline can only be predecessor pass-through (the
    # task was dropped while pending); it is bounded by the predecessor's
    # mass at or after the deadline.
    late_mass = result.mass_from(deadline + 1)
    assert late_mass <= prev.mass_from(deadline) + 1e-9


@given(pmfs(), pmfs(), deadlines)
@settings(max_examples=80, deadline=None)
def test_dropping_never_delays_machine_availability(pet, prev, deadline):
    """The drop-aware availability CDF dominates the no-drop CDF: dropping a
    task can only make the machine free earlier, never later."""
    no_drop = pct_no_drop(pet, prev)
    pending = pct_pending_drop(pet, prev, deadline)
    evict = pct_evict_drop(pet, prev, deadline)
    lo = min(no_drop.support()[0], pending.support()[0], evict.support()[0])
    hi = max(no_drop.support()[1], pending.support()[1], evict.support()[1])
    for t in range(lo, hi + 1):
        assert pending.cdf(t) >= no_drop.cdf(t) - 1e-9
        assert evict.cdf(t) >= pending.cdf(t) - 1e-9


@given(pmfs(), pmfs(), deadlines)
@settings(max_examples=80, deadline=None)
def test_success_probability_identical_under_pending_and_evict(pet, prev, deadline):
    pending = success_probability(pet, prev, deadline, DroppingPolicy.PENDING)
    evict = success_probability(pet, prev, deadline, DroppingPolicy.EVICT)
    np.testing.assert_allclose(pending, evict, rtol=1e-12, atol=1e-12)


@given(pmfs(), pmfs(), deadlines)
@settings(max_examples=80, deadline=None)
def test_success_probability_matches_no_drop_convolution_truncated(pet, prev, deadline):
    """A task meets its deadline iff the plain convolution lands at or before
    the deadline AND the predecessor freed the machine before the deadline.
    Since execution takes at least one time unit, the two events coincide, so
    the drop-aware success probability equals Eq. 1 on the plain convolution."""
    with_drop = success_probability(pet, prev, deadline, DroppingPolicy.PENDING)
    plain = success_probability(pet, prev, deadline, DroppingPolicy.NONE)
    np.testing.assert_allclose(with_drop, plain, rtol=1e-12, atol=1e-12)


@given(pmfs(), pmfs(), deadlines)
@settings(max_examples=60, deadline=None)
def test_success_probability_bounded_by_unconditional_cdf(pet, prev, deadline):
    prob = success_probability(pet, prev, deadline, DroppingPolicy.EVICT)
    assert 0.0 <= prob <= 1.0
    assert prob <= pet.convolve(prev).cdf(deadline) + 1e-9
