"""Edge cases of the scalar PMF algebra that the batch engine must honour.

The batched kernels of :mod:`repro.core.batch` treat the scalar
:class:`DiscretePMF` behaviour as the specification.  This module pins down
the corners that padding and batching make easy to get wrong: zero-mass
(empty-support) PMFs, single-atom PMFs, convolutions of operands with
misaligned (including negative) offsets, and probability-mass conservation
under the truncation/collapse operators of Eqs. 3-5.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.pmf import DiscretePMF


class TestEmptySupport:
    """A zero-mass PMF is the absorbing element of the algebra."""

    def test_zero_pmf_properties(self):
        zero = DiscretePMF.zero()
        assert zero.is_zero()
        assert zero.total_mass() == 0.0
        assert math.isnan(zero.mean())
        assert zero.support() == (0, 0)

    def test_convolve_with_zero_is_zero(self, simple_pmf):
        assert simple_pmf.convolve(DiscretePMF.zero()).is_zero()
        assert DiscretePMF.zero().convolve(simple_pmf).is_zero()
        assert simple_pmf.convolve_with(DiscretePMF.zero()).is_zero()
        assert DiscretePMF.zero().convolve_with(simple_pmf).is_zero()

    def test_zero_convolution_keeps_summed_offset(self, simple_pmf):
        out = simple_pmf.convolve(DiscretePMF.zero().shift(5))
        assert out.is_zero()
        assert out.offset == simple_pmf.offset + 5

    def test_truncations_of_zero_stay_zero(self):
        zero = DiscretePMF.zero()
        assert zero.truncate_before(10).is_zero()
        assert zero.truncate_from(-10).is_zero()
        assert zero.collapse_tail_to(3).is_zero()

    def test_normalise_and_sample_reject_zero(self):
        zero = DiscretePMF.zero()
        with pytest.raises(ValueError):
            zero.normalise()
        with pytest.raises(ValueError):
            zero.sample(np.random.default_rng(0))


class TestSingleAtom:
    """Point masses: the availability PMF of an idle machine."""

    def test_point_convolution_is_translation(self, simple_pmf):
        shifted = simple_pmf.convolve(DiscretePMF.point(10))
        assert shifted.allclose(simple_pmf.shift(10), atol=0)

    def test_point_times_point(self):
        out = DiscretePMF.point(4).convolve(DiscretePMF.point(-7))
        assert out.support() == (-3, -3)
        assert out.probability_at(-3) == 1.0

    def test_sub_normalised_point_scales_mass(self, simple_pmf):
        out = simple_pmf.convolve(DiscretePMF.point(0, mass=0.5))
        assert out.total_mass() == pytest.approx(0.5 * simple_pmf.total_mass())

    def test_point_moments(self):
        point = DiscretePMF.point(42)
        assert point.mean() == 42.0
        assert point.variance() == 0.0
        assert point.skewness() == 0.0


class TestMisalignedConvolution:
    """Operands whose supports start at wildly different (even negative) times."""

    @pytest.mark.parametrize("shift_a, shift_b", [(0, 0), (-15, 4), (100, -100), (7, 1000)])
    def test_offsets_add_and_values_match_brute_force(self, shift_a, shift_b):
        a = DiscretePMF.from_impulses({0: 0.25, 1: 0.5, 4: 0.25}).shift(shift_a)
        b = DiscretePMF.from_impulses({0: 0.125, 2: 0.375, 3: 0.5}).shift(shift_b)
        out = a.convolve(b)
        assert out.offset == a.offset + b.offset
        brute: dict[int, float] = {}
        for ta, pa in a.to_impulses().items():
            for tb, pb in b.to_impulses().items():
                brute[ta + tb] = brute.get(ta + tb, 0.0) + pa * pb
        for t, p in brute.items():
            assert out.probability_at(t) == pytest.approx(p, abs=1e-15)
        assert out.total_mass() == pytest.approx(a.total_mass() * b.total_mass())

    def test_convolve_orderings_agree(self):
        a = DiscretePMF.from_impulses({-3: 0.5, 9: 0.5})
        b = DiscretePMF.from_impulses({1: 0.2, 2: 0.3, 6: 0.5})
        assert a.convolve(b).allclose(b.convolve(a), atol=1e-15)
        assert a.convolve_with(b).allclose(b.convolve_with(a), atol=1e-15)


class TestTruncationMassConservation:
    """Eqs. 3-5 split mass; nothing may leak and nothing may be invented."""

    @pytest.fixture
    def lumpy(self) -> DiscretePMF:
        return DiscretePMF.from_impulses(
            {2: 0.125, 3: 0.25, 7: 0.125, 11: 0.25, 12: 0.125, 20: 0.125}
        )

    @pytest.mark.parametrize("cut", [-5, 2, 3, 8, 12, 20, 21, 50])
    def test_truncations_partition_total_mass(self, lumpy, cut):
        before = lumpy.truncate_before(cut).total_mass()
        after = lumpy.truncate_from(cut).total_mass()
        assert before + after == pytest.approx(lumpy.total_mass(), abs=1e-15)

    @pytest.mark.parametrize("cut", [-5, 2, 8, 12, 20, 21, 50])
    def test_collapse_tail_conserves_mass(self, lumpy, cut):
        collapsed = lumpy.collapse_tail_to(cut)
        assert collapsed.total_mass() == pytest.approx(lumpy.total_mass(), abs=1e-15)
        assert collapsed.max_time <= max(cut, lumpy.max_time)
        # Mass strictly before the cut is untouched, bit for bit.
        for t in range(lumpy.min_time, cut):
            assert collapsed.probability_at(t) == lumpy.probability_at(t)

    def test_truncate_before_then_from_are_disjoint(self, lumpy):
        head = lumpy.truncate_before(11)
        tail = lumpy.truncate_from(11)
        assert head.max_time < 11 or head.is_zero()
        assert tail.min_time >= 11 or tail.is_zero()
        merged = head.add(tail)
        assert merged.allclose(lumpy, atol=0)

    def test_aggregate_preserves_mass_under_truncation_interplay(self, lumpy):
        truncated = lumpy.truncate_before(13)
        aggregated = truncated.aggregate(2)
        assert aggregated.total_mass() == pytest.approx(truncated.total_mass(), abs=1e-15)
        assert np.count_nonzero(aggregated.probs) <= 2
