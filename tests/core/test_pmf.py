"""Unit tests for the discrete PMF algebra."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as sp_stats

from repro.core.pmf import MASS_TOLERANCE, DiscretePMF


class TestConstruction:
    def test_point_mass(self):
        pmf = DiscretePMF.point(7)
        assert pmf.probability_at(7) == 1.0
        assert pmf.total_mass() == pytest.approx(1.0)
        assert pmf.support() == (7, 7)

    def test_point_mass_with_partial_mass(self):
        pmf = DiscretePMF.point(3, mass=0.25)
        assert pmf.total_mass() == pytest.approx(0.25)

    def test_zero_pmf(self):
        pmf = DiscretePMF.zero()
        assert pmf.is_zero()
        assert pmf.total_mass() == 0.0

    def test_from_impulses_basic(self):
        pmf = DiscretePMF.from_impulses({2: 0.5, 5: 0.5})
        assert pmf.offset == 2
        assert pmf.probability_at(2) == 0.5
        assert pmf.probability_at(3) == 0.0
        assert pmf.probability_at(5) == 0.5

    def test_from_impulses_duplicate_times_accumulate(self):
        pmf = DiscretePMF.from_impulses([(4, 0.25), (4, 0.25), (6, 0.5)])
        assert pmf.probability_at(4) == pytest.approx(0.5)

    def test_from_impulses_empty_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF.from_impulses({})

    def test_from_impulses_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF.from_impulses({1: -0.5, 2: 1.5})

    def test_from_samples_histogram(self):
        samples = [5, 5, 5, 7, 7, 9]
        pmf = DiscretePMF.from_samples(samples)
        assert pmf.probability_at(5) == pytest.approx(0.5)
        assert pmf.probability_at(7) == pytest.approx(1 / 3)
        assert pmf.probability_at(9) == pytest.approx(1 / 6)
        assert pmf.is_normalised()

    def test_from_samples_respects_min_time(self):
        pmf = DiscretePMF.from_samples([0.1, 0.2, 0.4])
        assert pmf.support()[0] >= 1

    def test_from_samples_bin_width(self):
        pmf = DiscretePMF.from_samples([10, 11, 12, 13, 14], bin_width=5)
        # all samples collapse onto the 10 and 15 grid points
        assert set(pmf.to_impulses()) <= {10, 15}
        assert pmf.is_normalised()

    def test_from_samples_empty_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF.from_samples([])

    def test_from_scipy_distribution(self, rng):
        pmf = DiscretePMF.from_scipy(sp_stats.gamma(a=4, scale=10), n_samples=300, rng=rng)
        assert pmf.is_normalised()
        assert 20 < pmf.mean() < 70

    def test_negative_probabilities_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF(np.array([0.5, -0.1, 0.6]), offset=0)

    def test_super_unit_mass_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF(np.array([0.9, 0.9]), offset=0)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF(np.array([0.5, np.nan]), offset=0)

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF(np.ones((2, 2)) * 0.1, offset=0)


class TestQueries:
    def test_cdf_interior_and_boundaries(self, simple_pmf):
        assert simple_pmf.cdf(0) == 0.0
        assert simple_pmf.cdf(1) == pytest.approx(0.25)
        assert simple_pmf.cdf(2) == pytest.approx(0.75)
        assert simple_pmf.cdf(3) == pytest.approx(1.0)
        assert simple_pmf.cdf(100) == pytest.approx(1.0)

    def test_sf_complements_cdf(self, simple_pmf):
        for t in range(0, 5):
            assert simple_pmf.sf(t) == pytest.approx(simple_pmf.total_mass() - simple_pmf.cdf(t))

    def test_mass_before_is_strict(self, simple_pmf):
        assert simple_pmf.mass_before(2) == pytest.approx(0.25)
        assert simple_pmf.cdf(2) == pytest.approx(0.75)

    def test_mass_from(self, simple_pmf):
        assert simple_pmf.mass_from(2) == pytest.approx(0.75)
        assert simple_pmf.mass_from(4) == pytest.approx(0.0)

    def test_support_ignores_zero_padding(self):
        pmf = DiscretePMF(np.array([0.0, 0.5, 0.0, 0.5, 0.0]), offset=10)
        assert pmf.support() == (11, 13)

    def test_times_alignment(self):
        pmf = DiscretePMF(np.array([0.5, 0.5]), offset=4)
        assert pmf.times.tolist() == [4, 5]

    def test_probability_at_outside_range(self, simple_pmf):
        assert simple_pmf.probability_at(-1) == 0.0
        assert simple_pmf.probability_at(99) == 0.0

    def test_is_normalised(self, simple_pmf):
        assert simple_pmf.is_normalised()
        assert not simple_pmf.scale_mass(0.5).is_normalised()


class TestMoments:
    def test_mean_of_symmetric_pmf(self, simple_pmf):
        assert simple_pmf.mean() == pytest.approx(2.0)

    def test_mean_of_point(self):
        assert DiscretePMF.point(9).mean() == pytest.approx(9.0)

    def test_variance_and_std(self, simple_pmf):
        assert simple_pmf.variance() == pytest.approx(0.5)
        assert simple_pmf.std() == pytest.approx(np.sqrt(0.5))

    def test_zero_mass_moments_are_nan(self):
        z = DiscretePMF.zero()
        assert np.isnan(z.mean())
        assert np.isnan(z.variance())

    def test_skewness_zero_for_symmetric(self, simple_pmf):
        assert simple_pmf.skewness() == pytest.approx(0.0, abs=1e-12)

    def test_skewness_sign_right_tail(self):
        right = DiscretePMF.from_impulses({1: 0.6, 2: 0.25, 10: 0.15})
        assert right.skewness() > 0

    def test_skewness_sign_left_tail(self):
        left = DiscretePMF.from_impulses({1: 0.15, 9: 0.25, 10: 0.6})
        assert left.skewness() < 0

    def test_bounded_skewness_clipped(self):
        highly_skewed = DiscretePMF.from_impulses({1: 0.95, 100: 0.05})
        assert highly_skewed.skewness() > 1.0
        assert highly_skewed.bounded_skewness() == pytest.approx(1.0)

    def test_skewness_of_degenerate_is_zero(self):
        assert DiscretePMF.point(5).skewness() == 0.0
        assert DiscretePMF.zero().skewness() == 0.0

    def test_expected_value_alias(self, simple_pmf):
        assert simple_pmf.expected_value() == simple_pmf.mean()

    def test_mean_is_cached_and_consistent(self, simple_pmf):
        first = simple_pmf.mean()
        second = simple_pmf.mean()
        assert first == second


class TestTransformations:
    def test_shift_moves_support_and_preserves_shape(self, simple_pmf):
        shifted = simple_pmf.shift(10)
        assert shifted.support() == (11, 13)
        assert shifted.mean() == pytest.approx(simple_pmf.mean() + 10)
        assert shifted.total_mass() == pytest.approx(1.0)

    def test_shift_negative(self, simple_pmf):
        assert simple_pmf.shift(-1).support() == (0, 2)

    def test_normalise_restores_unit_mass(self, simple_pmf):
        half = simple_pmf.scale_mass(0.5)
        assert half.normalise().total_mass() == pytest.approx(1.0)

    def test_normalise_zero_mass_raises(self):
        with pytest.raises(ValueError):
            DiscretePMF.zero().normalise()

    def test_scale_mass_bounds(self, simple_pmf):
        with pytest.raises(ValueError):
            simple_pmf.scale_mass(1.5)
        with pytest.raises(ValueError):
            simple_pmf.scale_mass(-0.1)

    def test_compact_strips_zeros(self):
        pmf = DiscretePMF(np.array([0.0, 0.0, 0.4, 0.6, 0.0]), offset=5)
        compacted = pmf.compact()
        assert compacted.offset == 7
        assert compacted.probs.size == 2

    def test_compact_of_zero_pmf(self):
        assert DiscretePMF.zero().compact().is_zero()

    def test_convolve_matches_numpy(self, simple_pmf, fig2_prev_pct):
        ours = simple_pmf.convolve(fig2_prev_pct)
        dense = np.convolve(simple_pmf.probs, fig2_prev_pct.probs)
        assert np.allclose(ours.probs, dense)
        assert ours.offset == simple_pmf.offset + fig2_prev_pct.offset

    def test_convolve_paper_figure2_example(self, simple_pmf, fig2_prev_pct):
        """The exact impulses shown in Figure 2 of the paper."""
        result = simple_pmf.convolve(fig2_prev_pct)
        expected = {4: 0.125, 5: 0.3125, 6: 0.3125, 7: 0.1875, 8: 0.0625}
        for t, p in expected.items():
            assert result.probability_at(t) == pytest.approx(p)

    def test_convolve_with_point_is_shift(self, simple_pmf):
        shifted = simple_pmf.convolve(DiscretePMF.point(10))
        assert shifted.allclose(simple_pmf.shift(10))

    def test_convolve_commutative(self, simple_pmf, fig2_prev_pct):
        ab = simple_pmf.convolve(fig2_prev_pct)
        ba = fig2_prev_pct.convolve(simple_pmf)
        assert ab.allclose(ba)

    def test_convolve_mean_additive(self, simple_pmf, fig2_prev_pct):
        conv = simple_pmf.convolve(fig2_prev_pct)
        assert conv.mean() == pytest.approx(simple_pmf.mean() + fig2_prev_pct.mean())

    def test_convolve_zero_gives_zero(self, simple_pmf):
        assert simple_pmf.convolve(DiscretePMF.zero()).is_zero()

    def test_convolve_dense_with_sparse_matches_dense_path(self, rng):
        dense = DiscretePMF.from_samples(rng.gamma(4, 20, size=400))
        sparse = DiscretePMF.from_impulses({10: 0.5, 300: 0.5})
        expected = np.convolve(dense.probs, sparse.probs)
        result = dense.convolve(sparse)
        assert np.allclose(result.probs, expected)

    def test_truncate_before(self, simple_pmf):
        truncated = simple_pmf.truncate_before(2)
        assert truncated.probability_at(1) == pytest.approx(0.25)
        assert truncated.probability_at(2) == 0.0
        assert truncated.total_mass() == pytest.approx(0.25)

    def test_truncate_before_everything(self, simple_pmf):
        assert simple_pmf.truncate_before(1).is_zero()

    def test_truncate_before_nothing(self, simple_pmf):
        assert simple_pmf.truncate_before(100).allclose(simple_pmf)

    def test_truncate_from(self, simple_pmf):
        truncated = simple_pmf.truncate_from(2)
        assert truncated.probability_at(1) == 0.0
        assert truncated.total_mass() == pytest.approx(0.75)

    def test_truncate_partition(self, simple_pmf):
        for cut in range(0, 6):
            before = simple_pmf.truncate_before(cut).total_mass()
            after = simple_pmf.truncate_from(cut).total_mass()
            assert before + after == pytest.approx(simple_pmf.total_mass())

    def test_collapse_tail_to_preserves_mass(self, simple_pmf):
        collapsed = simple_pmf.collapse_tail_to(2)
        assert collapsed.total_mass() == pytest.approx(1.0)
        assert collapsed.probability_at(2) == pytest.approx(0.75)
        assert collapsed.max_time == 2

    def test_collapse_tail_before_support(self, simple_pmf):
        collapsed = simple_pmf.collapse_tail_to(0)
        assert collapsed.probability_at(0) == pytest.approx(1.0)

    def test_collapse_tail_after_support_is_identity(self, simple_pmf):
        assert simple_pmf.collapse_tail_to(50).allclose(simple_pmf)

    def test_add_merges_mass(self):
        a = DiscretePMF.from_impulses({1: 0.25, 2: 0.25})
        b = DiscretePMF.from_impulses({2: 0.25, 5: 0.25})
        merged = a.add(b)
        assert merged.probability_at(2) == pytest.approx(0.5)
        assert merged.total_mass() == pytest.approx(1.0)

    def test_aggregate_reduces_impulses_and_preserves_mass(self, rng):
        pmf = DiscretePMF.from_samples(rng.gamma(2, 50, size=500))
        aggregated = pmf.aggregate(8)
        assert np.count_nonzero(aggregated.probs) <= 8
        assert aggregated.total_mass() == pytest.approx(pmf.total_mass())
        assert aggregated.mean() == pytest.approx(pmf.mean(), rel=0.05)

    def test_aggregate_noop_when_small(self, simple_pmf):
        assert simple_pmf.aggregate(10).allclose(simple_pmf)

    def test_aggregate_invalid(self, simple_pmf):
        with pytest.raises(ValueError):
            simple_pmf.aggregate(0)


class TestSamplingAndComparison:
    def test_sample_values_lie_in_support(self, simple_pmf, rng):
        draws = simple_pmf.sample(rng, size=200)
        assert set(np.unique(draws)).issubset({1, 2, 3})

    def test_sample_single_value(self, simple_pmf, rng):
        value = simple_pmf.sample(rng)
        assert value in (1, 2, 3)

    def test_sample_distribution_roughly_matches(self, simple_pmf, rng):
        draws = simple_pmf.sample(rng, size=5000)
        frac_two = np.mean(draws == 2)
        assert 0.42 < frac_two < 0.58

    def test_sample_zero_mass_raises(self, rng):
        with pytest.raises(ValueError):
            DiscretePMF.zero().sample(rng)

    def test_allclose_with_different_padding(self):
        a = DiscretePMF(np.array([0.0, 0.5, 0.5, 0.0]), offset=0)
        b = DiscretePMF(np.array([0.5, 0.5]), offset=1)
        assert a.allclose(b)

    def test_allclose_detects_difference(self, simple_pmf):
        other = DiscretePMF.from_impulses({1: 0.2, 2: 0.5, 3: 0.3})
        assert not simple_pmf.allclose(other)

    def test_to_impulses_round_trip(self, simple_pmf):
        rebuilt = DiscretePMF.from_impulses(simple_pmf.to_impulses())
        assert rebuilt.allclose(simple_pmf)

    def test_mass_tolerance_exported(self):
        assert 0 < MASS_TOLERANCE < 1e-6
