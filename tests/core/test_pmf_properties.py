"""Property-based tests (hypothesis) for the PMF algebra invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pmf import DiscretePMF


@st.composite
def pmfs(draw, max_impulses: int = 8, max_time: int = 60):
    """Random proper (unit-mass) PMFs with a handful of impulses."""
    n = draw(st.integers(min_value=1, max_value=max_impulses))
    times = draw(
        st.lists(st.integers(min_value=0, max_value=max_time), min_size=n, max_size=n, unique=True)
    )
    weights = draw(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=n, max_size=n)
    )
    total = sum(weights)
    return DiscretePMF.from_impulses({t: w / total for t, w in zip(times, weights)})


@given(pmfs(), pmfs())
@settings(max_examples=60, deadline=None)
def test_convolution_preserves_total_mass(a, b):
    np.testing.assert_allclose(
        a.convolve(b).total_mass(), a.total_mass() * b.total_mass(), rtol=1e-9
    )


@given(pmfs(), pmfs())
@settings(max_examples=60, deadline=None)
def test_convolution_mean_is_additive(a, b):
    conv = a.convolve(b)
    np.testing.assert_allclose(conv.mean(), a.mean() + b.mean(), rtol=1e-9, atol=1e-9)


@given(pmfs(), pmfs())
@settings(max_examples=40, deadline=None)
def test_convolution_is_commutative(a, b):
    assert a.convolve(b).allclose(b.convolve(a))

@given(pmfs(), st.integers(min_value=-50, max_value=50))
@settings(max_examples=60, deadline=None)
def test_shift_preserves_mass_and_moves_mean(pmf, delta):
    shifted = pmf.shift(delta)
    np.testing.assert_allclose(shifted.total_mass(), pmf.total_mass(), rtol=1e-12)
    np.testing.assert_allclose(shifted.mean(), pmf.mean() + delta, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(shifted.variance(), pmf.variance(), rtol=1e-9, atol=1e-9)


@given(pmfs())
@settings(max_examples=60, deadline=None)
def test_cdf_is_monotone_and_reaches_total_mass(pmf):
    lo, hi = pmf.support()
    previous = 0.0
    for t in range(lo - 1, hi + 2):
        current = pmf.cdf(t)
        assert current + 1e-12 >= previous
        previous = current
    np.testing.assert_allclose(pmf.cdf(hi), pmf.total_mass(), rtol=1e-12)


@given(pmfs(), st.integers(min_value=0, max_value=70))
@settings(max_examples=60, deadline=None)
def test_truncation_partitions_mass(pmf, cut):
    before = pmf.truncate_before(cut).total_mass()
    after = pmf.truncate_from(cut).total_mass()
    np.testing.assert_allclose(before + after, pmf.total_mass(), rtol=1e-12)


@given(pmfs(), st.integers(min_value=0, max_value=70))
@settings(max_examples=60, deadline=None)
def test_collapse_tail_preserves_mass_and_bounds_support(pmf, deadline):
    collapsed = pmf.collapse_tail_to(deadline)
    np.testing.assert_allclose(collapsed.total_mass(), pmf.total_mass(), rtol=1e-12)
    assert collapsed.support()[1] <= max(deadline, pmf.support()[1])
    # nothing remains strictly after the deadline unless it was already below it
    if pmf.mass_from(deadline) > 0:
        assert collapsed.support()[1] <= deadline


@given(pmfs(), st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_aggregate_preserves_mass_and_respects_cap(pmf, cap):
    aggregated = pmf.aggregate(cap)
    np.testing.assert_allclose(aggregated.total_mass(), pmf.total_mass(), rtol=1e-12)
    assert np.count_nonzero(aggregated.probs) <= cap
    lo, hi = pmf.support()
    alo, ahi = aggregated.support()
    assert lo <= alo <= ahi <= hi


@given(pmfs())
@settings(max_examples=60, deadline=None)
def test_bounded_skewness_is_bounded(pmf):
    assert -1.0 <= pmf.bounded_skewness() <= 1.0


@given(pmfs())
@settings(max_examples=40, deadline=None)
def test_impulse_round_trip(pmf):
    assert DiscretePMF.from_impulses(pmf.to_impulses()).allclose(pmf)
