"""Exact-equivalence gate: batched kernels vs the scalar PMF API.

Every comparison in this module is **zero tolerance** (``atol=0`` /
bit-for-bit ``==``): the batched engine must produce exactly the floats the
scalar path produces, no matter how PMFs are grouped into batches or how
much padding the shared grid introduces.  These tests are the contract
documented in :mod:`repro.core.batch`; do not loosen them to "close enough".
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.batch import (
    PMFBatch,
    batched_convolve,
    batched_convolve_ragged,
    batched_expected_completion,
    batched_shift,
    batched_success_probability,
    sequential_sum,
)
from repro.core.completion import DroppingPolicy, batched_completion_step, completion_pmf
from repro.core.pmf import DiscretePMF
from repro.heuristics.scoring import expected_completion, fast_success_probability


def dense_values(pmf: DiscretePMF, lo: int, hi: int) -> np.ndarray:
    """Probability of every time in [lo, hi] as a dense vector."""
    out = np.zeros(hi - lo + 1, dtype=np.float64)
    start = pmf.offset - lo
    out[start : start + pmf.probs.size] = pmf.probs
    return out


def assert_same_pmf_bits(a: DiscretePMF, b: DiscretePMF) -> None:
    """Both PMFs place bit-identical mass at every time."""
    lo = min(a.offset, b.offset)
    hi = max(a.max_time, b.max_time)
    va, vb = dense_values(a, lo, hi), dense_values(b, lo, hi)
    assert np.array_equal(va, vb), f"max abs diff {np.abs(va - vb).max()}"


@pytest.fixture
def mixed_pmfs(rng) -> list[DiscretePMF]:
    """A deliberately awkward batch: misaligned offsets, negative times,
    sub-normalised mass, a point mass, a zero row and a wide histogram."""
    wide = DiscretePMF.from_samples(rng.gamma(2.0, 40.0, size=400))
    return [
        DiscretePMF.from_impulses({1: 0.25, 2: 0.50, 3: 0.25}),
        DiscretePMF.from_impulses({-4: 0.125, 10: 0.5, 11: 0.25}),
        DiscretePMF.point(7),
        DiscretePMF.point(3, mass=0.375),
        DiscretePMF.zero(),
        wide,
        wide.shift(100).aggregate(16),
    ]


@pytest.fixture
def kernels(rng) -> list[DiscretePMF]:
    return [
        DiscretePMF.from_impulses({0: 0.5, 5: 0.5}),
        DiscretePMF.from_impulses({-3: 0.2, -1: 0.3, 4: 0.5}),
        DiscretePMF.point(12),
        DiscretePMF.zero(),
        DiscretePMF.from_samples(rng.gamma(3.0, 15.0, size=200)),
    ]


class TestSequentialSum:
    def test_matches_python_accumulation(self, rng):
        values = rng.random((5, 37))
        expected = np.zeros(5)
        for row in range(5):
            acc = 0.0
            for value in values[row]:
                acc = acc + value
            expected[row] = acc
        assert np.array_equal(sequential_sum(values), expected)

    def test_zero_padding_is_a_bitwise_noop(self, rng):
        values = rng.random(51)
        padded = np.concatenate([np.zeros(7), values, np.zeros(13)])
        interleaved = np.zeros(102)
        interleaved[::2] = values
        reference = sequential_sum(values[None, :])[0]
        assert sequential_sum(padded[None, :])[0] == reference
        assert sequential_sum(interleaved[None, :])[0] == reference

    def test_empty_axis(self):
        assert sequential_sum(np.zeros((3, 0))).tolist() == [0.0, 0.0, 0.0]


class TestBatchConstruction:
    def test_round_trip_preserves_bits(self, mixed_pmfs):
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        assert batch.probs.shape[0] == len(mixed_pmfs)
        for i, pmf in enumerate(mixed_pmfs):
            assert_same_pmf_bits(batch.row(i), pmf)

    def test_total_mass_bit_identical(self, mixed_pmfs):
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        masses = batch.total_mass()
        for i, pmf in enumerate(mixed_pmfs):
            assert masses[i] == pmf.total_mass()

    def test_means_bit_identical_including_nan(self, mixed_pmfs):
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        means = batch.means()
        for i, pmf in enumerate(mixed_pmfs):
            scalar = pmf.mean()
            if math.isnan(scalar):
                assert math.isnan(means[i])
            else:
                assert means[i] == scalar


class TestBatchedShift:
    def test_scalar_shift_bit_identical(self, mixed_pmfs):
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        shifted = batched_shift(batch, -9)
        for i, pmf in enumerate(mixed_pmfs):
            assert_same_pmf_bits(shifted.row(i), pmf.shift(-9))

    def test_per_row_shift_bit_identical(self, mixed_pmfs):
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        deltas = np.array([3, -2, 0, 17, 5, -11, 4][: len(mixed_pmfs)])
        shifted = batched_shift(batch, deltas)
        for i, pmf in enumerate(mixed_pmfs):
            assert_same_pmf_bits(shifted.row(i), pmf.shift(int(deltas[i])))

    def test_bad_delta_shape_raises(self, mixed_pmfs):
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        with pytest.raises(ValueError):
            batched_shift(batch, np.array([1, 2]))


class TestBatchedConvolve:
    def test_bit_identical_to_scalar_convolve_with(self, mixed_pmfs, kernels):
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        for kernel in kernels:
            out = batched_convolve(batch, kernel)
            for i, pmf in enumerate(mixed_pmfs):
                assert_same_pmf_bits(out.row(i), pmf.convolve_with(kernel))

    def test_matches_adaptive_convolve_when_kernel_is_sparse(self, mixed_pmfs):
        kernel = DiscretePMF.from_impulses({2: 0.5, 9: 0.5})
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        out = batched_convolve(batch, kernel)
        for i, pmf in enumerate(mixed_pmfs):
            if np.count_nonzero(kernel.probs) <= np.count_nonzero(pmf.probs):
                assert_same_pmf_bits(out.row(i), pmf.convolve(kernel))

    def test_convolve_with_matches_dense_convolution_values(self, rng):
        # Semantics (not bits): shift-and-add equals the brute-force sum.
        a = DiscretePMF.from_samples(rng.gamma(2.0, 10.0, size=100))
        b = DiscretePMF.from_samples(rng.gamma(3.0, 5.0, size=100)).shift(-3)
        fast = a.convolve_with(b)
        brute = np.convolve(a.probs, b.probs)
        assert np.allclose(dense_values(fast, fast.offset, fast.max_time), brute, atol=1e-15)

    def test_zero_kernel_gives_zero_batch(self, mixed_pmfs):
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        out = batched_convolve(batch, DiscretePMF.zero())
        assert np.array_equal(out.probs, np.zeros_like(out.probs))


class TestBatchedConvolveRagged:
    def test_bit_identical_to_per_row_convolve_with(self, mixed_pmfs, kernels, rng):
        """Every row convolves with its own kernel; ascending-impulse
        accumulation and exact-zero padding keep each row bit-identical to
        the scalar shift-and-add, however rows are grouped."""
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        row_kernels = [kernels[i % len(kernels)] for i in range(batch.n_pmfs)]
        out = batched_convolve_ragged(batch, row_kernels)
        for i, (pmf, kernel) in enumerate(zip(mixed_pmfs, row_kernels)):
            scalar = batch.row(i).convolve_with(kernel).compact()
            got = out.row(i).compact()
            if scalar.is_zero():
                assert got.is_zero()
            else:
                assert_same_pmf_bits(got, scalar)

    def test_kernel_count_must_match_rows(self, mixed_pmfs, kernels):
        batch = PMFBatch.from_pmfs(mixed_pmfs)
        with pytest.raises(ValueError):
            batched_convolve_ragged(batch, kernels[:2])

    def test_grouping_invariance(self, mixed_pmfs, kernels):
        """A row's result does not depend on which other rows share the call."""
        full = batched_convolve_ragged(
            PMFBatch.from_pmfs(mixed_pmfs[:3]), kernels[:3]
        )
        for i in range(3):
            alone = batched_convolve_ragged(
                PMFBatch.from_pmfs([mixed_pmfs[i]]), [kernels[i]]
            )
            assert_same_pmf_bits(full.row(i).compact(), alone.row(0).compact())


class TestBatchedCompletionStep:
    @pytest.mark.parametrize("policy", list(DroppingPolicy))
    @pytest.mark.parametrize("max_impulses", [None, 16])
    def test_bit_identical_to_scalar_chain_step(self, rng, policy, max_impulses):
        """One lockstep chain advance equals the scalar step per row, bits
        and offsets included — the contract ``SystemState.rebuild`` relies
        on."""
        pets = [
            DiscretePMF.from_samples(rng.gamma(2.0, 30.0, size=200)) for _ in range(6)
        ]
        prevs = [
            DiscretePMF.point(40),
            DiscretePMF.from_samples(rng.gamma(2.0, 50.0, size=300)).aggregate(32),
            DiscretePMF.from_impulses({55: 0.25, 80: 0.5, 130: 0.125}),
            DiscretePMF.zero(),
            DiscretePMF.from_samples(rng.gamma(3.0, 20.0, size=300)),  # dense prev
            DiscretePMF.point(500),  # entirely past the deadline
        ]
        deadlines = [120, 160, 90, 100, 140, 130]
        stepped = batched_completion_step(
            pets, prevs, deadlines, policy, max_impulses=max_impulses
        )
        for got, pet, prev, deadline in zip(stepped, pets, prevs, deadlines):
            want = completion_pmf(pet, prev, deadline, policy)
            if max_impulses is not None:
                want = want.aggregate(max_impulses)
            assert got.offset == want.offset
            assert np.array_equal(got.probs, want.probs)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            batched_completion_step(
                [DiscretePMF.point(1)], [DiscretePMF.point(0)], [5, 6]
            )


class TestBatchedSuccessProbability:
    def test_grid_bit_identical_to_scalar_double_loop(self, small_gamma_pet):
        rng = np.random.default_rng(5)
        machines = list(range(small_gamma_pet.num_machines))
        availabilities = [
            DiscretePMF.from_samples(rng.gamma(2.0, 30.0, size=300)).shift(20 * j).aggregate(32)
            for j in machines
        ]
        types = rng.integers(0, small_gamma_pet.num_task_types, size=25)
        deadlines = rng.integers(10, 400, size=25)
        grid = batched_success_probability(
            PMFBatch.from_pmfs(availabilities),
            small_gamma_pet.cdf_table(),
            types,
            deadlines,
        )
        for i in range(types.size):
            for j in machines:
                scalar = fast_success_probability(
                    small_gamma_pet.get(int(types[i]), j),
                    availabilities[j],
                    int(deadlines[i]),
                )
                assert grid[i, j] == scalar, (i, j)

    def test_batch_composition_cannot_perturb_a_pair(self, small_gamma_pet):
        """The same (task, machine) pair scores bit-identically whether its
        availability is batched alone or padded against a far-away partner."""
        rng = np.random.default_rng(6)
        availability = DiscretePMF.from_samples(rng.gamma(2.0, 25.0, size=200)).aggregate(24)
        far_partner = DiscretePMF.point(5000)
        types = np.array([0, 1, 2, 3])
        deadlines = np.array([60, 120, 240, 480])
        alone = batched_success_probability(
            PMFBatch.from_pmfs([availability]),
            small_gamma_pet.cdf_table(),
            types,
            deadlines,
            machine_indices=np.array([1]),
        )
        padded = batched_success_probability(
            PMFBatch.from_pmfs([availability, far_partner]),
            small_gamma_pet.cdf_table(),
            types,
            deadlines,
            machine_indices=np.array([1, 2]),
        )
        assert np.array_equal(alone[:, 0], padded[:, 0])

    def test_zero_mass_availability_scores_zero(self, small_gamma_pet):
        grid = batched_success_probability(
            PMFBatch.from_pmfs([DiscretePMF.zero()]),
            small_gamma_pet.cdf_table(),
            np.array([0]),
            np.array([1000]),
        )
        assert grid[0, 0] == 0.0

    def test_empty_task_axis(self, small_gamma_pet):
        grid = batched_success_probability(
            PMFBatch.from_pmfs([DiscretePMF.point(3)]),
            small_gamma_pet.cdf_table(),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert grid.shape == (0, 1)

    def test_row_count_mismatch_raises(self, small_gamma_pet):
        with pytest.raises(ValueError):
            batched_success_probability(
                PMFBatch.from_pmfs([DiscretePMF.point(3)]),
                small_gamma_pet.cdf_table(),
                np.array([0]),
                np.array([10]),
                machine_indices=np.array([0, 1]),
            )

    def test_bounded_by_one(self, small_gamma_pet):
        grid = batched_success_probability(
            PMFBatch.from_pmfs([DiscretePMF.point(0)]),
            small_gamma_pet.cdf_table(),
            np.zeros(8, dtype=np.int64) % small_gamma_pet.num_task_types,
            np.full(8, 10_000),
        )
        assert np.all(grid <= 1.0) and np.all(grid >= 0.0)


class TestBatchedExpectedCompletion:
    def test_bit_identical_to_scalar(self, small_gamma_pet):
        rng = np.random.default_rng(7)
        availabilities = [
            DiscretePMF.from_samples(rng.gamma(2.0, 20.0, size=150)).aggregate(16)
            for _ in range(small_gamma_pet.num_machines)
        ]
        means = np.array([a.mean() for a in availabilities])
        exec_means = small_gamma_pet.mean_execution_times()
        grid = batched_expected_completion(means, exec_means)
        for t in range(small_gamma_pet.num_task_types):
            for j in range(small_gamma_pet.num_machines):
                scalar = expected_completion(small_gamma_pet.get(t, j), availabilities[j])
                assert grid[t, j] == scalar

    def test_nan_availability_propagates(self):
        grid = batched_expected_completion(
            np.array([np.nan, 10.0]), np.array([[1.0, 2.0]])
        )
        assert math.isnan(grid[0, 0]) and grid[0, 1] == 12.0
