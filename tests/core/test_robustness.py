"""Tests of robustness / success-probability evaluation (Eq. 1)."""

from __future__ import annotations

import pytest

from repro.core.completion import DroppingPolicy, completion_pmf
from repro.core.pmf import DiscretePMF
from repro.core.robustness import (
    queue_success_probabilities,
    robustness_of_pct,
    success_probability,
)
from repro.heuristics.scoring import fast_success_probability


class TestRobustnessOfPct:
    def test_matches_cdf(self, simple_pmf):
        for deadline in range(0, 5):
            assert robustness_of_pct(simple_pmf, deadline) == pytest.approx(
                simple_pmf.cdf(deadline)
            )

    def test_clamped_to_one(self):
        pmf = DiscretePMF.from_impulses({1: 0.5, 2: 0.5})
        assert robustness_of_pct(pmf, 10) == pytest.approx(1.0)

    def test_paper_figure3_values(self):
        """The middle PMFs of Figure 3 all have robustness 0.75 at deadline 3."""
        no_skew = DiscretePMF.from_impulses({2: 0.25, 3: 0.5, 4: 0.25})
        left_skew = DiscretePMF.from_impulses({1: 0.15, 2: 0.25, 3: 0.35, 4: 0.25})
        assert robustness_of_pct(no_skew, 3) == pytest.approx(0.75)
        assert robustness_of_pct(left_skew, 3) == pytest.approx(0.75)


class TestSuccessProbability:
    def test_no_drop_uses_full_convolution(self, simple_pmf, fig2_prev_pct):
        expected = simple_pmf.convolve(fig2_prev_pct).cdf(7)
        assert success_probability(
            simple_pmf, fig2_prev_pct, 7, DroppingPolicy.NONE
        ) == pytest.approx(expected)

    def test_drop_policies_exclude_dropped_branch(self, simple_pmf, fig2_prev_pct):
        # Deadline 5: the task succeeds if the predecessor frees the machine
        # at 3 (prob 0.5) and execution takes at most 2 (prob 0.75), or at 4
        # (prob 0.25) and execution takes 1 (prob 0.25).  The predecessor
        # finishing at 5 means the task is dropped while pending.
        expected = 0.5 * 0.75 + 0.25 * 0.25
        for policy in (DroppingPolicy.PENDING, DroppingPolicy.EVICT):
            assert success_probability(
                simple_pmf, fig2_prev_pct, 5, policy
            ) == pytest.approx(expected)

    def test_zero_when_predecessor_always_late(self, simple_pmf, fig2_prev_pct):
        assert success_probability(simple_pmf, fig2_prev_pct, 3, DroppingPolicy.EVICT) == 0.0

    def test_evict_pct_would_overstate_success(self, simple_pmf, fig2_prev_pct):
        """The aggregated impulse at the deadline is eviction, not success —
        success_probability must not count it."""
        deadline = 5
        pct = completion_pmf(simple_pmf, fig2_prev_pct, deadline, DroppingPolicy.EVICT)
        naive = pct.cdf(deadline)
        correct = success_probability(simple_pmf, fig2_prev_pct, deadline, DroppingPolicy.EVICT)
        assert naive > correct

    def test_agrees_with_fast_scoring_shortcut(self, simple_pmf, fig2_prev_pct):
        for deadline in range(3, 10):
            slow = success_probability(
                simple_pmf, fig2_prev_pct, deadline, DroppingPolicy.PENDING
            )
            fast = fast_success_probability(simple_pmf, fig2_prev_pct, deadline)
            assert fast == pytest.approx(slow)

    def test_monotone_in_deadline(self, simple_pmf, fig2_prev_pct):
        values = [
            success_probability(simple_pmf, fig2_prev_pct, d, DroppingPolicy.EVICT)
            for d in range(3, 12)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestQueueSuccessProbabilities:
    def test_head_task_unaffected_by_queue_behind(self, simple_pmf):
        probs = queue_success_probabilities(
            [simple_pmf, simple_pmf],
            [5, 20],
            start=DiscretePMF.point(0),
            policy=DroppingPolicy.EVICT,
        )
        assert probs[0] == pytest.approx(simple_pmf.cdf(5))

    def test_deeper_tasks_have_lower_probability_for_tight_deadlines(self, simple_pmf):
        probs = queue_success_probabilities(
            [simple_pmf] * 4,
            [6] * 4,
            start=DiscretePMF.point(0),
            policy=DroppingPolicy.EVICT,
        )
        assert probs[0] == pytest.approx(1.0)
        assert all(b <= a + 1e-12 for a, b in zip(probs, probs[1:]))

    def test_length_mismatch_rejected(self, simple_pmf):
        with pytest.raises(ValueError):
            queue_success_probabilities([simple_pmf], [1, 2], start=DiscretePMF.point(0))

    def test_probabilities_lie_in_unit_interval(self, simple_pmf):
        probs = queue_success_probabilities(
            [simple_pmf] * 5,
            [4, 7, 9, 11, 12],
            start=DiscretePMF.point(2),
            policy=DroppingPolicy.EVICT,
        )
        assert all(0.0 <= p <= 1.0 for p in probs)
