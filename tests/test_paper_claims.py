"""End-to-end tests of the paper's qualitative claims.

These run full (but moderately sized) simulations and assert the *shape* of
the paper's headline results: probabilistic pruning improves robustness over
the baselines in an oversubscribed system, the deferring threshold matters,
fairness reduces the per-type completion variance, and pruning reduces the
incurred cost per on-time completion.
"""

from __future__ import annotations

import pytest

import repro
from repro.pruning.thresholds import PruningThresholds
from repro.simulator import SimulatorConfig


@pytest.fixture(scope="module")
def spec_pet():
    # Smaller sample count than the default keeps this module quick while
    # preserving the PET structure.
    return repro.build_spec_pet(rng=2019, n_samples=200)


@pytest.fixture(scope="module")
def oversubscribed_trace(spec_pet):
    config = repro.WorkloadConfig(num_tasks=420, time_span=2000, beta=1.5)
    return repro.generate_workload(config, spec_pet, rng=7)


@pytest.fixture(scope="module")
def results(spec_pet, oversubscribed_trace):
    """One simulation per heuristic on the same oversubscribed trace."""
    out = {}
    for name in repro.HEURISTIC_NAMES:
        heuristic = repro.make_heuristic(name, num_task_types=spec_pet.num_task_types)
        out[name] = repro.simulate(spec_pet, heuristic, oversubscribed_trace, rng=13)
    return out


WARMUP = dict(warmup=30, cooldown=30)


class TestRobustnessClaims:
    def test_system_is_genuinely_oversubscribed(self, spec_pet, oversubscribed_trace, results):
        assert oversubscribed_trace.offered_load(spec_pet) > 1.5
        assert results["MM"].robustness_percent(**WARMUP) < 60.0

    def test_pam_beats_every_baseline(self, results):
        pam = results["PAM"].robustness_percent(**WARMUP)
        for name in ("MOC", "MM", "MSD", "MMU"):
            assert pam > results[name].robustness_percent(**WARMUP)

    def test_pam_improvement_is_substantial(self, results):
        """The paper reports an average improvement of roughly 25 percentage
        points over the baselines; require at least a 10-point gap here."""
        pam = results["PAM"].robustness_percent(**WARMUP)
        mm = results["MM"].robustness_percent(**WARMUP)
        assert pam - mm >= 10.0

    def test_pamf_lands_between_pam_and_minmin(self, results):
        pam = results["PAM"].robustness_percent(**WARMUP)
        pamf = results["PAMF"].robustness_percent(**WARMUP)
        mm = results["MM"].robustness_percent(**WARMUP)
        assert mm - 5.0 <= pamf <= pam + 1e-9

    def test_robustness_based_baseline_beats_deadline_chasers(self, results):
        """MOC (robustness-based) should not lose to MSD/MMU, which the paper
        shows keep prioritising the least likely tasks."""
        moc = results["MOC"].robustness_percent(**WARMUP)
        assert moc >= results["MSD"].robustness_percent(**WARMUP)
        assert moc >= results["MMU"].robustness_percent(**WARMUP)


class TestCostClaims:
    def test_pruning_lowers_cost_per_on_time_percent(self, results):
        pam_cost = results["PAM"].cost_per_percent_on_time(**WARMUP)
        mm_cost = results["MM"].cost_per_percent_on_time(**WARMUP)
        moc_cost = results["MOC"].cost_per_percent_on_time(**WARMUP)
        assert pam_cost < mm_cost
        assert pam_cost < moc_cost

    def test_cost_saving_is_large(self, results):
        """The paper reports roughly 40% lower cost; require at least 20%."""
        pam_cost = results["PAM"].cost_per_percent_on_time(**WARMUP)
        mm_cost = results["MM"].cost_per_percent_on_time(**WARMUP)
        assert pam_cost <= 0.8 * mm_cost


class TestThresholdClaims:
    def test_higher_deferring_threshold_helps(self, spec_pet, oversubscribed_trace):
        """Figure 5's main trend: with the dropping threshold fixed, a higher
        deferring threshold gives higher robustness."""
        def run_with(deferring):
            thresholds = PruningThresholds(dropping=0.25, deferring=deferring)
            heuristic = repro.PruningAwareMapper(thresholds)
            result = repro.simulate(spec_pet, heuristic, oversubscribed_trace, rng=13)
            return result.robustness_percent(**WARMUP)

        low = run_with(0.30)
        high = run_with(0.90)
        assert high > low


class TestFairnessClaims:
    def test_fairness_factor_reduces_variance(self, spec_pet, oversubscribed_trace):
        """Figure 6's trend: a 5-10% fairness factor reduces the variance of
        per-type completion percentages compared to no fairness."""
        def run_with(factor):
            heuristic = repro.FairPruningMapper(
                spec_pet.num_task_types, fairness_factor=factor
            )
            result = repro.simulate(spec_pet, heuristic, oversubscribed_trace, rng=13)
            return result

        none = run_with(0.0)
        fair = run_with(0.10)
        assert fair.fairness_variance(**WARMUP) <= none.fairness_variance(**WARMUP)


class TestEvictionAblation:
    def test_pam_advantage_grows_without_automatic_eviction(self, spec_pet, oversubscribed_trace):
        """When the system cannot evict overdue executing tasks on its own,
        the baselines waste far more machine time and PAM's relative
        advantage grows — the 'wasted time cascades' effect of Section I."""
        config = SimulatorConfig(evict_executing_at_deadline=False)
        mm = repro.simulate(
            spec_pet, repro.make_heuristic("MM"), oversubscribed_trace, config=config, rng=13
        )
        pam = repro.simulate(
            spec_pet, repro.make_heuristic("PAM"), oversubscribed_trace, config=config, rng=13
        )
        assert pam.robustness_percent(**WARMUP) > 1.5 * mm.robustness_percent(**WARMUP)
