"""Tests for summary statistics and RNG helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import make_generator, spawn_generators
from repro.utils.stats import confidence_interval_95, mean_and_ci, summarize
from repro.utils.tables import format_table


class TestConfidenceInterval:
    def test_zero_for_single_sample(self):
        assert confidence_interval_95([5.0]) == 0.0

    def test_zero_for_constant_series(self):
        assert confidence_interval_95([3.0, 3.0, 3.0]) == 0.0

    def test_matches_t_interval(self):
        values = [10.0, 12.0, 11.0, 13.0, 9.0]
        half_width = confidence_interval_95(values)
        # known value: t(0.975, 4) * sem
        from scipy import stats as sp_stats

        expected = sp_stats.t.ppf(0.975, 4) * sp_stats.sem(values)
        assert half_width == pytest.approx(expected)

    def test_wider_with_more_spread(self):
        tight = confidence_interval_95([10, 10.1, 9.9, 10.05])
        wide = confidence_interval_95([5, 15, 2, 18])
        assert wide > tight


class TestMeanAndSummarize:
    def test_mean_and_ci(self):
        mean, ci = mean_and_ci([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        assert ci > 0

    def test_empty_series(self):
        mean, ci = mean_and_ci([])
        assert np.isnan(mean)
        assert ci == 0.0

    def test_summarize_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.n == 4
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary.n == 0
        assert np.isnan(summary.mean)

    def test_summary_as_dict(self):
        payload = summarize([1.0, 2.0]).as_dict()
        assert set(payload) == {"mean", "ci95", "std", "min", "max", "n"}


class TestRng:
    def test_make_generator_from_seed(self):
        a = make_generator(5)
        b = make_generator(5)
        assert a.integers(0, 100, 10).tolist() == b.integers(0, 100, 10).tolist()

    def test_make_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert make_generator(rng) is rng

    def test_spawn_generators_independent_and_reproducible(self):
        first = spawn_generators(7, 3)
        second = spawn_generators(7, 3)
        assert len(first) == 3
        for a, b in zip(first, second):
            assert a.integers(0, 1000, 5).tolist() == b.integers(0, 1000, 5).tolist()
        draws = [g.integers(0, 1_000_000) for g in spawn_generators(7, 3)]
        assert len(set(int(d) for d in draws)) == 3

    def test_spawn_generators_invalid(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1.234], ["bb", 5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.23" in lines[2]

    def test_column_alignment(self):
        text = format_table(["x"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])
