"""State-backed pruning walk: bit-identical (atol=0) to the re-convolving walk.

The pruner has two implementations of the head-first dropping walk:

* the self-contained path (``_prune_machine_queue_rebuilding``) re-convolves
  the completion-time chain from the queue head at every call — the
  pre-existing behaviour;
* the state-backed path consumes the engine's live ``SystemState`` chain
  prefix plus cached per-task ``(success probability, skewness)`` metadata
  and only re-convolves behind the first actual drop.

These tests pin exact equality between the two: identical drop decisions,
identical examined ``(task_id, prob, threshold)`` triples (float-exact), and
bit-identical post-drop availability PMFs — at the unit level on crafted
queues and at trial scale on seeded paper-style simulations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.completion import DroppingPolicy
from repro.core.pmf import DiscretePMF
from repro.heuristics.pam import PruningAwareMapper
from repro.pruning.pruner import Pruner
from repro.pruning.thresholds import PruningThresholds
from repro.simulator.engine import SimulatorConfig, simulate
from repro.simulator.machine import Machine
from repro.simulator.mapping import MappingContext, batch_in_arrival_order
from repro.simulator.state import SystemState
from repro.simulator.task import Task
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.spec import TaskSpec


def make_task(task_id: int, *, task_type: int = 0, deadline: int = 500, arrival: int = 0) -> Task:
    return Task(TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline))


def pmf_equal(a: DiscretePMF, b: DiscretePMF) -> bool:
    a, b = a.compact(), b.compact()
    if a.is_zero() and b.is_zero():
        return True
    return a.offset == b.offset and np.array_equal(a.probs, b.probs)


def assert_reports_identical(got, want) -> None:
    """Exact (atol=0) equality of two queue-prune reports."""
    assert got.machine_index == want.machine_index
    assert got.drops == want.drops
    assert len(got.examined) == len(want.examined)
    for g, w in zip(got.examined, want.examined):
        assert g[0] == w[0]
        assert g[1] == w[1]  # success probability, bit-exact
        assert g[2] == w[2]  # threshold, bit-exact
    assert (got.availability is None) == (want.availability is None)
    if got.availability is not None:
        assert pmf_equal(got.availability, want.availability)


class CrossCheckingPruner(Pruner):
    """Runs the state-backed walk, then verifies it against the legacy walk."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.state_backed_calls = 0

    def _prune_machine_queue_state(self, machine, context):
        self.state_backed_calls += 1
        report = super()._prune_machine_queue_state(machine, context)
        reference = self._prune_machine_queue_rebuilding(machine, context)
        assert_reports_identical(report, reference)
        return report


def state_context(pet, machines, *, now=0, state=None):
    return MappingContext(
        now=now,
        batch=batch_in_arrival_order(()),
        machines=tuple(machines),
        pet=pet,
        policy=DroppingPolicy.EVICT,
        state=state,
    )


class TestUnitEquivalence:
    def build(self, tiny_pet, tasks, *, start=None):
        machine = Machine(0, "fast-a", queue_capacity=6)
        state = SystemState([machine], tiny_pet)
        for task in tasks:
            machine.enqueue(task, now=0)
            state.notify_enqueue(0, task)
        if start is not None:
            machine.start_next(now=0, actual_execution_time=start)
            state.notify_start(0)
        return machine, state

    def check(self, tiny_pet, machine, state, *, now, pruner=None):
        pruner = pruner or Pruner(PruningThresholds(dropping=0.5, deferring=0.9))
        context = state_context(tiny_pet, [machine], now=now, state=state)
        got = pruner._prune_machine_queue_state(machine, context)
        want = pruner._prune_machine_queue_rebuilding(machine, context)
        assert_reports_identical(got, want)
        return got

    def test_healthy_queue_no_drops(self, tiny_pet):
        machine, state = self.build(
            tiny_pet, [make_task(1, deadline=300), make_task(2, deadline=400)]
        )
        report = self.check(tiny_pet, machine, state, now=0)
        assert report.drops == []

    def test_no_drop_prefix_is_served_from_chain(self, tiny_pet):
        machine, state = self.build(
            tiny_pet, [make_task(1, deadline=300), make_task(2, deadline=400)]
        )
        report = self.check(tiny_pet, machine, state, now=0)
        # The reported availability IS the live chain tail (no recompute).
        assert report.availability is state.chain(0, 0)[-1]

    def test_hopeless_mid_queue_task_dropped(self, tiny_pet):
        machine, state = self.build(
            tiny_pet,
            [
                make_task(1, task_type=0, deadline=400),
                make_task(2, task_type=2, deadline=8),  # cannot make it
                make_task(3, task_type=0, deadline=420),
            ],
        )
        report = self.check(tiny_pet, machine, state, now=1)
        assert {d.task_id for d in report.drops} == {2}

    def test_hopeless_head_drop_improves_tasks_behind(self, tiny_pet):
        machine, state = self.build(
            tiny_pet,
            [make_task(1, task_type=2, deadline=6), make_task(2, task_type=0, deadline=12)],
        )
        report = self.check(tiny_pet, machine, state, now=1)
        assert {d.task_id for d in report.drops} == {1}
        examined = {tid: prob for tid, prob, _ in report.examined}
        assert examined[2] > 0.5

    def test_executing_head_can_be_dropped(self, tiny_pet):
        machine, state = self.build(
            tiny_pet, [make_task(1, task_type=2, deadline=10)], start=14
        )
        report = self.check(tiny_pet, machine, state, now=2)
        assert {d.task_id for d in report.drops} == {1}

    def test_executing_head_kept_with_queue_behind(self, tiny_pet):
        machine, state = self.build(
            tiny_pet,
            [
                make_task(1, task_type=0, deadline=300),
                make_task(2, task_type=1, deadline=350),
                make_task(3, task_type=0, deadline=9),  # dropped mid-queue
                make_task(4, task_type=0, deadline=400),
            ],
            start=5,
        )
        report = self.check(tiny_pet, machine, state, now=2)
        assert {d.task_id for d in report.drops} == {3}

    def test_fairness_sufferage_applies_identically(self, tiny_pet):
        from repro.pruning.fairness import SufferageTracker

        fairness = SufferageTracker(tiny_pet.num_task_types, fairness_factor=0.3)
        fairness.record_failure(1)
        machine, state = self.build(tiny_pet, [make_task(1, task_type=1, deadline=9)])
        pruner = Pruner(
            PruningThresholds(dropping=0.6, deferring=0.9, dynamic_per_task=False),
            fairness=fairness,
        )
        report = self.check(tiny_pet, machine, state, now=0, pruner=pruner)
        assert report.drops == []

    def test_meta_cache_reused_across_events(self, tiny_pet):
        """A queue untouched between events answers without re-deriving."""
        machine, state = self.build(
            tiny_pet, [make_task(1, deadline=300), make_task(2, deadline=400)]
        )
        first = state.prune_prefix_meta(0, 0)
        second = state.prune_prefix_meta(0, 0)
        assert first == second
        # A tail enqueue extends the metadata without touching the prefix.
        extra = make_task(3, deadline=500)
        machine.enqueue(extra, now=0)
        state.notify_enqueue(0, extra)
        third = state.prune_prefix_meta(0, 0)
        assert third[:2] == first
        assert len(third) == 3

    def test_mismatched_settings_fall_back_to_rebuilding_walk(self, tiny_pet):
        machine, state = self.build(tiny_pet, [make_task(1, deadline=300)])
        pruner = CrossCheckingPruner(PruningThresholds())
        context = MappingContext(
            now=0,
            batch=batch_in_arrival_order(()),
            machines=(machine,),
            pet=tiny_pet,
            policy=DroppingPolicy.EVICT,
            max_impulses=16,  # differs from the state's 32
            state=state,
        )
        report = pruner.prune_machine_queue(machine, context)
        assert pruner.state_backed_calls == 0
        assert report.availability is not None


class TestTrialScaleEquivalence:
    @pytest.mark.parametrize("always_drop", [False, True])
    def test_seeded_trial_walks_agree_everywhere(
        self, small_gamma_pet, always_drop
    ) -> None:
        """Every dropping-stage call in a seeded oversubscribed trial agrees."""
        pruner = CrossCheckingPruner(
            PruningThresholds(dropping=0.5, deferring=0.9), always_drop=always_drop
        )
        heuristic = PruningAwareMapper(pruner=pruner)
        workload = WorkloadConfig(num_tasks=140, time_span=500, beta=1.5)
        trace = generate_workload(workload, small_gamma_pet, rng=17)
        simulate(small_gamma_pet, heuristic, trace, rng=18)
        assert pruner.state_backed_calls > 0

    def test_seeded_trial_metrics_identical_to_forced_legacy(
        self, small_gamma_pet
    ) -> None:
        """End to end, the state-backed walk changes no simulated number."""

        class LegacyOnlyPruner(Pruner):
            def prune_machine_queue(self, machine, context):
                return self._prune_machine_queue_rebuilding(machine, context)

        workload = WorkloadConfig(num_tasks=140, time_span=500, beta=1.5)
        trace = generate_workload(workload, small_gamma_pet, rng=23)

        def run(pruner_cls):
            heuristic = PruningAwareMapper(
                pruner=pruner_cls(PruningThresholds(dropping=0.5, deferring=0.9))
            )
            result = simulate(
                small_gamma_pet,
                heuristic,
                trace,
                config=SimulatorConfig(),
                rng=29,
            )
            return (
                result.robustness_percent(warmup=10, cooldown=10),
                result.fairness_variance(warmup=10, cooldown=10),
                result.total_cost(),
                tuple(sorted(result.status_counts().items())),
            )

        assert run(Pruner) == run(LegacyOnlyPruner)
