"""Tests for the sufferage-based fairness tracker (PAMF)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pruning.fairness import SufferageTracker
from repro.simulator.mapping import TerminalEvent


class TestSufferageUpdates:
    def test_initial_sufferage_is_zero(self):
        tracker = SufferageTracker(4)
        assert np.all(tracker.values == 0.0)

    def test_failure_raises_success_lowers(self):
        tracker = SufferageTracker(2, fairness_factor=0.05)
        tracker.record_failure(0)
        tracker.record_failure(0)
        assert tracker.sufferage_of(0) == pytest.approx(0.10)
        tracker.record_success(0)
        assert tracker.sufferage_of(0) == pytest.approx(0.05)

    def test_sufferage_clipped_to_unit_interval(self):
        tracker = SufferageTracker(1, fairness_factor=0.6)
        tracker.record_success(0)
        assert tracker.sufferage_of(0) == 0.0
        tracker.record_failure(0)
        tracker.record_failure(0)
        assert tracker.sufferage_of(0) == 1.0

    def test_types_tracked_independently(self):
        tracker = SufferageTracker(3, fairness_factor=0.1)
        tracker.record_failure(1)
        assert tracker.sufferage_of(0) == 0.0
        assert tracker.sufferage_of(1) == pytest.approx(0.1)
        assert tracker.sufferage_of(2) == 0.0

    def test_observe_terminal_events(self):
        tracker = SufferageTracker(2, fairness_factor=0.05)
        events = [
            TerminalEvent(task_id=1, task_type=0, on_time=False),
            TerminalEvent(task_id=2, task_type=0, on_time=False),
            TerminalEvent(task_id=3, task_type=1, on_time=True),
        ]
        tracker.observe_terminal_events(events)
        assert tracker.sufferage_of(0) == pytest.approx(0.10)
        assert tracker.sufferage_of(1) == 0.0

    def test_out_of_range_type(self):
        tracker = SufferageTracker(2)
        with pytest.raises(IndexError):
            tracker.record_failure(5)
        with pytest.raises(IndexError):
            tracker.sufferage_of(-1)

    def test_reset(self):
        tracker = SufferageTracker(2, fairness_factor=0.2)
        tracker.record_failure(0)
        tracker.reset()
        assert np.all(tracker.values == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SufferageTracker(0)
        with pytest.raises(ValueError):
            SufferageTracker(2, fairness_factor=1.5)


class TestThresholdRelaxation:
    def test_relaxed_threshold_subtracts_sufferage(self):
        tracker = SufferageTracker(2, fairness_factor=0.25)
        tracker.record_failure(0)
        assert tracker.relaxed_threshold(0.9, 0) == pytest.approx(0.65)
        assert tracker.relaxed_threshold(0.9, 1) == pytest.approx(0.9)

    def test_relaxed_threshold_floors_at_zero(self):
        tracker = SufferageTracker(1, fairness_factor=1.0)
        tracker.record_failure(0)
        assert tracker.relaxed_threshold(0.5, 0) == 0.0

    def test_zero_fairness_factor_never_relaxes(self):
        tracker = SufferageTracker(2, fairness_factor=0.0)
        for _ in range(10):
            tracker.record_failure(1)
        assert tracker.relaxed_threshold(0.9, 1) == pytest.approx(0.9)


class TestFairnessMetric:
    def test_variance_of_equal_completion_is_zero(self):
        assert SufferageTracker.fairness_of([50.0, 50.0, 50.0]) == 0.0

    def test_variance_grows_with_imbalance(self):
        balanced = SufferageTracker.fairness_of([40.0, 50.0, 60.0])
        skewed = SufferageTracker.fairness_of([5.0, 50.0, 95.0])
        assert skewed > balanced

    def test_nan_types_ignored(self):
        assert SufferageTracker.fairness_of([50.0, float("nan")]) == 0.0
