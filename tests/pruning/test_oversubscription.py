"""Tests for the EWMA oversubscription detector and Schmitt trigger (Eq. 8)."""

from __future__ import annotations

import pytest

from repro.pruning.oversubscription import (
    ExponentialMovingAverage,
    OversubscriptionDetector,
    SchmittTrigger,
)


class TestExponentialMovingAverage:
    def test_update_formula(self):
        ewma = ExponentialMovingAverage(weight=0.9)
        assert ewma.update(10) == pytest.approx(9.0)
        assert ewma.update(0) == pytest.approx(0.9)

    def test_weight_one_tracks_latest(self):
        ewma = ExponentialMovingAverage(weight=1.0)
        ewma.update(5)
        assert ewma.value == 5
        ewma.update(2)
        assert ewma.value == 2

    def test_low_weight_remembers_history(self):
        slow = ExponentialMovingAverage(weight=0.1)
        fast = ExponentialMovingAverage(weight=0.9)
        for misses in (10, 0, 0, 0):
            slow.update(misses)
            fast.update(misses)
        assert slow.value > fast.value

    def test_reset(self):
        ewma = ExponentialMovingAverage(weight=0.5)
        ewma.update(8)
        ewma.reset()
        assert ewma.value == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(weight=0.0)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(weight=1.5)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(weight=0.5).update(-1)


class TestSchmittTrigger:
    def test_turns_on_at_on_level(self):
        trigger = SchmittTrigger(on_level=2.0, separation=0.2)
        assert not trigger.update(1.9)
        assert trigger.update(2.0)

    def test_stays_on_until_off_level(self):
        trigger = SchmittTrigger(on_level=2.0, separation=0.2)
        trigger.update(2.5)
        assert trigger.update(1.7)  # above off level 1.6 -> still on
        assert not trigger.update(1.6)  # at off level -> off

    def test_paper_example_20_percent_separation(self):
        """'if oversubscription level two or higher signals starting dropping,
        oversubscription value 1.6 or lower signals stopping it.'"""
        trigger = SchmittTrigger(on_level=2.0, separation=0.2)
        assert trigger.off_level == pytest.approx(1.6)

    def test_zero_separation_degenerates_to_single_threshold(self):
        trigger = SchmittTrigger(on_level=1.0, separation=0.0)
        assert trigger.update(1.0)
        assert not trigger.update(0.999)
        assert trigger.update(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SchmittTrigger(on_level=0.0)
        with pytest.raises(ValueError):
            SchmittTrigger(on_level=1.0, separation=1.0)

    def test_reset(self):
        trigger = SchmittTrigger(on_level=1.0, initially_on=True)
        trigger.reset()
        assert not trigger.is_on


class TestOversubscriptionDetector:
    def test_engages_after_sustained_misses(self):
        detector = OversubscriptionDetector(ewma_weight=0.9, toggle_level=1.0)
        assert not detector.dropping_engaged
        engaged = detector.observe(3)
        assert engaged and detector.dropping_engaged

    def test_single_spike_with_low_weight_does_not_engage(self):
        detector = OversubscriptionDetector(ewma_weight=0.1, toggle_level=1.0)
        assert not detector.observe(5)  # EWMA = 0.5 < 1.0

    def test_disengages_with_hysteresis(self):
        detector = OversubscriptionDetector(ewma_weight=0.9, toggle_level=1.0, schmitt_separation=0.2)
        detector.observe(5)
        assert detector.dropping_engaged
        # Level decays: stays on until it reaches 0.8 or lower.
        while detector.level > 0.8:
            detector.observe(0)
        assert not detector.dropping_engaged

    def test_level_property_tracks_ewma(self):
        detector = OversubscriptionDetector(ewma_weight=0.5)
        detector.observe(4)
        assert detector.level == pytest.approx(2.0)

    def test_reset(self):
        detector = OversubscriptionDetector()
        detector.observe(10)
        detector.reset()
        assert detector.level == 0.0
        assert not detector.dropping_engaged
