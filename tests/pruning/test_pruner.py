"""Tests for the pruning mechanism (dropping + deferring orchestration)."""

from __future__ import annotations

import pytest

from repro.core.completion import DroppingPolicy
from repro.pruning.fairness import SufferageTracker
from repro.pruning.oversubscription import OversubscriptionDetector
from repro.pruning.pruner import Pruner
from repro.pruning.thresholds import PruningThresholds
from repro.simulator.machine import Machine
from repro.simulator.mapping import MappingContext, TerminalEvent, batch_in_arrival_order
from repro.simulator.task import Task
from repro.workload.spec import TaskSpec


def make_task(task_id: int, *, task_type: int = 0, deadline: int = 500, arrival: int = 0) -> Task:
    return Task(TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline))


def make_context(tiny_pet, machines, *, now=0, misses=0, terminal=(), batch=()):
    return MappingContext(
        now=now,
        batch=batch_in_arrival_order(batch),
        machines=tuple(machines),
        pet=tiny_pet,
        policy=DroppingPolicy.EVICT,
        misses_since_last_event=misses,
        terminal_events=tuple(terminal),
    )


class TestObserveMappingEvent:
    def test_dropping_engages_on_misses(self, tiny_pet):
        pruner = Pruner(PruningThresholds(), detector=OversubscriptionDetector())
        context = make_context(tiny_pet, [Machine(0, "fast-a")], misses=3)
        assert pruner.observe_mapping_event(context)

    def test_dropping_not_engaged_without_misses(self, tiny_pet):
        pruner = Pruner(PruningThresholds(), detector=OversubscriptionDetector())
        context = make_context(tiny_pet, [Machine(0, "fast-a")], misses=0)
        assert not pruner.observe_mapping_event(context)

    def test_always_drop_override(self, tiny_pet):
        pruner = Pruner(always_drop=True)
        context = make_context(tiny_pet, [Machine(0, "fast-a")], misses=0)
        assert pruner.observe_mapping_event(context)

    def test_fairness_updated_from_terminal_events(self, tiny_pet):
        fairness = SufferageTracker(tiny_pet.num_task_types, fairness_factor=0.1)
        pruner = Pruner(fairness=fairness)
        events = [TerminalEvent(1, task_type=2, on_time=False)]
        context = make_context(tiny_pet, [Machine(0, "fast-a")], terminal=events)
        pruner.observe_mapping_event(context)
        assert fairness.sufferage_of(2) == pytest.approx(0.1)

    def test_reset_clears_state(self, tiny_pet):
        fairness = SufferageTracker(tiny_pet.num_task_types, fairness_factor=0.1)
        pruner = Pruner(fairness=fairness)
        context = make_context(
            tiny_pet,
            [Machine(0, "fast-a")],
            misses=5,
            terminal=[TerminalEvent(1, task_type=0, on_time=False)],
        )
        pruner.observe_mapping_event(context)
        pruner.reset()
        assert not pruner.detector.dropping_engaged
        assert fairness.sufferage_of(0) == 0.0


class TestDeferring:
    def test_defer_below_threshold(self):
        pruner = Pruner(PruningThresholds(dropping=0.5, deferring=0.9))
        assert pruner.should_defer(0.89, task_type=0)
        assert not pruner.should_defer(0.95, task_type=0)

    def test_fairness_relaxes_deferring_threshold(self, tiny_pet):
        fairness = SufferageTracker(tiny_pet.num_task_types, fairness_factor=0.3)
        fairness.record_failure(1)
        pruner = Pruner(PruningThresholds(dropping=0.5, deferring=0.9), fairness=fairness)
        # Type 1 suffered: threshold drops to 0.6, so 0.7 is now acceptable.
        assert pruner.should_defer(0.7, task_type=0)
        assert not pruner.should_defer(0.7, task_type=1)


class TestQueueDropping:
    def test_hopeless_queued_task_is_dropped(self, tiny_pet):
        machine = Machine(0, "fast-a", queue_capacity=6)
        # Task of type "gamma" (execution 12-16 on fast-a) with an impossible
        # deadline: success probability 0, must be dropped.
        hopeless = make_task(1, task_type=2, deadline=6)
        fine = make_task(2, task_type=0, deadline=400)
        machine.enqueue(hopeless, now=0)
        machine.enqueue(fine, now=0)
        pruner = Pruner(PruningThresholds(dropping=0.5, deferring=0.9))
        context = make_context(tiny_pet, [machine], now=1)
        report = pruner.prune_machine_queue(machine, context)
        dropped_ids = {d.task_id for d in report.drops}
        assert 1 in dropped_ids
        assert 2 not in dropped_ids

    def test_dropping_head_improves_chain_for_tasks_behind(self, tiny_pet):
        machine = Machine(0, "fast-a", queue_capacity=6)
        hopeless = make_task(1, task_type=2, deadline=6)   # long task, dead on arrival
        behind = make_task(2, task_type=0, deadline=12)    # needs the machine soon
        machine.enqueue(hopeless, now=0)
        machine.enqueue(behind, now=0)
        pruner = Pruner(PruningThresholds(dropping=0.5, deferring=0.9))
        context = make_context(tiny_pet, [machine], now=1)
        report = pruner.prune_machine_queue(machine, context)
        # The hopeless head is dropped, and the task behind it is evaluated
        # against the *post-drop* chain, so it survives.
        assert {d.task_id for d in report.drops} == {1}
        examined = dict((tid, prob) for tid, prob, _ in report.examined)
        assert examined[2] > 0.5

    def test_healthy_queue_is_untouched(self, tiny_pet):
        machine = Machine(0, "fast-a", queue_capacity=6)
        machine.enqueue(make_task(1, task_type=0, deadline=300), now=0)
        machine.enqueue(make_task(2, task_type=0, deadline=400), now=0)
        pruner = Pruner(PruningThresholds(dropping=0.5, deferring=0.9))
        context = make_context(tiny_pet, [machine], now=0)
        report = pruner.prune_machine_queue(machine, context)
        assert report.drops == []
        assert report.availability is not None
        assert report.availability.total_mass() == pytest.approx(1.0)

    def test_executing_task_can_be_dropped(self, tiny_pet):
        machine = Machine(0, "fast-a", queue_capacity=6)
        doomed = make_task(1, task_type=2, deadline=10)  # executes 12-16 time units
        machine.enqueue(doomed, now=0)
        machine.start_next(now=0, actual_execution_time=14)
        pruner = Pruner(PruningThresholds(dropping=0.5, deferring=0.9))
        context = make_context(tiny_pet, [machine], now=2)
        report = pruner.prune_machine_queue(machine, context)
        assert {d.task_id for d in report.drops} == {1}

    def test_empty_queue_report(self, tiny_pet):
        machine = Machine(0, "fast-a")
        pruner = Pruner()
        context = make_context(tiny_pet, [machine], now=5)
        report = pruner.prune_machine_queue(machine, context)
        assert report.drops == []
        assert report.availability.probability_at(5) == pytest.approx(1.0)

    def test_select_queue_drops_covers_all_machines(self, tiny_pet):
        m0 = Machine(0, "fast-a", queue_capacity=6)
        m1 = Machine(1, "fast-b", queue_capacity=6)
        m0.enqueue(make_task(1, task_type=2, deadline=6), now=0)
        m1.enqueue(make_task(2, task_type=2, deadline=6), now=0)
        pruner = Pruner(PruningThresholds(dropping=0.5, deferring=0.9))
        context = make_context(tiny_pet, [m0, m1], now=1)
        drops, availability = pruner.select_queue_drops(context)
        assert {d.task_id for d in drops} == {1, 2}
        assert set(availability) == {0, 1}

    def test_fairness_protects_suffering_type_from_dropping(self, tiny_pet):
        machine = Machine(0, "fast-a", queue_capacity=6)
        # Borderline task: type beta on fast-a takes 9-11; deadline gives ~50%.
        borderline = make_task(1, task_type=1, deadline=9)
        machine.enqueue(borderline, now=0)
        context = make_context(tiny_pet, [machine], now=0)

        strict = Pruner(PruningThresholds(dropping=0.6, deferring=0.9, dynamic_per_task=False))
        assert {d.task_id for d in strict.prune_machine_queue(machine, context).drops} == {1}

        fairness = SufferageTracker(tiny_pet.num_task_types, fairness_factor=0.3)
        fairness.record_failure(1)
        fairness.record_failure(1)
        lenient = Pruner(
            PruningThresholds(dropping=0.6, deferring=0.9, dynamic_per_task=False),
            fairness=fairness,
        )
        assert lenient.prune_machine_queue(machine, context).drops == []
