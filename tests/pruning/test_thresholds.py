"""Tests for dropping/deferring thresholds and the Eq. 7 adjustment."""

from __future__ import annotations

import pytest

from repro.core.pmf import DiscretePMF
from repro.pruning.thresholds import (
    PruningThresholds,
    adjusted_dropping_threshold,
    skewness_position_adjustment,
)

POSITIVE_SKEW = DiscretePMF.from_impulses({2: 0.6, 3: 0.2, 8: 0.2})
NEGATIVE_SKEW = DiscretePMF.from_impulses({2: 0.2, 7: 0.2, 8: 0.6})
SYMMETRIC = DiscretePMF.from_impulses({2: 0.25, 3: 0.5, 4: 0.25})


class TestSkewnessPositionAdjustment:
    def test_sign_follows_negated_skewness(self):
        assert skewness_position_adjustment(+1.0, 0, rho=0.1) < 0
        assert skewness_position_adjustment(-1.0, 0, rho=0.1) > 0
        assert skewness_position_adjustment(0.0, 0, rho=0.1) == 0.0

    def test_magnitude_decays_with_queue_position(self):
        head = abs(skewness_position_adjustment(1.0, 0, rho=0.1))
        deep = abs(skewness_position_adjustment(1.0, 5, rho=0.1))
        assert head > deep
        assert head == pytest.approx(0.1)
        assert deep == pytest.approx(0.1 / 6)

    def test_rho_scales_linearly(self):
        small = skewness_position_adjustment(-1.0, 1, rho=0.05)
        large = skewness_position_adjustment(-1.0, 1, rho=0.10)
        assert large == pytest.approx(2 * small)

    def test_validation(self):
        with pytest.raises(ValueError):
            skewness_position_adjustment(0.5, -1)
        with pytest.raises(ValueError):
            skewness_position_adjustment(1.5, 0)
        with pytest.raises(ValueError):
            skewness_position_adjustment(0.5, 0, rho=-0.1)


class TestAdjustedDroppingThreshold:
    def test_positive_skew_lowers_threshold(self):
        assert adjusted_dropping_threshold(0.5, POSITIVE_SKEW, 0, rho=0.1) < 0.5

    def test_negative_skew_raises_threshold(self):
        assert adjusted_dropping_threshold(0.5, NEGATIVE_SKEW, 0, rho=0.1) > 0.5

    def test_symmetric_pmf_leaves_threshold(self):
        assert adjusted_dropping_threshold(0.5, SYMMETRIC, 0, rho=0.1) == pytest.approx(0.5)

    def test_clipped_to_unit_interval(self):
        assert 0.0 <= adjusted_dropping_threshold(0.02, POSITIVE_SKEW, 0, rho=1.0) <= 1.0
        assert 0.0 <= adjusted_dropping_threshold(0.98, NEGATIVE_SKEW, 0, rho=1.0) <= 1.0


class TestPruningThresholds:
    def test_paper_defaults(self):
        thresholds = PruningThresholds()
        assert thresholds.dropping == pytest.approx(0.50)
        assert thresholds.deferring == pytest.approx(0.90)

    def test_defer_must_not_be_below_drop(self):
        with pytest.raises(ValueError):
            PruningThresholds(dropping=0.6, deferring=0.5)

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            PruningThresholds(dropping=-0.1)
        with pytest.raises(ValueError):
            PruningThresholds(dropping=0.2, deferring=1.2)

    def test_should_drop_inclusive(self):
        thresholds = PruningThresholds(dropping=0.5, deferring=0.9)
        assert thresholds.should_drop(0.5, 0.5)
        assert not thresholds.should_drop(0.500001, 0.5)

    def test_should_defer_strict(self):
        thresholds = PruningThresholds(dropping=0.5, deferring=0.9)
        assert thresholds.should_defer(0.899, 0.9)
        assert not thresholds.should_defer(0.9, 0.9)

    def test_sufferage_relaxes_thresholds(self):
        thresholds = PruningThresholds(dropping=0.5, deferring=0.9)
        assert thresholds.deferring_threshold_for(sufferage=0.2) == pytest.approx(0.7)
        assert thresholds.dropping_threshold_for(sufferage=0.2) == pytest.approx(0.3)

    def test_sufferage_cannot_go_negative(self):
        thresholds = PruningThresholds(dropping=0.1, deferring=0.9)
        assert thresholds.dropping_threshold_for(sufferage=0.9) == 0.0

    def test_dynamic_adjustment_applied_when_pmf_given(self):
        thresholds = PruningThresholds(dropping=0.5, deferring=0.9, rho=0.1)
        assert thresholds.dropping_threshold_for(NEGATIVE_SKEW, queue_position=0) > 0.5
        assert thresholds.dropping_threshold_for(POSITIVE_SKEW, queue_position=0) < 0.5

    def test_dynamic_adjustment_disabled(self):
        thresholds = PruningThresholds(dynamic_per_task=False, rho=0.1)
        assert thresholds.dropping_threshold_for(NEGATIVE_SKEW, queue_position=0) == pytest.approx(
            thresholds.dropping
        )

    def test_with_gap(self):
        thresholds = PruningThresholds(dropping=0.25, deferring=0.25)
        widened = thresholds.with_gap(0.3)
        assert widened.deferring == pytest.approx(0.55)
        assert widened.dropping == pytest.approx(0.25)
        capped = thresholds.with_gap(2.0)
        assert capped.deferring == 1.0
