"""The documentation link checker passes against the working tree.

Runs the same check the CI docs job runs (``scripts/check_docs_links.py``)
so a broken README/docs cross-reference fails tier-1 locally too.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_markdown_links_resolve():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_docs_links.py"), str(REPO_ROOT)],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr or result.stdout


def test_docs_suite_exists():
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "reproducing.md").is_file()
