"""Shared fixtures: small PMFs, tiny PET matrices and quick workloads.

The full SPEC-style PET (12 types x 8 machines, 500 samples per entry) is
overkill for unit tests; these fixtures build miniature but structurally
identical systems so the whole suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pmf import DiscretePMF
from repro.pet.builders import build_pet_from_means
from repro.pet.matrix import PETMatrix
from repro.workload.generator import WorkloadConfig, generate_workload


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def simple_pmf() -> DiscretePMF:
    """The execution-time PMF used in the paper's Figure 2 example."""
    return DiscretePMF.from_impulses({1: 0.25, 2: 0.50, 3: 0.25})


@pytest.fixture
def fig2_prev_pct() -> DiscretePMF:
    """The predecessor completion-time PMF of the Figure 2 example."""
    return DiscretePMF.from_impulses({3: 0.50, 4: 0.25, 5: 0.25})


def _deterministic_pmf(values: dict[int, float]) -> DiscretePMF:
    return DiscretePMF.from_impulses(values)


@pytest.fixture(scope="session")
def tiny_pet() -> PETMatrix:
    """A 3-task-type x 2-machine PET with hand-written, inconsistent PMFs.

    Machine "fast-a" is best for type "alpha", machine "fast-b" for "beta";
    "gamma" is long everywhere.  Deterministic (no sampling) so tests can
    reason about exact probabilities.
    """
    entries = {
        ("alpha", "fast-a"): _deterministic_pmf({4: 0.5, 5: 0.25, 6: 0.25}),
        ("alpha", "fast-b"): _deterministic_pmf({8: 0.5, 10: 0.5}),
        ("beta", "fast-a"): _deterministic_pmf({9: 0.5, 11: 0.5}),
        ("beta", "fast-b"): _deterministic_pmf({3: 0.5, 4: 0.25, 5: 0.25}),
        ("gamma", "fast-a"): _deterministic_pmf({12: 0.5, 14: 0.25, 16: 0.25}),
        ("gamma", "fast-b"): _deterministic_pmf({13: 0.5, 15: 0.25, 17: 0.25}),
    }
    return PETMatrix.from_mapping(entries, ["alpha", "beta", "gamma"], ["fast-a", "fast-b"])


@pytest.fixture(scope="session")
def small_gamma_pet() -> PETMatrix:
    """A sampled 4-type x 3-machine PET (small but realistic shapes)."""
    means = [
        [20.0, 35.0, 50.0],
        [45.0, 25.0, 60.0],
        [30.0, 40.0, 22.0],
        [55.0, 50.0, 45.0],
    ]
    return build_pet_from_means(
        means,
        task_types=["t0", "t1", "t2", "t3"],
        machine_names=["m0", "m1", "m2"],
        rng=7,
        n_samples=200,
    )


@pytest.fixture
def small_trace(small_gamma_pet):
    """An oversubscribed trace for the small gamma PET (fast to simulate)."""
    config = WorkloadConfig(num_tasks=120, time_span=600, beta=1.5)
    return generate_workload(config, small_gamma_pet, rng=11)


@pytest.fixture
def light_trace(small_gamma_pet):
    """A lightly loaded trace (most tasks should succeed)."""
    config = WorkloadConfig(num_tasks=40, time_span=1500, beta=3.0)
    return generate_workload(config, small_gamma_pet, rng=13)
