"""Tests for the PET matrix container."""

from __future__ import annotations

import pytest

from repro.core.pmf import DiscretePMF
from repro.pet.matrix import PETMatrix


class TestConstruction:
    def test_shape_validation_rows(self, tiny_pet):
        with pytest.raises(ValueError):
            PETMatrix(("a", "b"), tiny_pet.machine_names, tiny_pet.pmfs)

    def test_shape_validation_columns(self, tiny_pet):
        bad_rows = tuple(row[:1] for row in tiny_pet.pmfs)
        with pytest.raises(ValueError):
            PETMatrix(tiny_pet.task_types, tiny_pet.machine_names, bad_rows)

    def test_entries_must_be_pmfs(self, tiny_pet):
        bad = tuple(
            tuple("not a pmf" for _ in row) for row in tiny_pet.pmfs
        )
        with pytest.raises(TypeError):
            PETMatrix(tiny_pet.task_types, tiny_pet.machine_names, bad)

    def test_entries_must_be_normalised(self, tiny_pet):
        sub = DiscretePMF.from_impulses({1: 0.5})
        rows = tuple(tuple(sub for _ in row) for row in tiny_pet.pmfs)
        with pytest.raises(ValueError):
            PETMatrix(tiny_pet.task_types, tiny_pet.machine_names, rows)

    def test_from_mapping_missing_entry(self, tiny_pet):
        entries = {("alpha", "fast-a"): tiny_pet.get("alpha", "fast-a")}
        with pytest.raises(KeyError):
            PETMatrix.from_mapping(entries, ["alpha"], ["fast-a", "fast-b"])

    def test_from_mapping_round_trip(self, tiny_pet):
        entries = {
            (t, m): tiny_pet.get(t, m)
            for t in tiny_pet.task_types
            for m in tiny_pet.machine_names
        }
        rebuilt = PETMatrix.from_mapping(entries, tiny_pet.task_types, tiny_pet.machine_names)
        assert rebuilt.mean_execution_times() == pytest.approx(tiny_pet.mean_execution_times())


class TestAccess:
    def test_get_by_name_and_index(self, tiny_pet):
        by_name = tiny_pet.get("beta", "fast-b")
        by_index = tiny_pet.get(1, 1)
        assert by_name is by_index

    def test_getitem(self, tiny_pet):
        assert tiny_pet["alpha", "fast-a"] is tiny_pet.get(0, 0)

    def test_unknown_names_raise(self, tiny_pet):
        with pytest.raises(KeyError):
            tiny_pet.get("nonexistent", "fast-a")
        with pytest.raises(KeyError):
            tiny_pet.get("alpha", "nonexistent")

    def test_out_of_range_indices_raise(self, tiny_pet):
        with pytest.raises(IndexError):
            tiny_pet.get(10, 0)
        with pytest.raises(IndexError):
            tiny_pet.get(0, 10)

    def test_dimensions(self, tiny_pet):
        assert tiny_pet.num_task_types == 3
        assert tiny_pet.num_machines == 2


class TestStatistics:
    def test_mean_matrix_matches_entries(self, tiny_pet):
        means = tiny_pet.mean_execution_times()
        assert means.shape == (3, 2)
        assert means[0, 0] == pytest.approx(tiny_pet.get(0, 0).mean())

    def test_mean_execution_time_scalar(self, tiny_pet):
        assert tiny_pet.mean_execution_time("alpha", "fast-a") == pytest.approx(
            tiny_pet.get("alpha", "fast-a").mean()
        )

    def test_task_type_mean_is_row_average(self, tiny_pet):
        expected = tiny_pet.mean_execution_times()[0].mean()
        assert tiny_pet.task_type_mean("alpha") == pytest.approx(expected)

    def test_overall_mean(self, tiny_pet):
        assert tiny_pet.overall_mean() == pytest.approx(
            tiny_pet.mean_execution_times().mean()
        )

    def test_inconsistent_heterogeneity_detected(self, tiny_pet):
        assert tiny_pet.is_inconsistently_heterogeneous()

    def test_consistent_matrix_detected(self):
        fast = DiscretePMF.from_impulses({2: 1.0})
        slow = DiscretePMF.from_impulses({4: 1.0})
        pet = PETMatrix(("a", "b"), ("m0", "m1"), ((fast, slow), (fast, slow)))
        assert not pet.is_inconsistently_heterogeneous()


class TestSerialisation:
    def test_round_trip(self, tiny_pet):
        rebuilt = PETMatrix.from_dict(tiny_pet.to_dict())
        assert rebuilt.task_types == tiny_pet.task_types
        assert rebuilt.machine_names == tiny_pet.machine_names
        for t in range(tiny_pet.num_task_types):
            for m in range(tiny_pet.num_machines):
                assert rebuilt.get(t, m).allclose(tiny_pet.get(t, m))

    def test_to_dict_is_json_friendly(self, tiny_pet):
        import json

        payload = json.dumps(tiny_pet.to_dict())
        assert "alpha" in payload
