"""Tests for the SPEC-style and transcoding PET builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pet.builders import (
    TRANSCODING_MACHINE_NAMES,
    TRANSCODING_TASK_TYPES,
    build_pet_from_means,
    build_spec_pet,
    build_transcoding_pet,
    gamma_execution_pmf,
)
from repro.pet.spec_data import (
    SPEC_MACHINE_NAMES,
    SPEC_TASK_TYPE_NAMES,
    spec_mean_matrix,
)


class TestGammaEntry:
    def test_mean_close_to_target(self, rng):
        pmf = gamma_execution_pmf(80.0, shape=9.0, rng=rng, n_samples=2000)
        assert pmf.mean() == pytest.approx(80.0, rel=0.1)

    def test_proper_pmf(self, rng):
        pmf = gamma_execution_pmf(50.0, shape=3.0, rng=rng)
        assert pmf.is_normalised()
        assert pmf.support()[0] >= 1

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            gamma_execution_pmf(-1.0, shape=2.0, rng=rng)
        with pytest.raises(ValueError):
            gamma_execution_pmf(10.0, shape=0.0, rng=rng)

    def test_bin_width_coarsens_support(self, rng):
        fine = gamma_execution_pmf(100.0, shape=5.0, rng=np.random.default_rng(3))
        coarse = gamma_execution_pmf(
            100.0, shape=5.0, rng=np.random.default_rng(3), bin_width=10
        )
        assert np.count_nonzero(coarse.probs) < np.count_nonzero(fine.probs)
        times = np.nonzero(coarse.probs)[0] + coarse.offset
        assert np.all(times % 10 == 0)


class TestBuildFromMeans:
    def test_shape_and_names(self, small_gamma_pet):
        assert small_gamma_pet.num_task_types == 4
        assert small_gamma_pet.num_machines == 3
        assert small_gamma_pet.task_types == ("t0", "t1", "t2", "t3")

    def test_entry_means_track_target_means(self, small_gamma_pet):
        targets = np.array(
            [
                [20.0, 35.0, 50.0],
                [45.0, 25.0, 60.0],
                [30.0, 40.0, 22.0],
                [55.0, 50.0, 45.0],
            ]
        )
        measured = small_gamma_pet.mean_execution_times()
        assert np.allclose(measured, targets, rtol=0.35)

    def test_mismatched_shape_rejected(self):
        with pytest.raises(ValueError):
            build_pet_from_means(
                [[10.0, 20.0]], task_types=["a", "b"], machine_names=["m0", "m1"], rng=1
            )

    def test_non_positive_means_rejected(self):
        with pytest.raises(ValueError):
            build_pet_from_means(
                [[10.0, -5.0]], task_types=["a"], machine_names=["m0", "m1"], rng=1
            )

    def test_invalid_shape_range_rejected(self):
        with pytest.raises(ValueError):
            build_pet_from_means(
                [[10.0]], task_types=["a"], machine_names=["m0"], rng=1, shape_range=(0, 0)
            )

    def test_reproducible_given_seed(self):
        a = build_pet_from_means(
            [[30.0, 40.0]], task_types=["a"], machine_names=["m0", "m1"], rng=42
        )
        b = build_pet_from_means(
            [[30.0, 40.0]], task_types=["a"], machine_names=["m0", "m1"], rng=42
        )
        assert a.get(0, 0).allclose(b.get(0, 0))
        assert a.get(0, 1).allclose(b.get(0, 1))


class TestSpecPet:
    def test_spec_mean_matrix_shape(self):
        assert spec_mean_matrix().shape == (12, 8)
        assert len(SPEC_TASK_TYPE_NAMES) == 12
        assert len(SPEC_MACHINE_NAMES) == 8

    def test_spec_means_in_paper_range(self):
        means = spec_mean_matrix()
        assert means.min() >= 50.0
        assert means.max() <= 200.0

    def test_spec_means_are_inconsistently_heterogeneous(self):
        best_machine_per_type = spec_mean_matrix().argmin(axis=1)
        assert len(set(best_machine_per_type.tolist())) > 1

    def test_build_spec_pet(self):
        pet = build_spec_pet(rng=5, n_samples=100)
        assert pet.num_task_types == 12
        assert pet.num_machines == 8
        assert pet.is_inconsistently_heterogeneous()


class TestTranscodingPet:
    def test_dimensions(self):
        pet = build_transcoding_pet(rng=5, n_samples=100)
        assert pet.task_types == TRANSCODING_TASK_TYPES
        assert pet.machine_names == TRANSCODING_MACHINE_NAMES

    def test_gpu_affinity_structure(self):
        """The GPU VM must be the fastest for codec changes but not for
        bitrate changes — the inconsistent affinity Figure 9 relies on."""
        pet = build_transcoding_pet(rng=5, n_samples=300)
        means = pet.mean_execution_times()
        gpu = pet.machine_index("gpu")
        codec = pet.task_type_index("change-codec")
        bitrate = pet.task_type_index("change-bitrate")
        assert means[codec].argmin() == gpu
        assert means[bitrate].argmin() != gpu
