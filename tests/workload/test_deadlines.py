"""Tests for deadline assignment (Section VI-B)."""

from __future__ import annotations

import pytest

from repro.workload.deadlines import DeadlineModel, deadline_for


class TestDeadlineFor:
    def test_formula(self, tiny_pet):
        arrival = 100
        task_type = 0
        beta = 2.0
        expected = round(
            arrival + tiny_pet.task_type_mean(task_type) + beta * tiny_pet.overall_mean()
        )
        assert deadline_for(arrival, task_type, tiny_pet, beta=beta) == expected

    def test_deadline_always_after_arrival(self, tiny_pet):
        for arrival in (0, 5, 1000):
            for task_type in range(tiny_pet.num_task_types):
                assert deadline_for(arrival, task_type, tiny_pet, beta=0.5) > arrival

    def test_zero_beta_gives_type_mean_slack(self, tiny_pet):
        deadline = deadline_for(0, 1, tiny_pet, beta=0.0)
        assert deadline == round(tiny_pet.task_type_mean(1))

    def test_negative_beta_rejected(self, tiny_pet):
        with pytest.raises(ValueError):
            deadline_for(0, 0, tiny_pet, beta=-1.0)

    def test_longer_task_types_get_later_deadlines(self, tiny_pet):
        # "gamma" has the largest mean execution time in the tiny PET.
        short = deadline_for(0, tiny_pet.task_type_index("alpha"), tiny_pet, beta=1.0)
        long = deadline_for(0, tiny_pet.task_type_index("gamma"), tiny_pet, beta=1.0)
        assert long > short


class TestDeadlineModel:
    def test_matches_function(self, tiny_pet):
        model = DeadlineModel(tiny_pet, beta=1.5)
        for arrival in (0, 50, 500):
            for task_type in range(tiny_pet.num_task_types):
                assert model(arrival, task_type) == deadline_for(
                    arrival, task_type, tiny_pet, beta=1.5
                )

    def test_beta_property(self, tiny_pet):
        assert DeadlineModel(tiny_pet, beta=2.5).beta == 2.5

    def test_invalid_type_index(self, tiny_pet):
        model = DeadlineModel(tiny_pet)
        with pytest.raises(IndexError):
            model(0, 99)

    def test_negative_beta_rejected(self, tiny_pet):
        with pytest.raises(ValueError):
            DeadlineModel(tiny_pet, beta=-0.1)
