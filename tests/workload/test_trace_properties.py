"""Property-based tests (Hypothesis) for workload-trace serialisation.

Three families of properties:

* **round-trip** — ``trace_from_dict(trace_to_dict(t))`` reproduces any
  generated trace exactly (tasks, config, type count), and the canonical
  content hash is invariant under JSON re-encoding and key order;
* **invariants** — loaded traces are arrival-ordered and every task's
  deadline lies strictly after its arrival, regardless of the order the
  payload listed the tasks in;
* **rejection** — corrupted payloads (missing fields, NaN/inf values,
  non-integral times, inverted deadlines, duplicate ids, bad version) are
  rejected with errors naming the offending task index.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.generator import WorkloadConfig, WorkloadTrace
from repro.workload.spec import TaskSpec
from repro.workload.traces import (
    trace_content_hash,
    trace_from_dict,
    trace_to_dict,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def task_specs(draw, *, max_types: int = 5) -> list[TaskSpec]:
    """A list of distinct-id task specs with valid arrival/deadline pairs."""
    n = draw(st.integers(min_value=0, max_value=30))
    specs = []
    for task_id in range(n):
        arrival = draw(st.integers(min_value=0, max_value=5000))
        slack = draw(st.integers(min_value=1, max_value=2000))
        task_type = draw(st.integers(min_value=0, max_value=max_types - 1))
        specs.append(
            TaskSpec(
                arrival=arrival,
                task_id=task_id,
                task_type=task_type,
                deadline=arrival + slack,
            )
        )
    return specs


@st.composite
def workload_traces(draw) -> WorkloadTrace:
    specs = sorted(draw(task_specs()))
    config = WorkloadConfig(
        num_tasks=max(1, len(specs)),
        time_span=draw(st.integers(min_value=1, max_value=10000)),
        beta=draw(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)
        ),
        variance_fraction=draw(
            st.floats(
                min_value=0.01, max_value=5.0, allow_nan=False, allow_infinity=False
            )
        ),
    )
    num_types = 1 + max((s.task_type for s in specs), default=0)
    return WorkloadTrace(tuple(specs), config, num_task_types=num_types)


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------


class TestRoundTrip:
    @given(trace=workload_traces())
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip_is_exact(self, trace):
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert list(rebuilt) == list(trace)
        assert rebuilt.config == trace.config
        assert rebuilt.num_task_types == trace.num_task_types

    @given(trace=workload_traces())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_through_json_text(self, trace):
        payload = json.loads(json.dumps(trace_to_dict(trace)))
        rebuilt = trace_from_dict(payload)
        assert list(rebuilt) == list(trace)

    @given(trace=workload_traces())
    @settings(max_examples=30, deadline=None)
    def test_content_hash_invariant_under_reencoding(self, trace):
        rebuilt = trace_from_dict(json.loads(json.dumps(trace_to_dict(trace))))
        assert trace_content_hash(rebuilt) == trace_content_hash(trace)

    @given(trace=workload_traces())
    @settings(max_examples=30, deadline=None)
    def test_shuffled_payload_restores_arrival_order(self, trace):
        payload = trace_to_dict(trace)
        payload["tasks"] = list(reversed(payload["tasks"]))
        rebuilt = trace_from_dict(payload)
        arrivals = [t.arrival for t in rebuilt]
        assert arrivals == sorted(arrivals)
        assert sorted(t.task_id for t in rebuilt) == sorted(t.task_id for t in trace)


# ----------------------------------------------------------------------
# Ordering / validity invariants
# ----------------------------------------------------------------------


class TestInvariants:
    @given(trace=workload_traces())
    @settings(max_examples=60, deadline=None)
    def test_loaded_trace_is_arrival_ordered_with_positive_slack(self, trace):
        rebuilt = trace_from_dict(trace_to_dict(trace))
        arrivals = [t.arrival for t in rebuilt]
        assert arrivals == sorted(arrivals)
        for task in rebuilt:
            assert task.deadline > task.arrival
            assert task.arrival >= 0
            assert 0 <= task.task_type < rebuilt.num_task_types


# ----------------------------------------------------------------------
# Rejection of corrupted payloads
# ----------------------------------------------------------------------


def _base_payload() -> dict:
    trace = WorkloadTrace(
        (
            TaskSpec(arrival=0, task_id=0, task_type=0, deadline=10),
            TaskSpec(arrival=5, task_id=1, task_type=1, deadline=25),
            TaskSpec(arrival=9, task_id=2, task_type=0, deadline=30),
        ),
        WorkloadConfig(num_tasks=3, time_span=100, beta=1.0),
        num_task_types=2,
    )
    return trace_to_dict(trace)


class TestRejection:
    def test_wrong_format_marker(self):
        with pytest.raises(ValueError, match="not a serialised workload trace"):
            trace_from_dict({"format": "something-else"})

    def test_non_mapping_payload(self):
        with pytest.raises(ValueError, match="not a serialised workload trace"):
            trace_from_dict([1, 2, 3])

    @given(version=st.integers().filter(lambda v: v != 1))
    @settings(max_examples=20, deadline=None)
    def test_mis_versioned_payload(self, version):
        payload = _base_payload()
        payload["version"] = version
        with pytest.raises(ValueError, match="unsupported trace version"):
            trace_from_dict(payload)

    @pytest.mark.parametrize("version", [None, [1], {"v": 1}, "one"])
    def test_non_numeric_version_rejected_cleanly(self, version):
        """A bad version must raise the promised ValueError, not TypeError."""
        payload = _base_payload()
        payload["version"] = version
        with pytest.raises(ValueError, match="unsupported trace version"):
            trace_from_dict(payload)

    @pytest.mark.parametrize("field", ["task_id", "task_type", "arrival", "deadline"])
    def test_missing_task_field_names_index(self, field):
        payload = _base_payload()
        del payload["tasks"][1][field]
        with pytest.raises(ValueError, match=rf"task 1: missing field '{field}'"):
            trace_from_dict(payload)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    @pytest.mark.parametrize("field", ["arrival", "deadline"])
    def test_non_finite_time_names_index(self, field, bad):
        payload = _base_payload()
        payload["tasks"][2][field] = bad
        with pytest.raises(ValueError, match=r"task 2: .* not finite"):
            trace_from_dict(payload)

    @pytest.mark.parametrize("bad", ["17", None, [3], {"t": 1}, True])
    def test_non_numeric_field_names_index(self, bad):
        payload = _base_payload()
        payload["tasks"][0]["arrival"] = bad
        with pytest.raises(ValueError, match=r"task 0: .*'arrival'"):
            trace_from_dict(payload)

    def test_fractional_time_rejected(self):
        payload = _base_payload()
        payload["tasks"][1]["deadline"] = 25.5
        with pytest.raises(ValueError, match=r"task 1: .*integer"):
            trace_from_dict(payload)

    def test_deadline_not_after_arrival_names_index(self):
        payload = _base_payload()
        payload["tasks"][1]["deadline"] = payload["tasks"][1]["arrival"]
        with pytest.raises(ValueError, match=r"task 1: deadline .* strictly"):
            trace_from_dict(payload)

    def test_negative_arrival_names_index(self):
        payload = _base_payload()
        payload["tasks"][0]["arrival"] = -3
        with pytest.raises(ValueError, match=r"task 0: arrival must be non-negative"):
            trace_from_dict(payload)

    def test_duplicate_task_id_names_index(self):
        payload = _base_payload()
        payload["tasks"][2]["task_id"] = payload["tasks"][0]["task_id"]
        with pytest.raises(ValueError, match=r"task 2: duplicate task_id"):
            trace_from_dict(payload)

    def test_task_record_not_an_object(self):
        payload = _base_payload()
        payload["tasks"][1] = 42
        with pytest.raises(ValueError, match=r"task 1: record is not an object"):
            trace_from_dict(payload)

    def test_undersized_num_task_types(self):
        payload = _base_payload()
        payload["num_task_types"] = 1
        with pytest.raises(ValueError, match=r"num_task_types \(1\) does not cover"):
            trace_from_dict(payload)

    def test_missing_task_list(self):
        payload = _base_payload()
        del payload["tasks"]
        with pytest.raises(ValueError, match="no task list"):
            trace_from_dict(payload)

    def test_invalid_config(self):
        payload = _base_payload()
        payload["config"]["num_tasks"] = 0
        with pytest.raises(ValueError, match="invalid trace config"):
            trace_from_dict(payload)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_single_field_corruption_never_passes_silently(self, data):
        """Corrupting one time field either errors or round-trips the value."""
        payload = _base_payload()
        index = data.draw(st.integers(min_value=0, max_value=2))
        field = data.draw(st.sampled_from(["arrival", "deadline"]))
        value = data.draw(
            st.one_of(
                st.floats(),  # includes NaN/inf/fractional
                st.integers(min_value=-(10**6), max_value=10**6),
                st.text(max_size=3),
                st.none(),
            )
        )
        payload["tasks"][index][field] = value
        try:
            rebuilt = trace_from_dict(payload)
        except ValueError as exc:
            assert f"task {index}" in str(exc)
        else:
            match = [t for t in rebuilt if t.task_id == payload["tasks"][index]["task_id"]]
            assert len(match) == 1
            assert getattr(match[0], field) == int(value)
            assert not isinstance(value, str)
            assert value == int(value) and math.isfinite(value)
