"""Tests for workload trace persistence."""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.workload.generator import WorkloadConfig, WorkloadTrace
from repro.workload.scale import scale_trace
from repro.workload.traces import load_trace, save_trace, trace_from_dict, trace_to_dict


class TestRoundTrip:
    def test_dict_round_trip(self, small_trace):
        rebuilt = trace_from_dict(trace_to_dict(small_trace))
        assert list(rebuilt) == list(small_trace)
        assert rebuilt.config == small_trace.config
        assert rebuilt.num_task_types == small_trace.num_task_types

    def test_file_round_trip(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "nested" / "trace.json")
        assert path.exists()
        loaded = load_trace(path)
        assert list(loaded) == list(small_trace)

    def test_serialised_payload_is_plain_json(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-workload-trace"
        assert len(payload["tasks"]) == len(small_trace)


class TestStreamingSave:
    """``save_trace`` streams task by task but keeps the exact byte format."""

    def test_bytes_identical_to_full_dump(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.json")
        assert path.read_text() == json.dumps(trace_to_dict(small_trace), indent=2)

    def test_empty_trace_bytes_identical(self, tmp_path):
        trace = WorkloadTrace((), WorkloadConfig(num_tasks=1, time_span=1))
        path = save_trace(trace, tmp_path / "empty.json")
        assert path.read_text() == json.dumps(trace_to_dict(trace), indent=2)

    def test_large_trace_peak_memory_is_bounded(self, tmp_path):
        """The 100k-task fix: writing must not materialise the full dict.

        A 30k-task trace serialises to ~3 MB of JSON (tens of MB as a
        transient dict-of-dicts); streaming keeps peak allocations during
        the write in the tens of kilobytes.
        """
        trace = scale_trace(seed=11, num_tasks=30_000)
        path = tmp_path / "big.json"
        tracemalloc.start()
        try:
            save_trace(trace, path)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        file_size = path.stat().st_size
        assert file_size > 1_000_000
        assert peak < 1_000_000
        assert peak < file_size / 3
        # And the streamed file still round-trips exactly.
        assert list(load_trace(path)) == list(trace)


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            trace_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, small_trace):
        payload = trace_to_dict(small_trace)
        payload["version"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(payload)

    def test_tasks_are_resorted_on_load(self, small_trace):
        payload = trace_to_dict(small_trace)
        payload["tasks"] = list(reversed(payload["tasks"]))
        rebuilt = trace_from_dict(payload)
        arrivals = [t.arrival for t in rebuilt]
        assert arrivals == sorted(arrivals)
