"""Tests for workload trace persistence."""

from __future__ import annotations

import json

import pytest

from repro.workload.traces import load_trace, save_trace, trace_from_dict, trace_to_dict


class TestRoundTrip:
    def test_dict_round_trip(self, small_trace):
        rebuilt = trace_from_dict(trace_to_dict(small_trace))
        assert list(rebuilt) == list(small_trace)
        assert rebuilt.config == small_trace.config
        assert rebuilt.num_task_types == small_trace.num_task_types

    def test_file_round_trip(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "nested" / "trace.json")
        assert path.exists()
        loaded = load_trace(path)
        assert list(loaded) == list(small_trace)

    def test_serialised_payload_is_plain_json(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-workload-trace"
        assert len(payload["tasks"]) == len(small_trace)


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            trace_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, small_trace):
        payload = trace_to_dict(small_trace)
        payload["version"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(payload)

    def test_tasks_are_resorted_on_load(self, small_trace):
        payload = trace_to_dict(small_trace)
        payload["tasks"] = list(reversed(payload["tasks"]))
        rebuilt = trace_from_dict(payload)
        arrivals = [t.arrival for t in rebuilt]
        assert arrivals == sorted(arrivals)
