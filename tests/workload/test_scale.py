"""Tests for the vectorised production-scale trace builder."""

from __future__ import annotations

import time

import pytest

from repro.pet.builders import build_spec_pet
from repro.workload import TRACE_BUILDERS, build_named_trace
from repro.workload.scale import (
    SCALE_TRACE_SEED,
    ScaleTraceConfig,
    generate_scale_trace,
    scale_trace,
)


@pytest.fixture(scope="module")
def spec_pet():
    return build_spec_pet(rng=SCALE_TRACE_SEED)


class TestScaleTrace:
    def test_deterministic_per_seed(self):
        a = scale_trace(seed=7, num_tasks=500)
        b = scale_trace(seed=7, num_tasks=500)
        c = scale_trace(seed=8, num_tasks=500)
        assert a.tasks == b.tasks
        assert a.tasks != c.tasks

    def test_trace_invariants(self):
        trace = scale_trace(seed=3, num_tasks=1000)
        assert len(trace) == 1000
        arrivals = [t.arrival for t in trace]
        assert arrivals == sorted(arrivals)
        assert all(t.deadline > t.arrival for t in trace)
        assert sorted(t.task_id for t in trace) == list(range(1000))
        assert trace.num_task_types == 12  # the SPECint-style PET

    def test_load_factor_calibration_holds_across_scales(self, spec_pet):
        """The same load factor at 2k and at 20k tasks: a small slice of the
        scale trace exercises the same operating regime as the full one."""
        for n in (2_000, 20_000):
            trace = scale_trace(seed=5, num_tasks=n)
            assert trace.offered_load(spec_pet) == pytest.approx(1.15, abs=0.03)

    def test_load_factor_knob(self, spec_pet):
        trace = generate_scale_trace(
            ScaleTraceConfig(num_tasks=5_000, load_factor=2.0), rng=5, pet=spec_pet
        )
        assert trace.offered_load(spec_pet) == pytest.approx(2.0, abs=0.06)

    def test_generation_is_vectorised_fast(self):
        """100k tasks in well under the per-task-loop regime (~seconds)."""
        start = time.perf_counter()
        trace = scale_trace(seed=1, num_tasks=100_000)
        elapsed = time.perf_counter() - start
        assert len(trace) == 100_000
        assert elapsed < 5.0

    def test_registered_as_named_builder(self):
        assert "scale" in TRACE_BUILDERS
        via_registry = build_named_trace("scale", seed=9, num_tasks=300)
        direct = scale_trace(seed=9, num_tasks=300)
        assert via_registry.tasks == direct.tasks

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_tasks": 0},
            {"load_factor": 0.0},
            {"beta": -1.0},
            {"variance_fraction": 0.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScaleTraceConfig(**kwargs)
