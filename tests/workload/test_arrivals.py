"""Tests for gamma inter-arrival generation (Section VI-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.arrivals import (
    gamma_interarrival_times,
    generate_arrival_times,
    spread_tasks_over_types,
)


class TestGammaInterarrivals:
    def test_mean_matches_target(self, rng):
        gaps = gamma_interarrival_times(20_000, mean=12.0, rng=rng)
        assert gaps.mean() == pytest.approx(12.0, rel=0.05)

    def test_variance_fraction_controls_spread(self, rng):
        tight = gamma_interarrival_times(20_000, mean=10.0, rng=np.random.default_rng(1), variance_fraction=0.1)
        loose = gamma_interarrival_times(20_000, mean=10.0, rng=np.random.default_rng(1), variance_fraction=2.0)
        assert tight.var() < loose.var()
        assert tight.var() == pytest.approx(1.0, rel=0.1)  # 10% of the mean of 10

    def test_zero_count(self, rng):
        assert gamma_interarrival_times(0, mean=5.0, rng=rng).size == 0

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            gamma_interarrival_times(-1, mean=5.0, rng=rng)
        with pytest.raises(ValueError):
            gamma_interarrival_times(5, mean=0.0, rng=rng)
        with pytest.raises(ValueError):
            gamma_interarrival_times(5, mean=5.0, rng=rng, variance_fraction=0.0)

    def test_all_positive(self, rng):
        gaps = gamma_interarrival_times(1000, mean=3.0, rng=rng)
        assert np.all(gaps > 0)


class TestSpreadTasksOverTypes:
    def test_even_split(self):
        assert spread_tasks_over_types(12, 4) == [3, 3, 3, 3]

    def test_remainder_goes_to_first_types(self):
        assert spread_tasks_over_types(10, 4) == [3, 3, 2, 2]

    def test_total_preserved(self):
        for total in (0, 1, 7, 100, 801):
            for types in (1, 3, 12):
                assert sum(spread_tasks_over_types(total, types)) == total

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            spread_tasks_over_types(-1, 3)
        with pytest.raises(ValueError):
            spread_tasks_over_types(5, 0)


class TestGenerateArrivalTimes:
    def test_count_and_sortedness(self):
        arrivals = generate_arrival_times(200, 1000, 4, rng=3)
        assert len(arrivals) == 200
        times = [t for t, _ in arrivals]
        assert times == sorted(times)

    def test_all_types_present(self):
        arrivals = generate_arrival_times(120, 1000, 6, rng=3)
        assert {tt for _, tt in arrivals} == set(range(6))

    def test_types_roughly_balanced(self):
        arrivals = generate_arrival_times(600, 2000, 3, rng=3)
        counts = np.bincount([tt for _, tt in arrivals], minlength=3)
        assert counts.min() >= 150

    def test_arrival_times_positive_integers(self):
        arrivals = generate_arrival_times(100, 500, 2, rng=3)
        assert all(isinstance(t, int) and t >= 1 for t, _ in arrivals)

    def test_span_roughly_respected(self):
        arrivals = generate_arrival_times(400, 2000, 4, rng=3)
        last = max(t for t, _ in arrivals)
        assert 1500 <= last <= 2600

    def test_reproducibility(self):
        a = generate_arrival_times(50, 500, 3, rng=9)
        b = generate_arrival_times(50, 500, 3, rng=9)
        assert a == b

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            generate_arrival_times(10, 0, 2, rng=1)
