"""Tests for workload trace generation."""

from __future__ import annotations

import pytest

from repro.workload.generator import WorkloadConfig, WorkloadTrace, generate_workload
from repro.workload.spec import TaskSpec


class TestTaskSpec:
    def test_valid_spec(self):
        spec = TaskSpec(arrival=10, task_id=1, task_type=2, deadline=50)
        assert spec.slack == 40

    def test_deadline_must_follow_arrival(self):
        with pytest.raises(ValueError):
            TaskSpec(arrival=10, task_id=1, task_type=0, deadline=10)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(arrival=-1, task_id=1, task_type=0, deadline=10)

    def test_negative_type_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(arrival=0, task_id=1, task_type=-1, deadline=10)

    def test_ordering_by_arrival(self):
        early = TaskSpec(arrival=5, task_id=2, task_type=0, deadline=20)
        late = TaskSpec(arrival=9, task_id=1, task_type=0, deadline=20)
        assert sorted([late, early])[0] is early


class TestWorkloadConfig:
    def test_arrival_rate(self):
        config = WorkloadConfig(num_tasks=300, time_span=1500)
        assert config.arrival_rate == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_tasks=0, time_span=100)
        with pytest.raises(ValueError):
            WorkloadConfig(num_tasks=10, time_span=0)
        with pytest.raises(ValueError):
            WorkloadConfig(num_tasks=10, time_span=100, beta=-1)
        with pytest.raises(ValueError):
            WorkloadConfig(num_tasks=10, time_span=100, variance_fraction=0)


class TestGenerateWorkload:
    def test_task_count_and_order(self, small_gamma_pet):
        config = WorkloadConfig(num_tasks=100, time_span=800)
        trace = generate_workload(config, small_gamma_pet, rng=1)
        assert len(trace) == 100
        arrivals = [t.arrival for t in trace]
        assert arrivals == sorted(arrivals)

    def test_unique_ids(self, small_gamma_pet):
        trace = generate_workload(WorkloadConfig(80, 800), small_gamma_pet, rng=1)
        ids = [t.task_id for t in trace]
        assert len(set(ids)) == len(ids)

    def test_deadlines_follow_formula(self, small_gamma_pet):
        config = WorkloadConfig(num_tasks=60, time_span=600, beta=2.0)
        trace = generate_workload(config, small_gamma_pet, rng=2)
        avg_all = small_gamma_pet.overall_mean()
        for task in trace:
            expected = round(
                task.arrival
                + small_gamma_pet.task_type_mean(task.task_type)
                + 2.0 * avg_all
            )
            assert task.deadline == expected

    def test_all_task_types_used(self, small_gamma_pet):
        trace = generate_workload(WorkloadConfig(200, 800), small_gamma_pet, rng=3)
        assert set(t.task_type for t in trace) == set(range(small_gamma_pet.num_task_types))

    def test_task_type_subset(self, small_gamma_pet):
        trace = generate_workload(
            WorkloadConfig(60, 600), small_gamma_pet, rng=3, task_types=[1, 3]
        )
        assert set(t.task_type for t in trace) <= {1, 3}

    def test_invalid_task_type_subset(self, small_gamma_pet):
        with pytest.raises(IndexError):
            generate_workload(WorkloadConfig(10, 100), small_gamma_pet, rng=1, task_types=[99])

    def test_reproducibility(self, small_gamma_pet):
        a = generate_workload(WorkloadConfig(50, 500), small_gamma_pet, rng=7)
        b = generate_workload(WorkloadConfig(50, 500), small_gamma_pet, rng=7)
        assert list(a) == list(b)

    def test_different_seeds_differ(self, small_gamma_pet):
        a = generate_workload(WorkloadConfig(50, 500), small_gamma_pet, rng=7)
        b = generate_workload(WorkloadConfig(50, 500), small_gamma_pet, rng=8)
        assert list(a) != list(b)

    def test_offered_load_scales_with_task_count(self, small_gamma_pet):
        light = generate_workload(WorkloadConfig(40, 1000), small_gamma_pet, rng=4)
        heavy = generate_workload(WorkloadConfig(160, 1000), small_gamma_pet, rng=4)
        assert heavy.offered_load(small_gamma_pet) > 2 * light.offered_load(small_gamma_pet)

    def test_type_counts(self, small_gamma_pet):
        trace = generate_workload(WorkloadConfig(120, 900), small_gamma_pet, rng=5)
        counts = trace.type_counts()
        assert counts.sum() == 120
        assert counts.size == small_gamma_pet.num_task_types


class TestWorkloadTrace:
    def test_indexing_and_iteration(self, small_trace):
        assert small_trace[0].task_id == next(iter(small_trace)).task_id

    def test_unsorted_trace_rejected(self, small_gamma_pet):
        specs = (
            TaskSpec(arrival=50, task_id=0, task_type=0, deadline=100),
            TaskSpec(arrival=10, task_id=1, task_type=0, deadline=100),
        )
        with pytest.raises(ValueError):
            WorkloadTrace(specs, WorkloadConfig(2, 100))

    def test_makespan_lower_bound(self, small_trace):
        assert small_trace.makespan_lower_bound == small_trace[len(small_trace) - 1].arrival

    def test_tasks_of_type(self, small_trace):
        for task in small_trace.tasks_of_type(0):
            assert task.task_type == 0
