"""Tests for the multi-trial experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SeriesResult, TrialMetrics, run_series
from repro.heuristics.registry import make_heuristic
from repro.workload.generator import WorkloadConfig


@pytest.fixture
def quick_config() -> ExperimentConfig:
    return ExperimentConfig(trials=2, seed=99, warmup_tasks=5, cooldown_tasks=5)


@pytest.fixture
def quick_workload() -> WorkloadConfig:
    return WorkloadConfig(num_tasks=60, time_span=400, beta=1.5)


class TestRunSeries:
    def test_runs_requested_trials(self, small_gamma_pet, quick_config, quick_workload):
        series = run_series(
            label="demo",
            pet=small_gamma_pet,
            heuristic_factory=lambda: make_heuristic("MM"),
            workload=quick_workload,
            config=quick_config,
        )
        assert len(series.trials) == 2
        for trial in series.trials:
            assert 0.0 <= trial.robustness_percent <= 100.0
            assert trial.total_tasks == 60
            assert len(trial.per_type_completion_percent) == small_gamma_pet.num_task_types

    def test_reproducible_with_same_seed(self, small_gamma_pet, quick_config, quick_workload):
        def run():
            return run_series(
                label="demo",
                pet=small_gamma_pet,
                heuristic_factory=lambda: make_heuristic("MM"),
                workload=quick_workload,
                config=quick_config,
            )

        first, second = run(), run()
        assert [t.robustness_percent for t in first.trials] == [
            t.robustness_percent for t in second.trials
        ]

    def test_trials_use_distinct_workloads(self, small_gamma_pet, quick_config, quick_workload):
        series = run_series(
            label="demo",
            pet=small_gamma_pet,
            heuristic_factory=lambda: make_heuristic("MM"),
            workload=quick_workload,
            config=quick_config,
        )
        # Different arrival streams almost surely give different costs.
        costs = [t.total_cost for t in series.trials]
        assert costs[0] != costs[1]

    def test_summaries(self, small_gamma_pet, quick_config, quick_workload):
        series = run_series(
            label="demo",
            pet=small_gamma_pet,
            heuristic_factory=lambda: make_heuristic("MM"),
            workload=quick_workload,
            config=quick_config,
        )
        robustness = series.robustness()
        assert robustness.n == 2
        assert series.mean_robustness() == pytest.approx(robustness.mean)
        row = series.as_row()
        assert row["label"] == "demo"
        assert row["trials"] == 2

    def test_cost_per_percent_ignores_infinite_trials(self):
        series = SeriesResult(label="x")
        series.trials.append(
            TrialMetrics(
                robustness_percent=0.0,
                fairness_variance=0.0,
                total_cost=1.0,
                cost_per_percent_on_time=float("inf"),
                completed_on_time=0,
                total_tasks=10,
                per_type_completion_percent=(0.0,),
            )
        )
        series.trials.append(
            TrialMetrics(
                robustness_percent=50.0,
                fairness_variance=0.0,
                total_cost=1.0,
                cost_per_percent_on_time=0.02,
                completed_on_time=5,
                total_tasks=10,
                per_type_completion_percent=(50.0,),
            )
        )
        assert series.cost_per_percent().mean == pytest.approx(0.02)
        assert np.isfinite(series.cost_per_percent().mean)
