"""Tests for experiment-result persistence (CSV/JSON/text artefacts)."""

from __future__ import annotations

import csv
import json

import pytest

from repro.experiments.reporting import rows_to_csv, rows_to_json, save_figure_result


class FakeResult:
    """Minimal stand-in implementing the figure-result protocol."""

    def rows(self):
        return [["34k", "PAM", 61.5], ["34k", "MM", 24.0]]

    def to_text(self):
        return "fake figure table"


class TestRowsToCsv:
    def test_writes_header_and_rows(self, tmp_path):
        path = rows_to_csv(["level", "heuristic", "robustness"], FakeResult().rows(), tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["level", "heuristic", "robustness"]
        assert rows[1][:2] == ["34k", "PAM"]
        assert len(rows) == 3

    def test_creates_parent_directories(self, tmp_path):
        path = rows_to_csv(["a"], [[1]], tmp_path / "deep" / "dir" / "out.csv")
        assert path.exists()

    def test_row_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_csv(["a", "b"], [[1]], tmp_path / "out.csv")

    def test_empty_header_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_csv([], [], tmp_path / "out.csv")


class TestRowsToJson:
    def test_records_keyed_by_header(self, tmp_path):
        path = rows_to_json(["level", "heuristic", "robustness"], FakeResult().rows(), tmp_path / "out.json")
        records = json.loads(path.read_text())
        assert records[0]["heuristic"] == "PAM"
        assert records[1]["robustness"] == 24.0

    def test_row_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_json(["a"], [[1, 2]], tmp_path / "out.json")


class TestSaveFigureResult:
    def test_writes_all_artefacts(self, tmp_path):
        paths = save_figure_result(
            FakeResult(), ["level", "heuristic", "robustness"], tmp_path, name="figure7"
        )
        assert set(paths) == {"text", "csv", "json"}
        assert paths["text"].read_text().startswith("fake figure table")
        assert paths["csv"].name == "figure7.csv"
        assert json.loads(paths["json"].read_text())
