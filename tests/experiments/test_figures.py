"""Smoke tests for every figure driver (tiny scale).

These are integration tests of the whole stack: PET builders, workload
generation, simulator, heuristics, pruning and the experiment harness.  They
use a deliberately tiny :class:`ExperimentConfig` so the full file runs in
tens of seconds; the structural assertions (keys present, values in range)
are what matter here — the paper-shape assertions live in
``tests/test_paper_claims.py`` and the benchmark harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
)

TINY = ExperimentConfig(trials=1, seed=5, warmup_tasks=10, cooldown_tasks=10, task_scale=0.3)


@pytest.fixture(scope="module")
def fig7_result():
    return run_fig7(TINY, levels=("34k",), heuristics=("PAM", "MM"))


class TestFig4:
    def test_structure_and_ranges(self):
        result = run_fig4(TINY, level="34k", lambdas=(0.5, 0.9))
        assert set(result.series) == {
            (0.5, "default"),
            (0.5, "schmitt"),
            (0.9, "default"),
            (0.9, "schmitt"),
        }
        for series in result.series.values():
            assert 0.0 <= series.mean_robustness() <= 100.0
        assert result.best_lambda("schmitt") in (0.5, 0.9)
        assert "Figure 4" in result.to_text()
        assert len(result.rows()) == 2


class TestFig5:
    def test_structure(self):
        result = run_fig5(TINY, level="34k", dropping_thresholds=(0.5,), gap_step=0.2)
        defers = result.defer_values(0.5)
        assert defers[0] == pytest.approx(0.5)
        assert all(d <= 0.9 + 1e-9 for d in defers)
        assert "defer" in result.to_text().lower()
        for (_, _), series in result.series.items():
            assert 0.0 <= series.mean_robustness() <= 100.0


class TestFig6:
    def test_structure(self):
        result = run_fig6(TINY, levels=("34k",), fairness_factors=(0.0, 0.05))
        assert result.factors("34k") == [0.0, 0.05]
        assert result.fairness_variance("34k", 0.05) >= 0.0
        assert 0.0 <= result.robustness("34k", 0.0) <= 100.0
        assert "fairness" in result.to_text().lower()


class TestFig7:
    def test_structure(self, fig7_result):
        assert fig7_result.heuristics() == ["MM", "PAM"]
        assert fig7_result.levels() == ["34k"]
        ranking = fig7_result.ranking("34k")
        assert set(ranking) == {"MM", "PAM"}
        assert len(fig7_result.rows()) == 2

    def test_pam_wins_even_at_tiny_scale(self, fig7_result):
        assert fig7_result.robustness("34k", "PAM") >= fig7_result.robustness("34k", "MM")


class TestFig8:
    def test_structure(self):
        result = run_fig8(TINY, levels=("34k",), heuristics=("PAM", "MM"))
        pam_cost = result.cost_per_percent("34k", "PAM")
        mm_cost = result.cost_per_percent("34k", "MM")
        assert pam_cost > 0
        assert np.isfinite(pam_cost)
        saving = result.saving_vs("34k", "PAM", "MM")
        assert saving == pytest.approx(1 - pam_cost / mm_cost)
        assert "cost" in result.to_text().lower()


class TestFig9:
    def test_structure(self):
        result = run_fig9(TINY, levels=("17.5k",), heuristics=("PAMF", "MM"))
        assert result.levels() == ["17.5k"]
        advantage = result.advantage("17.5k")
        assert advantage == pytest.approx(
            result.robustness("17.5k", "PAMF") - result.robustness("17.5k", "MM")
        )
        assert "transcoding" in result.to_text().lower()


class TestDriversThroughSweep:
    """Every driver routes through repro.sweep: parallel jobs and the result
    cache must reproduce the serial figures exactly."""

    def test_fig7_parallel_matches_serial(self, fig7_result):
        parallel = run_fig7(TINY, levels=("34k",), heuristics=("PAM", "MM"), jobs=2)
        assert parallel.series.keys() == fig7_result.series.keys()
        for key, series in parallel.series.items():
            assert series.trials == fig7_result.series[key].trials

    def test_fig7_duplicate_inputs_collapse(self, fig7_result):
        """Duplicate grid inputs dedupe instead of misaligning keys/series."""
        duplicated = run_fig7(TINY, levels=("34k", "34k"), heuristics=("PAM", "MM", "PAM"))
        assert duplicated.series.keys() == fig7_result.series.keys()
        for key, series in duplicated.series.items():
            assert series.trials == fig7_result.series[key].trials

    def test_fig9_cache_warm_rerun(self, tmp_path):
        reports = []
        cold = run_fig9(
            TINY,
            levels=("17.5k",),
            heuristics=("MM",),
            cache_dir=tmp_path,
            progress=reports.append,
        )
        assert [r.cached for r in reports] == [False]
        reports.clear()
        warm = run_fig9(
            TINY,
            levels=("17.5k",),
            heuristics=("MM",),
            cache_dir=tmp_path,
            progress=reports.append,
        )
        assert [r.cached for r in reports] == [True]
        assert warm.series[("17.5k", "MM")].trials == cold.series[("17.5k", "MM")].trials
