"""Tests for experiment configuration and oversubscription levels."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    OVERSUBSCRIPTION_LEVELS,
    TRANSCODING_LEVELS,
    ExperimentConfig,
    ExperimentScale,
    transcoding_workload_for_level,
    workload_for_level,
)


class TestLevels:
    def test_expected_level_labels(self):
        assert set(OVERSUBSCRIPTION_LEVELS) == {"19k", "34k"}
        assert set(TRANSCODING_LEVELS) == {"10k", "12.5k", "15k", "17.5k"}

    def test_34k_is_heavier_than_19k(self):
        assert (
            OVERSUBSCRIPTION_LEVELS["34k"].arrival_rate
            > OVERSUBSCRIPTION_LEVELS["19k"].arrival_rate
        )

    def test_transcoding_levels_monotone(self):
        rates = [TRANSCODING_LEVELS[k].arrival_rate for k in ("10k", "12.5k", "15k", "17.5k")]
        assert rates == sorted(rates)

    def test_unknown_level_rejected(self):
        with pytest.raises(KeyError):
            workload_for_level("99k")
        with pytest.raises(KeyError):
            transcoding_workload_for_level("1k")


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.trials >= 1
        assert config.queue_capacity == 6

    def test_scales(self):
        smoke = ExperimentConfig.for_scale(ExperimentScale.SMOKE)
        quick = ExperimentConfig.for_scale(ExperimentScale.QUICK)
        paper = ExperimentConfig.for_scale(ExperimentScale.PAPER)
        assert smoke.trials < quick.trials < paper.trials
        assert paper.trials == 30
        assert paper.warmup_tasks == 100

    def test_task_scale_applied(self):
        config = ExperimentConfig(task_scale=0.5)
        base = OVERSUBSCRIPTION_LEVELS["34k"]
        scaled = config.scaled_workload(base)
        assert scaled.num_tasks == round(base.num_tasks * 0.5)
        assert scaled.time_span == base.time_span

    def test_workload_for_level_uses_scale(self):
        config = ExperimentConfig(task_scale=0.25)
        assert workload_for_level("19k", config).num_tasks < OVERSUBSCRIPTION_LEVELS["19k"].num_tasks

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(trials=0)
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_tasks=-1)
        with pytest.raises(ValueError):
            ExperimentConfig(task_scale=0)
