"""LogBucketHistogram: bounded memory, pinned quantiles, exact merging."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import LogBucketHistogram


def test_exact_scalars_and_len():
    hist = LogBucketHistogram()
    values = [0.001, 0.002, 0.01, 0.5, 3.0]
    for value in values:
        hist.record(value)
    assert len(hist) == hist.count == len(values)
    assert hist.total == pytest.approx(sum(values))
    assert hist.mean == pytest.approx(sum(values) / len(values))
    assert hist.min == min(values)
    assert hist.max == max(values)


def test_memory_is_bounded_by_construction():
    hist = LogBucketHistogram()
    buckets_before = hist.num_buckets
    for i in range(10_000):
        hist.record((i % 997 + 1) * 1e-5)
    assert hist.num_buckets == buckets_before
    assert hist.count == 10_000


def test_rejects_negative_and_non_finite():
    hist = LogBucketHistogram()
    for bad in (-1.0, float("nan"), float("inf")):
        with pytest.raises(ValueError):
            hist.record(bad)
    assert hist.count == 0


def test_empty_summary_is_nan():
    summary = LogBucketHistogram().summary()
    assert summary["count"] == 0
    for key in ("mean_s", "p50_s", "p95_s", "p99_s", "max_s"):
        assert math.isnan(summary[key])
    assert math.isnan(LogBucketHistogram().percentile(50.0))


def test_percentile_is_upper_bound_clamped_to_max():
    hist = LogBucketHistogram(buckets_per_decade=16)
    values = [0.0011, 0.0023, 0.0048, 0.0101, 0.0999]
    for value in values:
        hist.record(value)
    width = 10.0 ** (1.0 / 16) - 1.0
    for q in (50.0, 95.0, 99.0):
        rank = max(1, math.ceil(q / 100.0 * len(values)))
        exact = sorted(values)[rank - 1]
        reported = hist.percentile(q)
        # An upper bound on the true quantile, tight to one bucket width.
        assert exact <= reported <= exact * (1.0 + width) + 1e-12
    # The top quantile clamps to the exact recorded maximum.
    assert hist.percentile(100.0) == hist.max


def test_single_sample_percentiles_equal_the_sample():
    hist = LogBucketHistogram()
    hist.record(0.037)
    for q in (0.0, 50.0, 95.0, 99.0, 100.0):
        assert hist.percentile(q) == pytest.approx(0.037, rel=0.16)
        assert hist.percentile(q) <= 0.037 + 1e-15  # clamped to max


def test_percentile_rejects_out_of_range():
    hist = LogBucketHistogram()
    hist.record(1.0)
    with pytest.raises(ValueError):
        hist.percentile(-1.0)
    with pytest.raises(ValueError):
        hist.percentile(101.0)


def test_underflow_and_overflow_samples_are_kept_exactly():
    hist = LogBucketHistogram(lo=1e-3, hi=1e2)
    hist.record(1e-9)  # under lo: first bucket
    hist.record(5e4)  # over hi: overflow bucket
    assert hist.count == 2
    assert hist.min == 1e-9
    assert hist.max == 5e4
    # The overflow bucket's reported quantile clamps to the exact max
    # instead of the bucket's infinite upper edge.
    assert hist.percentile(99.0) == 5e4
    assert math.isinf(hist.bucket_upper_edge(hist.num_buckets - 1))


def test_payload_round_trip_preserves_everything():
    hist = LogBucketHistogram()
    for value in (0.004, 0.02, 0.02, 7.5):
        hist.record(value)
    payload = hist.to_payload()
    json.dumps(payload)  # JSON-able by contract
    clone = LogBucketHistogram.from_payload(payload)
    assert clone.summary() == hist.summary()
    assert clone.to_payload() == payload


def test_empty_payload_round_trip():
    payload = LogBucketHistogram().to_payload()
    assert payload["min"] is None and payload["max"] is None
    clone = LogBucketHistogram.from_payload(payload)
    assert clone.count == 0
    assert clone.summary()["count"] == 0


def test_merge_is_exact():
    left, right, both = (LogBucketHistogram() for _ in range(3))
    left_values = [0.001, 0.03, 0.2]
    right_values = [0.0004, 0.05, 11.0]
    for value in left_values:
        left.record(value)
        both.record(value)
    for value in right_values:
        right.record(value)
        both.record(value)
    left.merge(right)
    assert left.summary() == both.summary()
    assert left.to_payload() == both.to_payload()


def test_merge_rejects_layout_mismatch():
    a = LogBucketHistogram(lo=1e-6, hi=1e3)
    b = LogBucketHistogram(lo=1e-7, hi=1e3)
    assert not a.compatible_with(b)
    with pytest.raises(ValueError):
        a.merge(b)


def test_constructor_validation():
    with pytest.raises(ValueError):
        LogBucketHistogram(lo=1.0, hi=0.5)
    with pytest.raises(ValueError):
        LogBucketHistogram(lo=0.0, hi=1.0)
    with pytest.raises(ValueError):
        LogBucketHistogram(buckets_per_decade=0)
