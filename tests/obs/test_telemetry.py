"""Telemetry registry, activation scoping, and the three export formats."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    active,
    chrome_trace_events,
    prometheus_text,
    set_active,
    snapshot,
    use_telemetry,
    write_chrome_trace,
    write_snapshot,
)


# ----------------------------------------------------------------------
# Null registry
# ----------------------------------------------------------------------
def test_null_telemetry_is_the_default():
    assert active() is NULL_TELEMETRY
    assert NULL_TELEMETRY.enabled is False


def test_null_telemetry_is_stateless_and_shared():
    null = NullTelemetry()
    span = null.span("anything", attr=1)
    assert span is null.span("something.else")  # one shared no-op span
    with span:
        pass
    null.count("x")
    null.set_count("x", 5)
    null.gauge("g", 1.0)
    null.observe_ns("t", 100)
    null.add_span("s", 0, 10)
    assert not hasattr(null, "counters")


# ----------------------------------------------------------------------
# Recording registry
# ----------------------------------------------------------------------
def test_counters_gauges_and_timings():
    tel = Telemetry()
    tel.count("a")
    tel.count("a", 4)
    tel.set_count("b", 7)
    tel.set_count("b", 7)  # idempotent republish
    tel.gauge("g", 2.5)
    tel.observe_ns("t", 1_000_000)
    assert tel.counters == {"a": 5, "b": 7}
    assert tel.gauges == {"g": 2.5}
    assert tel.timings["t"].count == 1
    assert tel.timings["t"].total == pytest.approx(1e-3)
    tel.merge_counts({"a": 1, "c": 2})
    assert tel.counters["a"] == 6 and tel.counters["c"] == 2


def test_span_context_manager_records_on_exit():
    tel = Telemetry()
    with tel.span("unit.work", task=3):
        pass
    assert len(tel.spans) == 1
    name, start_ns, duration_ns, attrs = tel.spans[0]
    assert name == "unit.work"
    assert start_ns >= 0  # relative to the registry epoch
    assert duration_ns >= 0
    assert attrs == {"task": 3}
    # Every span also lands in the timing histogram of its name.
    assert tel.timings["unit.work"].count == 1


def test_span_cap_counts_drops_but_keeps_timings():
    tel = Telemetry(max_spans=2)
    for _ in range(5):
        with tel.span("s"):
            pass
    assert len(tel.spans) == 2
    assert tel.dropped_spans == 3
    assert tel.timings["s"].count == 5  # histogram is bounded, never drops
    with pytest.raises(ValueError):
        Telemetry(max_spans=-1)


def test_use_telemetry_scopes_and_restores():
    tel = Telemetry()
    assert active() is NULL_TELEMETRY
    with use_telemetry(tel) as scoped:
        assert scoped is tel
        assert active() is tel
        inner = Telemetry()
        with use_telemetry(inner):
            assert active() is inner
        assert active() is tel
    assert active() is NULL_TELEMETRY
    previous = set_active(tel)
    assert previous is NULL_TELEMETRY
    assert set_active(None) is tel
    assert active() is NULL_TELEMETRY


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def _recorded_telemetry() -> Telemetry:
    tel = Telemetry()
    with tel.span("engine.mapping_event.PAM", batch=2):
        pass
    with tel.span("kernel.numpy.success_probability"):
        pass
    tel.count("engine.events.arrival", 10)
    tel.gauge("engine.end_time", 42.0)
    return tel


def test_chrome_trace_event_shape():
    tel = _recorded_telemetry()
    events = chrome_trace_events(tel)
    assert events[0]["ph"] == "M"  # process-name metadata leads
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {
        "engine.mapping_event.PAM",
        "kernel.numpy.success_probability",
    }
    for event in spans:
        assert event["cat"] in {"engine", "kernel"}
        assert event["pid"] == 1 and event["tid"] == 1
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
    [mapping] = [e for e in spans if e["name"].startswith("engine.")]
    assert mapping["args"] == {"batch": 2}


def test_write_chrome_trace_loads_back(tmp_path):
    tel = _recorded_telemetry()
    path = write_chrome_trace(tel, tmp_path / "deep" / "trace.json")
    document = json.loads(path.read_text())
    assert isinstance(document["traceEvents"], list)
    assert document["otherData"]["spans_recorded"] == 2
    assert document["otherData"]["spans_dropped"] == 0


def test_snapshot_schema_and_file(tmp_path):
    tel = _recorded_telemetry()
    snap = snapshot(tel)
    assert snap["schema"] == 1
    assert snap["counters"]["engine.events.arrival"] == 10
    assert snap["gauges"]["engine.end_time"] == 42.0
    assert set(snap["timings"]) == {
        "engine.mapping_event.PAM",
        "kernel.numpy.success_probability",
    }
    assert snap["spans"] == {"recorded": 2, "dropped": 0}
    path = write_snapshot(tel, tmp_path / "snap.json")
    loaded = json.loads(path.read_text())  # strict JSON: NaN would fail here
    assert loaded["counters"] == snap["counters"]


def test_write_snapshot_maps_nan_to_null(tmp_path):
    tel = Telemetry()
    tel.gauge("weird", float("nan"))
    path = write_snapshot(tel, tmp_path / "snap.json")
    loaded = json.loads(path.read_text())
    assert loaded["gauges"]["weird"] is None


def test_prometheus_text_rendering():
    tel = _recorded_telemetry()
    text = prometheus_text(tel)
    assert "# TYPE repro_engine_events_arrival_total counter" in text
    assert "repro_engine_events_arrival_total 10" in text
    assert "repro_engine_end_time 42.0" in text
    assert 'repro_engine_mapping_event_PAM_seconds{quantile="0.5"}' in text
    assert "repro_engine_mapping_event_PAM_seconds_count 1" in text
    assert not math.isnan(tel.timings["engine.mapping_event.PAM"].mean)
