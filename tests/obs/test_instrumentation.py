"""End-to-end instrumentation: CLI flags, serve admission, sweep and queue."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.config import ExperimentConfig
from repro.heuristics.registry import make_heuristic
from repro.obs import Telemetry, use_telemetry
from repro.pet.builders import build_pet_from_means
from repro.serve import SchedulerCore
from repro.sweep import (
    HeuristicSpec,
    PETSpec,
    SweepPoint,
    SweepSpec,
    WorkQueue,
    run_sweep,
)
from repro.workload.generator import WorkloadConfig
from repro.workload.spec import TaskSpec


@pytest.fixture(scope="module")
def tiny_fast_pet():
    means = [[20.0, 35.0], [45.0, 25.0]]
    return build_pet_from_means(
        means,
        task_types=["t0", "t1"],
        machine_names=["m0", "m1"],
        rng=7,
        n_samples=60,
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_simulate_obs_flags_write_loadable_artifacts(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    snap_path = tmp_path / "snap.json"
    exit_code = main(
        [
            "simulate",
            "--tasks", "60",
            "--span", "400",
            "--obs-trace", str(trace_path),
            "--obs-snapshot", str(snap_path),
        ]
    )
    assert exit_code == 0
    document = json.loads(trace_path.read_text())
    names = {e["name"] for e in document["traceEvents"]}
    assert any(n.startswith("engine.mapping_event.") for n in names)
    assert any(n.startswith("kernel.") for n in names)
    assert "score_table.fill" in names
    snap = json.loads(snap_path.read_text())
    assert snap["counters"]["engine.events.arrival"] == 60
    err = capsys.readouterr().err
    assert "wrote obs trace" in err and "wrote obs snapshot" in err


def test_cli_without_obs_flags_writes_nothing(tmp_path, capsys):
    assert main(["simulate", "--tasks", "40", "--span", "300"]) == 0
    assert "wrote obs" not in capsys.readouterr().err


# ----------------------------------------------------------------------
# Serve admission
# ----------------------------------------------------------------------
def test_scheduler_core_records_admission_spans(tiny_fast_pet):
    tel = Telemetry()
    with use_telemetry(tel):
        heuristic = make_heuristic("MM", num_task_types=tiny_fast_pet.num_task_types)
        core = SchedulerCore(tiny_fast_pet, heuristic, rng=5)
        core.submit(TaskSpec(arrival=5, task_id=1, task_type=0, deadline=400))
        core.submit(TaskSpec(arrival=9, task_id=2, task_type=1, deadline=420))
        with pytest.raises(ValueError):
            core.submit(TaskSpec(arrival=9, task_id=2, task_type=1, deadline=420))
        core.close()
    assert tel.counters["serve.submitted"] == 2
    assert tel.counters["serve.rejected"] == 1
    admission = [s for s in tel.spans if s[0] == "serve.admission"]
    assert len(admission) == 2
    assert admission[0][3]["task"] == 1


def test_scheduler_core_untraced_matches_traced(tiny_fast_pet):
    def run(tel):
        heuristic = make_heuristic("MM", num_task_types=tiny_fast_pet.num_task_types)
        with use_telemetry(tel):
            core = SchedulerCore(tiny_fast_pet, heuristic, rng=5)
            decisions = []
            for spec in (
                TaskSpec(arrival=5, task_id=1, task_type=0, deadline=400),
                TaskSpec(arrival=9, task_id=2, task_type=1, deadline=420),
                TaskSpec(arrival=50, task_id=3, task_type=0, deadline=500),
            ):
                decisions.extend(core.submit(spec))
            decisions.extend(core.close())
        return [(d.seq, d.task_id, d.action, d.time, d.machine) for d in decisions]

    assert run(None) == run(Telemetry())


# ----------------------------------------------------------------------
# Sweep executor + cache
# ----------------------------------------------------------------------
def test_sweep_records_cache_counters_and_trial_spans(tmp_path):
    point = SweepPoint(
        label="obs-sweep",
        pet=PETSpec(kind="spec", seed=5),
        heuristic=HeuristicSpec(name="MM"),
        workload=WorkloadConfig(num_tasks=30, time_span=300, beta=1.5),
        config=ExperimentConfig(trials=1, seed=5, warmup_tasks=0, cooldown_tasks=0),
    )
    spec = SweepSpec(points=(point,), backend="serial")
    tel = Telemetry()
    with use_telemetry(tel):
        run_sweep(spec, cache_dir=tmp_path / "cache")
    assert tel.counters["sweep.cache_misses"] == 1
    assert tel.counters["sweep.trials_executed"] == 1
    assert any(s[0] == "sweep.point" for s in tel.spans)
    assert any(s[0] == "sweep.trial" for s in tel.spans)

    warm = Telemetry()
    with use_telemetry(warm):
        run_sweep(spec, cache_dir=tmp_path / "cache")
    assert warm.counters["sweep.cache_hits"] == 1
    assert "sweep.trials_executed" not in warm.counters


# ----------------------------------------------------------------------
# Work queue
# ----------------------------------------------------------------------
def test_queue_lifecycle_counters(tmp_path):
    from repro.sweep.trial import TrialMetrics

    point = SweepPoint(
        label="obs-queue",
        pet=PETSpec(kind="spec", seed=5),
        heuristic=HeuristicSpec(name="MM"),
        workload=WorkloadConfig(num_tasks=30, time_span=300, beta=1.5),
        config=ExperimentConfig(trials=2, seed=5),
    )
    metrics = TrialMetrics(
        robustness_percent=50.0,
        fairness_variance=1.0,
        total_cost=2.0,
        cost_per_percent_on_time=0.04,
        completed_on_time=10,
        total_tasks=30,
        per_type_completion_percent=(50.0, 60.0),
    )
    tel = Telemetry()
    with use_telemetry(tel):
        queue = WorkQueue(tmp_path / "queue", lease_seconds=10.0, max_attempts=3)
        queue.enqueue_point(point)
        first = queue.claim("w1", now=0.0)
        assert queue.renew(first.task_key, "w1")
        assert queue.complete(first.task_key, "w1", metrics, seconds=0.25)
        second = queue.claim("w1", now=1.0)
        assert queue.release(second.task_key, "w1")
        second = queue.claim("w1", now=2.0)
        assert queue.fail(second.task_key, "w1", "boom")
        assert queue.recover_expired(now=100.0) == 0
    assert tel.counters["queue.claims"] == 3
    assert tel.counters["queue.lease_renewals"] == 1
    assert tel.counters["queue.completions"] == 1
    assert tel.counters["queue.releases"] == 1
    assert tel.counters["queue.failures"] == 1
    assert tel.timings["queue.trial"].count == 1
    assert tel.timings["queue.trial"].max == pytest.approx(0.25, rel=0.16)
