"""The never-perturbs contract: tracing cannot change a single decision.

The seeded 660-task reference trial (``examples/transcoding_660.trace.json``
with PAMF — the same pinned trial the serve and kernel-backend suites gate
on) must produce a byte-identical decision sequence with full tracing
enabled as with the default :class:`NullTelemetry`, and obs configuration
must never reach sweep cache keys.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.heuristics.registry import make_heuristic
from repro.obs import NULL_TELEMETRY, Telemetry, use_telemetry
from repro.pet.builders import build_transcoding_pet
from repro.simulator.engine import HCSimulator
from repro.sweep.spec import (
    HeuristicSpec,
    PETSpec,
    SweepPoint,
    TraceSpec,
    point_payload,
)
from repro.workload.traces import load_trace

REFERENCE_TRACE = (
    Path(__file__).resolve().parent.parent.parent
    / "examples"
    / "transcoding_660.trace.json"
)


class _RecordingObserver:
    """Serialises the full decision stream as comparable tuples."""

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def on_assigned(self, task, machine_index, now) -> None:
        self.events.append(("assigned", task.task_id, machine_index, now))

    def on_terminal(self, task) -> None:
        self.events.append(
            ("terminal", task.task_id, task.status.value, task.dropped_at)
        )

    def on_mapping_event(self, now, decision) -> None:
        self.events.append(
            ("mapping", now, len(decision.assignments), len(decision.deferrals))
        )


def _reference_trial(telemetry) -> tuple[list[tuple], tuple]:
    pet = build_transcoding_pet(rng=2019)
    heuristic = make_heuristic("PAMF", num_task_types=pet.num_task_types)
    sim = HCSimulator(pet, heuristic, rng=2021)
    observer = _RecordingObserver()
    sim.observer = observer
    with use_telemetry(telemetry):
        result = sim.run(load_trace(REFERENCE_TRACE))
    signature = tuple(
        (t.task_id, t.status.value, t.machine, t.mapped_at, t.exec_start, t.exec_end)
        for t in result.tasks
    )
    return observer.events, signature


@pytest.fixture(scope="module")
def traced_and_null():
    telemetry = Telemetry()
    traced = _reference_trial(telemetry)
    null = _reference_trial(NULL_TELEMETRY)
    return traced, null, telemetry


def test_reference_trial_decisions_are_bit_identical(traced_and_null):
    (traced_events, traced_sig), (null_events, null_sig), _ = traced_and_null
    assert traced_events == null_events
    assert traced_sig == null_sig
    # Byte-identical, not merely equal-compared:
    encode = lambda events: json.dumps(events, sort_keys=True).encode()  # noqa: E731
    assert encode(traced_events) == encode(null_events)


def test_tracing_actually_recorded_the_trial(traced_and_null):
    _, _, telemetry = traced_and_null
    names = {name for name, *_ in telemetry.spans}
    assert any(name.startswith("engine.mapping_event.") for name in names)
    assert any(name.startswith("kernel.") for name in names)
    assert "score_table.fill" in names
    assert telemetry.counters["engine.events.arrival"] == 660


def _reference_point() -> SweepPoint:
    return SweepPoint(
        label="obs-determinism",
        pet=PETSpec(kind="transcoding", seed=2019),
        heuristic=HeuristicSpec(name="PAMF"),
        workload=None,
        config=ExperimentConfig(trials=1, seed=2019),
        trace=TraceSpec(path=str(REFERENCE_TRACE)),
    )


def test_cache_key_is_identical_with_tracing_enabled():
    baseline = _reference_point().cache_key()
    with use_telemetry(Telemetry()):
        traced = _reference_point().cache_key()
    assert traced == baseline


def test_obs_never_enters_point_payload():
    payload = point_payload(_reference_point())
    flattened = json.dumps(payload, sort_keys=True, default=str).lower()
    assert "obs" not in json.loads(json.dumps(payload, default=str)).keys()
    assert "telemetry" not in flattened
