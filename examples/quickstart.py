#!/usr/bin/env python
"""Quickstart — map an oversubscribed workload with and without pruning.

This example builds the SPECint-style PET matrix of the paper (Section VI-A),
generates one oversubscribed workload trial, and simulates it twice: once
with the classic MinMin batch heuristic (MM) and once with the paper's
Pruning Aware Mapper (PAM).  It then prints the headline metrics the paper's
evaluation is built on: robustness (percentage of tasks finishing by their
deadlines), the breakdown of task outcomes, and the incurred cost.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # 1. The resource-allocation system's knowledge: the PET matrix.
    pet = repro.build_spec_pet(rng=1)
    print(f"PET matrix: {pet.num_task_types} task types x {pet.num_machines} machines")
    print(f"  inconsistently heterogeneous: {pet.is_inconsistently_heterogeneous()}")

    # 2. One oversubscribed workload trial (Section VI-B).
    workload = repro.WorkloadConfig(num_tasks=500, time_span=2500, beta=1.5)
    trace = repro.generate_workload(workload, pet, rng=2)
    print(f"\nWorkload: {len(trace)} tasks over {workload.time_span} time units")
    print(f"  offered load vs capacity: {trace.offered_load(pet):.2f}x")

    # 3. Simulate the same trace with a baseline and with the paper's mapper.
    for name in ("MM", "PAM"):
        heuristic = repro.make_heuristic(name, num_task_types=pet.num_task_types)
        result = repro.simulate(pet, heuristic, trace, rng=3)
        print(f"\n=== {name} ===")
        print(f"  robustness            : {result.robustness_percent(warmup=50, cooldown=50):6.2f}% of tasks on time")
        print(f"  total cost            : {result.total_cost():.3f}")
        print(
            "  cost / percent on time: "
            f"{result.cost_per_percent_on_time(warmup=50, cooldown=50):.4f}"
        )
        print(f"  mapping events        : {result.counters.mapping_events}")
        print(f"  deferrals / drops     : {result.counters.deferrals} / {result.counters.proactive_drops}")
        print("  task outcomes:")
        for outcome, count in sorted(result.status_counts().items()):
            print(f"    {outcome:<28} {count}")


if __name__ == "__main__":
    main()
