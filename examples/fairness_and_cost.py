#!/usr/bin/env python
"""Fairness across task types and the dollar cost of pruning (Figures 6 and 8).

Probabilistic pruning favours task types that are quick and predictable; the
paper's PAMF variant counteracts that with per-type sufferage values.  This
example runs one oversubscribed workload with:

* PAM (no fairness),
* PAMF at several fairness factors,
* the MinMin and MOC baselines,

and reports, for each, the overall robustness, the variance of per-type
completion percentages (the Figure 6 fairness metric), and the incurred cost
per percentage point of on-time completions (the Figure 8 cost metric).

Run it with::

    python examples/fairness_and_cost.py
"""

from __future__ import annotations

import repro
from repro.simulator.cost import default_prices_for


def main() -> None:
    pet = repro.build_spec_pet(rng=3)
    workload = repro.WorkloadConfig(num_tasks=600, time_span=2800, beta=1.5)
    trace = repro.generate_workload(workload, pet, rng=4)
    prices = default_prices_for(pet.machine_names)
    print(
        f"Workload: {len(trace)} tasks, offered load {trace.offered_load(pet):.2f}x capacity\n"
    )

    candidates: list[tuple[str, object]] = [
        ("MM", repro.make_heuristic("MM")),
        ("MOC", repro.make_heuristic("MOC")),
        ("PAM", repro.make_heuristic("PAM")),
    ]
    for factor in (0.0, 0.05, 0.15):
        candidates.append(
            (
                f"PAMF({factor:.0%})",
                repro.FairPruningMapper(pet.num_task_types, fairness_factor=factor),
            )
        )

    print(
        f"{'heuristic':<12} {'robustness %':>13} {'fairness var':>13} "
        f"{'cost':>8} {'cost/pct':>9}"
    )
    rows = []
    for label, heuristic in candidates:
        result = repro.simulate(pet, heuristic, trace, machine_prices=prices, rng=9)
        rows.append((label, result))
        print(
            f"{label:<12} "
            f"{result.robustness_percent(warmup=50, cooldown=50):>13.2f} "
            f"{result.fairness_variance(warmup=50, cooldown=50):>13.2f} "
            f"{result.total_cost():>8.3f} "
            f"{result.cost_per_percent_on_time(warmup=50, cooldown=50):>9.4f}"
        )

    print("\nPer-task-type on-time completion percentages:")
    print(f"{'heuristic':<12} " + " ".join(f"{name[:7]:>8}" for name in pet.task_types))
    for label, result in rows:
        per_type = result.per_type_completion_percent(warmup=50, cooldown=50)
        cells = " ".join(f"{value:8.1f}" for value in per_type)
        print(f"{label:<12} {cells}")

    print(
        "\nExpected shape (paper Figures 6 and 8): PAMF's fairness factor narrows the\n"
        "spread across task types at the cost of a few robustness points, and the\n"
        "pruning-based mappers complete each percentage point of work at a markedly\n"
        "lower cost than MOC and MinMin."
    )


if __name__ == "__main__":
    main()
