#!/usr/bin/env python
"""Live video transcoding on heterogeneous cloud VMs (the paper's motivating
scenario, Sections I, III and VII-G).

A live-streaming provider runs four transcoding operations (resolution,
codec, bit-rate and frame-rate changes) on four heterogeneous VM types
(CPU-optimised, memory-optimised, general-purpose, GPU).  Segments that miss
their deadlines are worthless and are dropped.  This example sweeps the
arrival intensity and compares the fair pruning mapper (PAMF) against MinMin,
reproducing the spirit of Figure 9, and also reports per-operation fairness
and the incurred VM cost.

Run it with::

    python examples/live_video_transcoding.py
"""

from __future__ import annotations

import repro
from repro.pet.builders import TRANSCODING_TASK_TYPES
from repro.simulator.cost import default_prices_for


def run_level(pet, num_tasks: int, heuristic_name: str, *, seed: int = 11):
    workload = repro.WorkloadConfig(num_tasks=num_tasks, time_span=3000, beta=1.5)
    trace = repro.generate_workload(workload, pet, rng=seed)
    heuristic = repro.make_heuristic(heuristic_name, num_task_types=pet.num_task_types)
    result = repro.simulate(
        pet,
        heuristic,
        trace,
        machine_prices=default_prices_for(pet.machine_names),
        rng=seed + 1,
    )
    return trace, result


def main() -> None:
    pet = repro.build_transcoding_pet(rng=7)
    print("Transcoding PET (mean execution time per operation and VM type):")
    means = pet.mean_execution_times()
    header = "  " + " ".join(f"{name:>18}" for name in pet.machine_names)
    print(header)
    for row, operation in zip(means, pet.task_types):
        cells = " ".join(f"{value:18.1f}" for value in row)
        print(f"  {operation:<20} {cells}")

    print("\nSegment arrival intensity sweep (PAMF vs MM):")
    print(f"{'segments':>10} {'heuristic':>10} {'on-time %':>10} {'cost':>8} {'fairness var':>13}")
    for num_tasks in (220, 280, 340, 400):
        for heuristic_name in ("PAMF", "MM"):
            _, result = run_level(pet, num_tasks, heuristic_name)
            print(
                f"{num_tasks:>10} {heuristic_name:>10} "
                f"{result.robustness_percent(warmup=30, cooldown=30):>10.2f} "
                f"{result.total_cost():>8.3f} "
                f"{result.fairness_variance(warmup=30, cooldown=30):>13.2f}"
            )

    print("\nPer-operation on-time completion at the heaviest level (PAMF):")
    _, result = run_level(pet, 400, "PAMF")
    per_type = result.per_type_completion_percent(warmup=30, cooldown=30)
    for operation, percent in zip(TRANSCODING_TASK_TYPES, per_type):
        print(f"  {operation:<20} {percent:6.2f}% on time")


if __name__ == "__main__":
    main()
