#!/usr/bin/env python
"""Tuning the pruning thresholds and the dropping toggle (Figures 4 and 5).

The pruning mechanism has three knobs the paper studies before the headline
comparison:

* the EWMA weight ``lambda`` and the Schmitt trigger that decide *when* the
  system is oversubscribed enough to start dropping (Section V-C, Figure 4);
* the dropping threshold — the success probability at or below which a queued
  task is removed (Section V-B1);
* the deferring threshold — the success probability an unmapped task must
  reach on some machine to be mapped at all (Section V-B2, Figure 5).

This example sweeps those knobs on one oversubscribed workload and prints the
resulting robustness, reproducing the spirit of the two tuning figures on a
single trial (the full multi-trial sweeps live in ``benchmarks/``).

Run it with::

    python examples/threshold_tuning.py
"""

from __future__ import annotations

import repro
from repro.pruning import OversubscriptionDetector, PruningThresholds


def build_system(seed: int = 5):
    pet = repro.build_spec_pet(rng=seed)
    workload = repro.WorkloadConfig(num_tasks=550, time_span=2500, beta=1.5)
    trace = repro.generate_workload(workload, pet, rng=seed + 1)
    return pet, trace


def robustness_with(pet, trace, *, thresholds=None, detector=None, seed: int = 42) -> float:
    heuristic = repro.PruningAwareMapper(thresholds, detector=detector)
    result = repro.simulate(pet, heuristic, trace, rng=seed)
    return result.robustness_percent(warmup=40, cooldown=40)


def sweep_deferring_threshold(pet, trace) -> None:
    print("Deferring-threshold sweep (dropping threshold fixed at 50%):")
    print(f"  {'defer %':>8} {'robustness %':>13}")
    for deferring in (0.5, 0.6, 0.7, 0.8, 0.9):
        thresholds = PruningThresholds(dropping=0.5, deferring=deferring)
        robustness = robustness_with(pet, trace, thresholds=thresholds)
        print(f"  {deferring * 100:>8.0f} {robustness:>13.2f}")


def sweep_dropping_threshold(pet, trace) -> None:
    print("\nDropping-threshold sweep (deferring threshold fixed at 90%):")
    print(f"  {'drop %':>8} {'robustness %':>13}")
    for dropping in (0.25, 0.50, 0.75):
        thresholds = PruningThresholds(dropping=dropping, deferring=0.9)
        robustness = robustness_with(pet, trace, thresholds=thresholds)
        print(f"  {dropping * 100:>8.0f} {robustness:>13.2f}")


def sweep_lambda(pet, trace) -> None:
    print("\nOversubscription-detector sweep (lambda and toggle mode):")
    print(f"  {'lambda':>8} {'toggle':>9} {'robustness %':>13}")
    for lam in (0.1, 0.5, 0.9):
        for mode, separation in (("default", 0.0), ("schmitt", 0.2)):
            detector = OversubscriptionDetector(ewma_weight=lam, schmitt_separation=separation)
            robustness = robustness_with(pet, trace, detector=detector)
            print(f"  {lam:>8.1f} {mode:>9} {robustness:>13.2f}")


def main() -> None:
    pet, trace = build_system()
    print(
        f"Workload: {len(trace)} tasks, offered load "
        f"{trace.offered_load(pet):.2f}x capacity\n"
    )
    sweep_deferring_threshold(pet, trace)
    sweep_dropping_threshold(pet, trace)
    sweep_lambda(pet, trace)
    print(
        "\nThe paper adopts dropping 50% / deferring 90% and lambda = 0.9 with a "
        "Schmitt trigger; the sweeps above show how those choices behave on one trial."
    )


if __name__ == "__main__":
    main()
