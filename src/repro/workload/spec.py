"""Task specifications produced by the workload generator.

A :class:`TaskSpec` is the immutable description of one arriving task: its
type, arrival time and hard deadline.  The simulator wraps each spec in a
mutable runtime :class:`repro.simulator.task.Task`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TaskSpec"]


@dataclass(frozen=True, order=True)
class TaskSpec:
    """One arriving task, as generated offline by the workload model."""

    #: Arrival time in integer time units (sort key — traces are time ordered).
    arrival: int
    #: Unique, monotonically increasing task identifier.
    task_id: int
    #: Index of the task type in the PET matrix.
    task_type: int
    #: Hard deadline; a task finishing after this instant has no value.
    deadline: int

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival time must be non-negative")
        if self.deadline <= self.arrival:
            raise ValueError("deadline must be strictly after arrival")
        if self.task_type < 0:
            raise ValueError("task type index must be non-negative")

    @property
    def slack(self) -> int:
        """Time between arrival and deadline."""
        return self.deadline - self.arrival
