"""Synthetic EC2 video-transcoding workload (paper Section VII-G, Figure 9).

The paper's headline real-world result replays a recorded trace of 660 live
video segments transcoded on four heterogeneous EC2 VM types.  The raw trace
is not available offline, so this module synthesises a workload with the
same *shape* and ships a seeded reference instance
(``examples/transcoding_660.trace.json``) that flows through the sweep/cache
pipeline exactly like a recorded file would:

* **per-codec task types** — the four transcoding operations of the
  4x4 transcoding PET, drawn with a non-uniform mix (resolution and
  bit-rate changes dominate a live-streaming workload, codec changes are
  rarer);
* **burst arrivals** — segments of one video arrive together: burst epochs
  follow a high-variance gamma renewal process and each burst carries a
  geometrically distributed number of segments spread over a few time
  units;
* **heavy-tailed durations** — video lengths are heavy tailed, which shows
  up in the trace as a log-normal per-task scale on the deadline slack
  (long videos tolerate proportionally longer transcoding).

Execution times themselves always come from the PET matrix at simulation
time; a trace only records arrivals, types and deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..pet.builders import build_transcoding_pet
from ..pet.matrix import PETMatrix
from ..utils.rng import make_generator
from .arrivals import gamma_interarrival_times
from .generator import WorkloadConfig, WorkloadTrace
from .scale import scale_trace
from .spec import TaskSpec

__all__ = [
    "TranscodingTraceConfig",
    "generate_transcoding_trace",
    "reference_transcoding_trace",
    "TRACE_BUILDERS",
    "build_named_trace",
    "REFERENCE_TRACE_TASKS",
]

#: Task count of the paper's recorded EC2 workload (660 video segments).
REFERENCE_TRACE_TASKS = 660

#: Seed of the shipped reference trace (matches the experiments' master seed).
REFERENCE_TRACE_SEED = 2019


@dataclass(frozen=True)
class TranscodingTraceConfig:
    """Shape parameters of the synthetic transcoding workload.

    Attributes
    ----------
    num_tasks:
        Total number of transcoding tasks (segments) in the trace.
    time_span:
        Length of the arrival window in time units.
    beta:
        Baseline deadline slack coefficient (Section VI-B formula).
    mean_burst_size:
        Mean number of segments arriving together in one burst
        (geometrically distributed per burst).
    burst_spread:
        Maximum intra-burst arrival jitter in time units; segments of one
        burst land within ``[epoch, epoch + burst_spread]``.
    burst_variance_fraction:
        Variance of the gamma inter-burst gaps as a fraction of the mean;
        values well above 1 clump the bursts themselves (doubly bursty).
    duration_sigma:
        Sigma of the log-normal per-task deadline-slack scale (mean 1);
        larger values mean heavier tails.
    type_weights:
        Sampling weights of the four transcoding operations, in PET task
        type order (resolution, codec, bit rate, frame rate).
    """

    num_tasks: int = REFERENCE_TRACE_TASKS
    #: Arrival window sized so the 660 tasks offer ~1.7x the 4-VM system's
    #: capacity — the oversubscription regime of Figure 9's upper levels.
    time_span: int = 10000
    beta: float = 1.5
    mean_burst_size: float = 4.0
    burst_spread: int = 3
    burst_variance_fraction: float = 2.0
    duration_sigma: float = 0.6
    type_weights: tuple[float, ...] = (0.35, 0.15, 0.30, 0.20)

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        if self.time_span <= 0:
            raise ValueError("time_span must be positive")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.mean_burst_size < 1:
            raise ValueError("mean_burst_size must be at least one")
        if self.burst_spread < 0:
            raise ValueError("burst_spread must be non-negative")
        if self.burst_variance_fraction <= 0:
            raise ValueError("burst_variance_fraction must be positive")
        if self.duration_sigma < 0:
            raise ValueError("duration_sigma must be non-negative")
        if len(self.type_weights) == 0 or any(w < 0 for w in self.type_weights):
            raise ValueError("type_weights must be non-negative")
        if sum(self.type_weights) <= 0:
            raise ValueError("type_weights must have positive total weight")


def generate_transcoding_trace(
    config: TranscodingTraceConfig | None = None,
    *,
    rng: np.random.Generator | int | None = None,
    pet: PETMatrix | None = None,
) -> WorkloadTrace:
    """Synthesise one transcoding workload trace with the paper's shape.

    Parameters
    ----------
    config:
        Shape parameters (defaults reproduce the 660-task reference shape).
    rng:
        Seed or Generator; the trace is fully determined by it.
    pet:
        Transcoding PET supplying the per-type mean execution times the
        deadline slack is based on; defaults to the seeded 4x4 transcoding
        PET the Figure 9 driver uses.
    """
    config = config or TranscodingTraceConfig()
    rng = make_generator(rng)
    pet = pet if pet is not None else build_transcoding_pet(rng=REFERENCE_TRACE_SEED)
    if len(config.type_weights) != pet.num_task_types:
        raise ValueError(
            f"{len(config.type_weights)} type weights for {pet.num_task_types} "
            "PET task types"
        )

    weights = np.asarray(config.type_weights, dtype=np.float64)
    weights = weights / weights.sum()
    avg_all = pet.overall_mean()
    avg_types = [pet.task_type_mean(t) for t in range(pet.num_task_types)]

    # Burst epochs: gamma renewal with variance well above the mean, so the
    # epochs themselves clump.  Enough bursts are drawn to cover num_tasks.
    n_bursts = max(1, int(np.ceil(config.num_tasks / config.mean_burst_size)))
    mean_gap = config.time_span / n_bursts
    gaps = gamma_interarrival_times(
        n_bursts,
        mean_gap,
        rng=rng,
        variance_fraction=config.burst_variance_fraction,
    )
    epochs = np.maximum(np.rint(np.cumsum(gaps)).astype(np.int64), 1)
    epochs = np.maximum.accumulate(epochs)

    # Per-burst segment counts: geometric with the configured mean (>= 1).
    success = 1.0 / config.mean_burst_size
    sizes = rng.geometric(success, size=n_bursts)

    records: list[tuple[int, int, int]] = []  # (arrival, task_type, deadline)
    for epoch, size in zip(epochs, sizes):
        for _ in range(int(size)):
            if len(records) == config.num_tasks:
                break
            jitter = int(rng.integers(0, config.burst_spread + 1))
            arrival = int(epoch) + jitter
            task_type = int(rng.choice(len(weights), p=weights))
            # Heavy-tailed video length: log-normal scale with mean one
            # applied to the Section VI-B slack term.
            if config.duration_sigma > 0:
                scale = float(
                    rng.lognormal(
                        -0.5 * config.duration_sigma**2, config.duration_sigma
                    )
                )
            else:
                scale = 1.0
            slack = avg_types[task_type] + config.beta * avg_all
            deadline = arrival + max(1, int(round(scale * slack)))
            records.append((arrival, task_type, deadline))
        if len(records) == config.num_tasks:
            break
    while len(records) < config.num_tasks:
        # Degenerate parameterisations (tiny bursts) top up at the tail.
        arrival = int(epochs[-1]) + len(records)
        task_type = int(rng.choice(len(weights), p=weights))
        slack = avg_types[task_type] + config.beta * avg_all
        records.append((arrival, task_type, arrival + max(1, int(round(slack)))))

    records.sort()
    specs = tuple(
        TaskSpec(
            arrival=arrival,
            task_id=task_id,
            task_type=task_type,
            deadline=deadline,
        )
        for task_id, (arrival, task_type, deadline) in enumerate(records)
    )
    workload = WorkloadConfig(
        num_tasks=config.num_tasks, time_span=config.time_span, beta=config.beta
    )
    return WorkloadTrace(specs, workload, num_task_types=pet.num_task_types)


def reference_transcoding_trace(
    *, seed: int = REFERENCE_TRACE_SEED, num_tasks: int | None = None
) -> WorkloadTrace:
    """The seeded 660-task reference trace shipped under ``examples/``.

    ``scripts/make_reference_trace.py`` regenerates the committed file from
    this builder; a different ``seed`` or ``num_tasks`` yields a fresh trace
    of the same shape.
    """
    config = TranscodingTraceConfig(
        num_tasks=REFERENCE_TRACE_TASKS if num_tasks is None else int(num_tasks)
    )
    return generate_transcoding_trace(config, rng=seed)


#: Named trace builders resolvable by :class:`repro.sweep.spec.TraceSpec`.
#: Each maps ``(seed, num_tasks)`` to a deterministic :class:`WorkloadTrace`.
TRACE_BUILDERS: Mapping[str, Callable[[int, int | None], WorkloadTrace]] = {
    "transcoding-660": lambda seed, num_tasks: reference_transcoding_trace(
        seed=seed, num_tasks=num_tasks
    ),
    "scale": lambda seed, num_tasks: scale_trace(seed=seed, num_tasks=num_tasks),
}


def build_named_trace(
    name: str, *, seed: int = REFERENCE_TRACE_SEED, num_tasks: int | None = None
) -> WorkloadTrace:
    """Resolve a registered trace builder by name."""
    try:
        builder = TRACE_BUILDERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown trace builder {name!r}; expected one of {sorted(TRACE_BUILDERS)}"
        ) from exc
    return builder(seed, num_tasks)
