"""Workload trace persistence.

Experiments in the paper reuse the same arrival pattern across heuristics so
the comparison is paired.  Saving a generated trace to disk (JSON) makes that
pairing explicit and lets downstream users replay the exact workload a result
was produced on, or feed in traces captured from a real system.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from .generator import WorkloadConfig, WorkloadTrace
from .spec import TaskSpec

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace"]

#: Format marker embedded in every serialised trace.
_FORMAT = "repro-workload-trace"
_VERSION = 1


def trace_to_dict(trace: WorkloadTrace) -> dict:
    """JSON-serialisable representation of a workload trace."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "config": {
            "num_tasks": trace.config.num_tasks,
            "time_span": trace.config.time_span,
            "beta": trace.config.beta,
            "variance_fraction": trace.config.variance_fraction,
        },
        "num_task_types": trace.num_task_types,
        "tasks": [
            {
                "task_id": task.task_id,
                "task_type": task.task_type,
                "arrival": task.arrival,
                "deadline": task.deadline,
            }
            for task in trace
        ],
    }


def trace_from_dict(payload: Mapping) -> WorkloadTrace:
    """Rebuild a workload trace from :func:`trace_to_dict` output."""
    if payload.get("format") != _FORMAT:
        raise ValueError("payload is not a serialised workload trace")
    if int(payload.get("version", -1)) != _VERSION:
        raise ValueError(f"unsupported trace version {payload.get('version')!r}")
    config_payload = payload["config"]
    config = WorkloadConfig(
        num_tasks=int(config_payload["num_tasks"]),
        time_span=int(config_payload["time_span"]),
        beta=float(config_payload["beta"]),
        variance_fraction=float(config_payload["variance_fraction"]),
    )
    specs = tuple(
        TaskSpec(
            arrival=int(item["arrival"]),
            task_id=int(item["task_id"]),
            task_type=int(item["task_type"]),
            deadline=int(item["deadline"]),
        )
        for item in payload["tasks"]
    )
    specs = tuple(sorted(specs))
    return WorkloadTrace(specs, config, num_task_types=int(payload["num_task_types"]))


def save_trace(trace: WorkloadTrace, path: str | Path) -> Path:
    """Write a trace to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_to_dict(trace), indent=2))
    return path


def load_trace(path: str | Path) -> WorkloadTrace:
    """Read a trace previously written by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    return trace_from_dict(payload)
