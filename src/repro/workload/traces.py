"""Workload trace persistence.

Experiments in the paper reuse the same arrival pattern across heuristics so
the comparison is paired.  Saving a generated trace to disk (JSON) makes that
pairing explicit and lets downstream users replay the exact workload a result
was produced on, or feed in traces captured from a real system.

Loading is strict: a malformed payload (wrong format marker, unsupported
version, missing or non-finite task fields) is rejected with an error that
names the offending task index, never silently coerced — a recorded trace
that round-trips is the contract the replay pipeline's cache keys rely on.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Mapping

from .generator import WorkloadConfig, WorkloadTrace
from .spec import TaskSpec

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "trace_content_hash",
    "file_content_hash",
]

#: Format marker embedded in every serialised trace.
_FORMAT = "repro-workload-trace"
_VERSION = 1

#: Per-task fields every serialised trace must carry.
_TASK_FIELDS = ("task_id", "task_type", "arrival", "deadline")


def trace_to_dict(trace: WorkloadTrace) -> dict:
    """JSON-serialisable representation of a workload trace."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "config": {
            "num_tasks": trace.config.num_tasks,
            "time_span": trace.config.time_span,
            "beta": trace.config.beta,
            "variance_fraction": trace.config.variance_fraction,
        },
        "num_task_types": trace.num_task_types,
        "tasks": [
            {
                "task_id": task.task_id,
                "task_type": task.task_type,
                "arrival": task.arrival,
                "deadline": task.deadline,
            }
            for task in trace
        ],
    }


def _task_int(item: Mapping, field: str, index: int) -> int:
    """One validated integer task field; errors name the task index."""
    try:
        value = item[field]
    except (KeyError, TypeError):
        raise ValueError(f"task {index}: missing field {field!r}") from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"task {index}: field {field!r} must be a number, got {value!r}"
        )
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"task {index}: field {field!r} is not finite ({value!r})")
    if value != int(value):
        raise ValueError(
            f"task {index}: field {field!r} must be an integer time unit, got {value!r}"
        )
    return int(value)


def trace_from_dict(payload: Mapping) -> WorkloadTrace:
    """Rebuild a workload trace from :func:`trace_to_dict` output.

    Raises
    ------
    ValueError
        If the payload is not a serialised trace, carries an unsupported
        version, or any task record is missing a field / holds a
        non-finite or non-integral value — the message names the offending
        task index.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("payload is not a serialised workload trace")
    if payload.get("format") != _FORMAT:
        raise ValueError("payload is not a serialised workload trace")
    try:
        version = int(payload.get("version", -1))
    except (TypeError, ValueError):
        version = None
    if version != _VERSION:
        raise ValueError(f"unsupported trace version {payload.get('version')!r}")
    try:
        config_payload = payload["config"]
        config = WorkloadConfig(
            num_tasks=int(config_payload["num_tasks"]),
            time_span=int(config_payload["time_span"]),
            beta=float(config_payload["beta"]),
            variance_fraction=float(config_payload["variance_fraction"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"invalid trace config: {exc}") from exc
    tasks_payload = payload.get("tasks")
    if not isinstance(tasks_payload, (list, tuple)):
        raise ValueError("trace payload has no task list")

    specs = []
    seen_ids: set[int] = set()
    for index, item in enumerate(tasks_payload):
        if not isinstance(item, Mapping):
            raise ValueError(f"task {index}: record is not an object")
        values = {field: _task_int(item, field, index) for field in _TASK_FIELDS}
        if values["arrival"] < 0:
            raise ValueError(
                f"task {index}: arrival must be non-negative, got {values['arrival']}"
            )
        if values["task_type"] < 0:
            raise ValueError(
                f"task {index}: task_type must be non-negative, got {values['task_type']}"
            )
        if values["deadline"] <= values["arrival"]:
            raise ValueError(
                f"task {index}: deadline ({values['deadline']}) must be strictly "
                f"after arrival ({values['arrival']})"
            )
        if values["task_id"] in seen_ids:
            raise ValueError(f"task {index}: duplicate task_id {values['task_id']}")
        seen_ids.add(values["task_id"])
        specs.append(
            TaskSpec(
                arrival=values["arrival"],
                task_id=values["task_id"],
                task_type=values["task_type"],
                deadline=values["deadline"],
            )
        )

    num_task_types = int(payload.get("num_task_types", 0))
    if specs:
        highest = max(spec.task_type for spec in specs)
        if num_task_types <= highest:
            raise ValueError(
                f"num_task_types ({num_task_types}) does not cover task type "
                f"{highest}"
            )
    ordered = tuple(sorted(specs))
    return WorkloadTrace(ordered, config, num_task_types=num_task_types)


def save_trace(trace: WorkloadTrace, path: str | Path) -> Path:
    """Write a trace to a JSON file and return the path.

    The file is streamed task by task: the full serialised dict of a
    100k-task trace costs tens of megabytes of transient allocations, so the
    header is written first and each task record is appended individually.
    The bytes produced are identical to
    ``json.dumps(trace_to_dict(trace), indent=2)``, which keeps content
    hashes of previously recorded files stable.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": _FORMAT,
        "version": _VERSION,
        "config": {
            "num_tasks": trace.config.num_tasks,
            "time_span": trace.config.time_span,
            "beta": trace.config.beta,
            "variance_fraction": trace.config.variance_fraction,
        },
        "num_task_types": trace.num_task_types,
    }
    with path.open("w", encoding="utf-8") as fh:
        head = json.dumps(header, indent=2)
        # ``head`` ends with '\n}'; splice the tasks array in as the last key.
        fh.write(head[: -len("\n}")])
        if len(trace) == 0:
            fh.write(',\n  "tasks": []\n}')
            return path
        fh.write(',\n  "tasks": [')
        first = True
        for task in trace:
            fh.write(
                ("" if first else ",")
                + "\n    {"
                + f'\n      "task_id": {task.task_id},'
                + f'\n      "task_type": {task.task_type},'
                + f'\n      "arrival": {task.arrival},'
                + f'\n      "deadline": {task.deadline}'
                + "\n    }"
            )
            first = False
        fh.write("\n  ]\n}")
    return path


def load_trace(path: str | Path) -> WorkloadTrace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"trace file {path} is not valid JSON: {exc}") from exc
    try:
        return trace_from_dict(payload)
    except ValueError as exc:
        raise ValueError(f"trace file {path}: {exc}") from exc


def trace_content_hash(trace: WorkloadTrace) -> str:
    """SHA-256 content address of a trace's canonical serialised form.

    Formatting-independent: two files holding the same trace with
    different whitespace or key order hash identically, which is what the
    sweep cache folds into its keys.
    """
    canonical = json.dumps(
        trace_to_dict(trace), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def file_content_hash(path: str | Path) -> str:
    """Canonical content hash of a trace file (see :func:`trace_content_hash`)."""
    return trace_content_hash(load_trace(path))
