"""Task arrival-time generation (paper Section VI-B).

Tasks of each type arrive according to a renewal process whose inter-arrival
times follow a gamma distribution.  The paper derives each task type's mean
inter-arrival time by dividing the simulated time span by the estimated
number of tasks of that type, and uses a variance equal to 10 % of the mean
(except for the sensitivity experiment where the variance is swept).
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import make_generator

__all__ = ["gamma_interarrival_times", "generate_arrival_times", "spread_tasks_over_types"]


def gamma_interarrival_times(
    count: int,
    mean: float,
    *,
    rng: np.random.Generator,
    variance_fraction: float = 0.1,
) -> np.ndarray:
    """Draw ``count`` gamma inter-arrival times with the given mean.

    The gamma distribution is parameterised so that its variance equals
    ``variance_fraction * mean`` — the paper's "variance of this distribution
    is 10% of the mean".
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if mean <= 0:
        raise ValueError("mean inter-arrival time must be positive")
    if variance_fraction <= 0:
        raise ValueError("variance_fraction must be positive")
    variance = variance_fraction * mean
    shape = mean ** 2 / variance
    scale = variance / mean
    if count == 0:
        return np.empty(0, dtype=np.float64)
    return rng.gamma(shape=shape, scale=scale, size=count)


def spread_tasks_over_types(total_tasks: int, num_types: int) -> list[int]:
    """Split ``total_tasks`` as evenly as possible across ``num_types`` types.

    The paper synthesises the per-type arrival rate "by dividing the total
    number of arriving tasks by the number of task types".
    """
    if total_tasks < 0:
        raise ValueError("total_tasks must be non-negative")
    if num_types < 1:
        raise ValueError("num_types must be at least one")
    base, extra = divmod(total_tasks, num_types)
    return [base + (1 if i < extra else 0) for i in range(num_types)]


def generate_arrival_times(
    total_tasks: int,
    time_span: int,
    num_types: int,
    *,
    rng: np.random.Generator | int | None = None,
    variance_fraction: float = 0.1,
) -> list[tuple[int, int]]:
    """Generate ``(arrival_time, task_type)`` pairs sorted by arrival time.

    For each task type, the mean inter-arrival time is
    ``time_span / tasks_of_that_type`` and inter-arrival times are gamma
    distributed (see :func:`gamma_interarrival_times`).  Arrival times are
    rounded to the integer grid and clipped so consecutive arrivals of one
    type never coincide exactly with time zero.
    """
    rng = make_generator(rng)
    if time_span <= 0:
        raise ValueError("time_span must be positive")
    counts = spread_tasks_over_types(total_tasks, num_types)
    arrivals: list[tuple[int, int]] = []
    for type_index, count in enumerate(counts):
        if count == 0:
            continue
        mean_interarrival = time_span / count
        gaps = gamma_interarrival_times(
            count, mean_interarrival, rng=rng, variance_fraction=variance_fraction
        )
        times = np.cumsum(gaps)
        times = np.maximum(np.rint(times).astype(np.int64), 1)
        times = np.maximum.accumulate(times)  # keep per-type arrivals ordered after rounding
        arrivals.extend((int(t), type_index) for t in times)
    arrivals.sort()
    return arrivals
