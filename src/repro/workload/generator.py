"""Workload trace generation (paper Section VI-B).

A *workload trace* is a time-ordered list of :class:`TaskSpec` covering one
simulation trial.  Oversubscription is controlled by the total number of
tasks arriving within a fixed time span: more tasks in the same span means a
higher arrival rate on the same eight machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..pet.matrix import PETMatrix
from ..utils.rng import make_generator
from .arrivals import generate_arrival_times
from .deadlines import DeadlineModel
from .spec import TaskSpec

__all__ = ["WorkloadConfig", "WorkloadTrace", "generate_workload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one workload trial.

    Attributes
    ----------
    num_tasks:
        Total number of tasks arriving over the trace (the paper's
        oversubscription knob).
    time_span:
        Length of the arrival window in time units.
    beta:
        Deadline slack coefficient (Section VI-B).
    variance_fraction:
        Variance of the gamma inter-arrival distribution as a fraction of its
        mean (0.1 in the paper except for the arrival-variance study).
    """

    num_tasks: int
    time_span: int
    beta: float = 2.0
    variance_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        if self.time_span <= 0:
            raise ValueError("time_span must be positive")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.variance_fraction <= 0:
            raise ValueError("variance_fraction must be positive")

    @property
    def arrival_rate(self) -> float:
        """Average tasks arriving per time unit."""
        return self.num_tasks / self.time_span


@dataclass(frozen=True)
class WorkloadTrace:
    """An immutable, time-ordered sequence of task specifications."""

    tasks: tuple[TaskSpec, ...]
    config: WorkloadConfig
    num_task_types: int = field(default=0)

    def __post_init__(self) -> None:
        tasks = tuple(self.tasks)
        if any(tasks[i].arrival > tasks[i + 1].arrival for i in range(len(tasks) - 1)):
            raise ValueError("workload trace must be sorted by arrival time")
        object.__setattr__(self, "tasks", tasks)
        if self.num_task_types == 0 and tasks:
            object.__setattr__(
                self, "num_task_types", max(t.task_type for t in tasks) + 1
            )

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[TaskSpec]:
        return iter(self.tasks)

    def __getitem__(self, index: int) -> TaskSpec:
        return self.tasks[index]

    @property
    def makespan_lower_bound(self) -> int:
        """Last arrival time — the trace cannot finish before this instant."""
        return self.tasks[-1].arrival if self.tasks else 0

    def tasks_of_type(self, task_type: int) -> list[TaskSpec]:
        return [t for t in self.tasks if t.task_type == task_type]

    def type_counts(self) -> np.ndarray:
        counts = np.zeros(self.num_task_types, dtype=np.int64)
        for task in self.tasks:
            counts[task.task_type] += 1
        return counts

    def offered_load(self, pet: PETMatrix, num_machines: int | None = None) -> float:
        """Ratio of offered work to system capacity over the arrival window.

        Values above one mean the system is oversubscribed on average.
        """
        machines = pet.num_machines if num_machines is None else num_machines
        mean_exec = np.array([pet.task_type_mean(t.task_type) for t in self.tasks])
        demand = float(mean_exec.sum())
        capacity = machines * self.config.time_span
        return demand / capacity


def generate_workload(
    config: WorkloadConfig,
    pet: PETMatrix,
    *,
    rng: np.random.Generator | int | None = None,
    task_types: Sequence[int] | None = None,
) -> WorkloadTrace:
    """Generate one workload trial following Section VI-B.

    Parameters
    ----------
    config:
        Trial parameters (task count, span, slack, arrival variance).
    pet:
        PET matrix — supplies the per-type and overall mean execution times
        used for deadline assignment, and the number of task types.
    rng:
        Seed or Generator for reproducible traces.
    task_types:
        Optional subset of PET task-type indices to draw from (defaults to
        all types in the PET matrix).
    """
    rng = make_generator(rng)
    type_indices = list(range(pet.num_task_types)) if task_types is None else list(task_types)
    if not type_indices:
        raise ValueError("at least one task type is required")
    for t in type_indices:
        if not 0 <= t < pet.num_task_types:
            raise IndexError(f"task type index {t} not present in the PET matrix")

    arrivals = generate_arrival_times(
        config.num_tasks,
        config.time_span,
        len(type_indices),
        rng=rng,
        variance_fraction=config.variance_fraction,
    )
    deadline_model = DeadlineModel(pet, beta=config.beta)
    specs = []
    for task_id, (arrival, local_type) in enumerate(arrivals):
        task_type = type_indices[local_type]
        specs.append(
            TaskSpec(
                arrival=arrival,
                task_id=task_id,
                task_type=task_type,
                deadline=deadline_model(arrival, task_type),
            )
        )
    specs.sort()
    return WorkloadTrace(tuple(specs), config, num_task_types=pet.num_task_types)
