"""Workload generation: arrivals, deadlines, and full traces (Section VI-B)."""

from .arrivals import (
    gamma_interarrival_times,
    generate_arrival_times,
    spread_tasks_over_types,
)
from .deadlines import DeadlineModel, deadline_for
from .generator import WorkloadConfig, WorkloadTrace, generate_workload
from .scale import (
    SCALE_TRACE_SEED,
    SCALE_TRACE_TASKS,
    ScaleTraceConfig,
    generate_scale_trace,
    scale_trace,
)
from .spec import TaskSpec
from .traces import (
    file_content_hash,
    load_trace,
    save_trace,
    trace_content_hash,
    trace_from_dict,
    trace_to_dict,
)
from .transcoding import (
    TRACE_BUILDERS,
    TranscodingTraceConfig,
    build_named_trace,
    generate_transcoding_trace,
    reference_transcoding_trace,
)

__all__ = [
    "TaskSpec",
    "WorkloadConfig",
    "WorkloadTrace",
    "generate_workload",
    "DeadlineModel",
    "deadline_for",
    "gamma_interarrival_times",
    "generate_arrival_times",
    "spread_tasks_over_types",
    "save_trace",
    "load_trace",
    "trace_to_dict",
    "trace_from_dict",
    "trace_content_hash",
    "file_content_hash",
    "TRACE_BUILDERS",
    "TranscodingTraceConfig",
    "build_named_trace",
    "generate_transcoding_trace",
    "reference_transcoding_trace",
    "ScaleTraceConfig",
    "generate_scale_trace",
    "scale_trace",
    "SCALE_TRACE_TASKS",
    "SCALE_TRACE_SEED",
]
