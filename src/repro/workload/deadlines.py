"""Deadline assignment (paper Section VI-B).

For a task *i* of type *f* arriving at ``arr_i`` the deadline is

    delta_i = arr_i + avg_f + beta * avg_all

where ``avg_f`` is the mean execution time of the task's type across all
machines, ``avg_all`` is the mean execution time across all task types and
machines, and ``beta`` is the slack coefficient that gives tasks a chance of
completing in an oversubscribed system.
"""

from __future__ import annotations

from ..pet.matrix import PETMatrix

__all__ = ["deadline_for", "DeadlineModel"]


def deadline_for(
    arrival: int,
    task_type: int,
    pet: PETMatrix,
    *,
    beta: float = 1.0,
) -> int:
    """Deadline of one task following the paper's slack formula."""
    if beta < 0:
        raise ValueError("slack coefficient beta must be non-negative")
    avg_type = pet.task_type_mean(task_type)
    avg_all = pet.overall_mean()
    deadline = arrival + avg_type + beta * avg_all
    return int(round(deadline))


class DeadlineModel:
    """Callable deadline assigner with cached PET means.

    Caching ``avg_f`` / ``avg_all`` keeps workload generation O(tasks) even
    for large traces.
    """

    def __init__(self, pet: PETMatrix, *, beta: float = 1.0) -> None:
        if beta < 0:
            raise ValueError("slack coefficient beta must be non-negative")
        self._beta = float(beta)
        self._avg_all = pet.overall_mean()
        self._avg_types = [pet.task_type_mean(t) for t in range(pet.num_task_types)]

    @property
    def beta(self) -> float:
        return self._beta

    def __call__(self, arrival: int, task_type: int) -> int:
        if not 0 <= task_type < len(self._avg_types):
            raise IndexError(f"task type index {task_type} out of range")
        deadline = arrival + self._avg_types[task_type] + self._beta * self._avg_all
        return int(round(deadline))
