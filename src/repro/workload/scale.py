"""Synthetic production-scale workloads (ROADMAP north star, 100k+ tasks).

The paper's experiments stop at 660 tasks; the batched-rounds engine mode is
aimed at traces two to three orders of magnitude larger.  This module builds
such traces **vectorised end to end** — one merged gamma renewal stream for
the arrivals, one :func:`numpy.random.Generator.integers` draw for the task
types, one broadcast for the Section VI-B deadline formula — so generating a
100k-task trace costs well under a second and never loops per task in
Python.

Unlike :class:`~repro.workload.generator.WorkloadConfig`, the knob here is
the **offered load factor**, not the raw time span: the arrival window is
derived from the PET's overall mean execution time so the system is
oversubscribed by the same ratio at any task count,

    ``time_span = num_tasks * avg_all / (num_machines * load_factor)``.

That keeps a 10k slice of the scale trace in the same operating regime as
the full 100k trace, which is what lets the CI ``scale-smoke`` job gate the
same behaviour the full benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pet.builders import build_spec_pet
from ..pet.matrix import PETMatrix
from ..utils.rng import make_generator
from .generator import WorkloadConfig, WorkloadTrace
from .spec import TaskSpec

__all__ = [
    "ScaleTraceConfig",
    "generate_scale_trace",
    "scale_trace",
    "SCALE_TRACE_TASKS",
    "SCALE_TRACE_SEED",
]

#: Default task count of the full-scale trace (the ROADMAP's 100k target).
SCALE_TRACE_TASKS = 100_000

#: Default seed of the scale benchmarks (matches the experiments' master seed).
SCALE_TRACE_SEED = 2019


@dataclass(frozen=True)
class ScaleTraceConfig:
    """Shape parameters of the synthetic scale workload.

    Attributes
    ----------
    num_tasks:
        Total number of tasks in the trace.
    load_factor:
        Offered load as a multiple of system capacity over the arrival
        window; values above one oversubscribe the system (default 1.15,
        the gently-oversubscribed regime where pruning decisions matter).
    beta:
        Deadline slack coefficient (Section VI-B formula).
    variance_fraction:
        Variance of the gamma inter-arrival gaps as a fraction of the mean
        (0.1 matches the paper's synthetic arrival model).
    """

    num_tasks: int = SCALE_TRACE_TASKS
    load_factor: float = 1.15
    beta: float = 2.0
    variance_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        if self.load_factor <= 0:
            raise ValueError("load_factor must be positive")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.variance_fraction <= 0:
            raise ValueError("variance_fraction must be positive")


def generate_scale_trace(
    config: ScaleTraceConfig | None = None,
    *,
    rng: np.random.Generator | int | None = None,
    pet: PETMatrix | None = None,
) -> WorkloadTrace:
    """Synthesise one load-calibrated scale trace, fully vectorised.

    Parameters
    ----------
    config:
        Shape parameters (defaults build the 100k-task benchmark trace).
    rng:
        Seed or Generator; the trace is fully determined by it.
    pet:
        PET matrix supplying machine count, task types and the mean
        execution times behind the load calibration and deadline slack;
        defaults to the seeded 12x8 SPECint-style PET of Section VI-A.
    """
    config = config or ScaleTraceConfig()
    rng = make_generator(rng)
    pet = pet if pet is not None else build_spec_pet(rng=SCALE_TRACE_SEED)

    n = config.num_tasks
    avg_all = pet.overall_mean()
    avg_types = np.array(
        [pet.task_type_mean(t) for t in range(pet.num_task_types)], dtype=np.float64
    )
    # Arrival window calibrated so offered work is load_factor * capacity.
    time_span = max(1, int(round(n * avg_all / (pet.num_machines * config.load_factor))))

    # One merged renewal stream: n gamma gaps, cumulative sum, integer grid.
    mean_gap = time_span / n
    variance = config.variance_fraction * mean_gap
    gaps = rng.gamma(shape=mean_gap**2 / variance, scale=variance / mean_gap, size=n)
    arrivals = np.maximum(np.rint(np.cumsum(gaps)).astype(np.int64), 1)
    arrivals = np.maximum.accumulate(arrivals)

    task_types = rng.integers(0, pet.num_task_types, size=n)

    # Section VI-B: delta_i = arr_i + avg_f + beta * avg_all, on the integer
    # grid, with deadlines forced strictly after arrival.
    slack = avg_types[task_types] + config.beta * avg_all
    deadlines = np.rint(arrivals.astype(np.float64) + slack).astype(np.int64)
    deadlines = np.maximum(deadlines, arrivals + 1)

    specs = tuple(
        TaskSpec(
            arrival=int(arrivals[i]),
            task_id=i,
            task_type=int(task_types[i]),
            deadline=int(deadlines[i]),
        )
        for i in range(n)
    )
    workload = WorkloadConfig(
        num_tasks=n,
        time_span=time_span,
        beta=config.beta,
        variance_fraction=config.variance_fraction,
    )
    return WorkloadTrace(specs, workload, num_task_types=pet.num_task_types)


def scale_trace(
    *, seed: int = SCALE_TRACE_SEED, num_tasks: int | None = None
) -> WorkloadTrace:
    """Named-builder entry point: the default-shape scale trace.

    Registered as ``"scale"`` in
    :data:`~repro.workload.transcoding.TRACE_BUILDERS`, so sweeps, the CLI
    (``repro trace record --builder scale``) and :class:`TraceSpec`
    fingerprints can all address it by ``(builder, seed, num_tasks)``.
    """
    config = ScaleTraceConfig(
        num_tasks=SCALE_TRACE_TASKS if num_tasks is None else int(num_tasks)
    )
    return generate_scale_trace(config, rng=seed)
