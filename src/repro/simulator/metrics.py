"""Simulation results and the metrics reported in the paper's evaluation.

The primary metric is *robustness*: the percentage of tasks completing on or
before their deadlines (Section VII-A).  Following Section VI-B, a warm-up
and cool-down window of tasks is excluded so that only the oversubscribed
portion of the trial is evaluated.  Secondary metrics cover fairness
(variance of per-type completion percentages, Figure 6) and incurred cost
(Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .cost import cost_per_percent_robustness, total_cost
from .task import DropReason, Task, TaskStatus

__all__ = ["SimulationCounters", "SimulationResult"]


@dataclass
class SimulationCounters:
    """Aggregate event counts collected over one simulation run."""

    mapping_events: int = 0
    assignments: int = 0
    deferrals: int = 0
    proactive_drops: int = 0
    deadline_miss_drops: int = 0
    evictions: int = 0
    completions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "mapping_events": self.mapping_events,
            "assignments": self.assignments,
            "deferrals": self.deferrals,
            "proactive_drops": self.proactive_drops,
            "deadline_miss_drops": self.deadline_miss_drops,
            "evictions": self.evictions,
            "completions": self.completions,
        }


@dataclass
class SimulationResult:
    """Everything measured during one simulated workload trial."""

    #: All tasks in arrival order, in their terminal state.
    tasks: tuple[Task, ...]
    #: Machine names, aligned with busy_times and prices.
    machine_names: tuple[str, ...]
    #: Busy time accumulated per machine (includes wasted time on evicted tasks).
    machine_busy_times: tuple[float, ...]
    #: Price per 1000 time units per machine.
    machine_prices: tuple[float, ...]
    #: Number of task types in the PET matrix.
    num_task_types: int
    #: Aggregate counters.
    counters: SimulationCounters = field(default_factory=SimulationCounters)
    #: Simulation time at which the run finished.
    end_time: int = 0

    # ------------------------------------------------------------------
    # Task selection
    # ------------------------------------------------------------------
    def evaluated_tasks(self, *, warmup: int = 0, cooldown: int = 0) -> tuple[Task, ...]:
        """Tasks kept for analysis after trimming warm-up / cool-down windows.

        The paper removes the first and last hundred tasks of each trial so
        only the oversubscribed portion is measured; trimming is by arrival
        order.  If trimming would remove everything, the untrimmed list is
        returned so metrics stay well defined on tiny smoke-test runs.
        """
        if warmup < 0 or cooldown < 0:
            raise ValueError("warmup and cooldown must be non-negative")
        if warmup + cooldown >= len(self.tasks):
            return self.tasks
        end = len(self.tasks) - cooldown if cooldown else len(self.tasks)
        return self.tasks[warmup:end]

    # ------------------------------------------------------------------
    # Robustness (Figures 4, 5, 7, 9)
    # ------------------------------------------------------------------
    def completed_on_time(self, *, warmup: int = 0, cooldown: int = 0) -> int:
        return sum(1 for t in self.evaluated_tasks(warmup=warmup, cooldown=cooldown) if t.on_time)

    def robustness_percent(self, *, warmup: int = 0, cooldown: int = 0) -> float:
        """Percentage of evaluated tasks completing on or before their deadline."""
        tasks = self.evaluated_tasks(warmup=warmup, cooldown=cooldown)
        if not tasks:
            return 0.0
        return 100.0 * sum(1 for t in tasks if t.on_time) / len(tasks)

    # ------------------------------------------------------------------
    # Fairness (Figure 6)
    # ------------------------------------------------------------------
    def per_type_completion_percent(
        self, *, warmup: int = 0, cooldown: int = 0
    ) -> np.ndarray:
        """On-time completion percentage of each task type.

        Types with no evaluated task are reported as ``nan`` so they do not
        distort the fairness variance.
        """
        tasks = self.evaluated_tasks(warmup=warmup, cooldown=cooldown)
        totals = np.zeros(self.num_task_types, dtype=np.float64)
        on_time = np.zeros(self.num_task_types, dtype=np.float64)
        for task in tasks:
            totals[task.task_type] += 1
            if task.on_time:
                on_time[task.task_type] += 1
        with np.errstate(invalid="ignore", divide="ignore"):
            percents = np.where(totals > 0, 100.0 * on_time / totals, np.nan)
        return percents

    def fairness_variance(self, *, warmup: int = 0, cooldown: int = 0) -> float:
        """Variance of per-type completion percentages (lower = fairer)."""
        percents = self.per_type_completion_percent(warmup=warmup, cooldown=cooldown)
        valid = percents[~np.isnan(percents)]
        if valid.size == 0:
            return 0.0
        return float(np.var(valid))

    # ------------------------------------------------------------------
    # Cost (Figure 8)
    # ------------------------------------------------------------------
    def total_cost(self) -> float:
        return total_cost(self.machine_busy_times, self.machine_prices)

    def cost_per_percent_on_time(self, *, warmup: int = 0, cooldown: int = 0) -> float:
        return cost_per_percent_robustness(
            self.total_cost(), self.robustness_percent(warmup=warmup, cooldown=cooldown)
        )

    # ------------------------------------------------------------------
    # Breakdown helpers
    # ------------------------------------------------------------------
    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for task in self.tasks:
            if task.status is TaskStatus.COMPLETED:
                key = "completed-on-time" if task.on_time else "completed-late"
            elif task.status is TaskStatus.DROPPED:
                reason = task.drop_reason or DropReason.DEADLINE_MISS_UNMAPPED
                key = reason.value
            else:  # pragma: no cover - defensive; runs always terminate tasks
                key = task.status.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def summary(self, *, warmup: int = 0, cooldown: int = 0) -> dict[str, float]:
        """Flat dictionary of the headline metrics for reports."""
        return {
            "tasks": float(len(self.tasks)),
            "robustness_percent": self.robustness_percent(warmup=warmup, cooldown=cooldown),
            "fairness_variance": self.fairness_variance(warmup=warmup, cooldown=cooldown),
            "total_cost": self.total_cost(),
            "cost_per_percent_on_time": self.cost_per_percent_on_time(
                warmup=warmup, cooldown=cooldown
            ),
            "end_time": float(self.end_time),
            **{k: float(v) for k, v in self.counters.as_dict().items()},
        }


def machines_summary(
    names: Sequence[str], busy: Sequence[float], prices: Sequence[float]
) -> list[dict[str, float | str]]:
    """Per-machine utilisation/cost rows for reports."""
    return [
        {"machine": n, "busy_time": float(b), "price": float(p), "cost": float(b * p / 1000.0)}
        for n, b, p in zip(names, busy, prices)
    ]
