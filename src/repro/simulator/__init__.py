"""Discrete-event simulator of the oversubscribed heterogeneous system."""

from .cost import (
    SPEC_MACHINE_PRICES,
    TRANSCODING_MACHINE_PRICES,
    cost_per_percent_robustness,
    default_prices_for,
    price_for_machine,
    total_cost,
)
from .engine import HCSimulator, SimulatorConfig, simulate
from .machine import Machine, MachineQueueSnapshot
from .mapping import (
    Assignment,
    MappingContext,
    MappingDecision,
    QueueDrop,
    TerminalEvent,
)
from .metrics import SimulationCounters, SimulationResult
from .state import SystemState, SystemStateError
from .task import DropReason, Task, TaskStatus

__all__ = [
    "HCSimulator",
    "SimulatorConfig",
    "simulate",
    "Machine",
    "MachineQueueSnapshot",
    "MappingContext",
    "MappingDecision",
    "Assignment",
    "QueueDrop",
    "TerminalEvent",
    "SimulationCounters",
    "SimulationResult",
    "SystemState",
    "SystemStateError",
    "Task",
    "TaskStatus",
    "DropReason",
    "SPEC_MACHINE_PRICES",
    "TRANSCODING_MACHINE_PRICES",
    "price_for_machine",
    "default_prices_for",
    "total_cost",
    "cost_per_percent_robustness",
]
