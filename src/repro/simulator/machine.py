"""Machines and their bounded FCFS local queues (paper Section III).

Each machine has a limited-size local queue (six slots in the paper,
*counting the executing task*) processed first-come-first-serve.  Once a
task is mapped to a machine it cannot be remapped (data-transfer overhead),
but it can be dropped by the pruning mechanism or when its deadline passes.

The machine also exposes the probabilistic queue state the mapper needs: the
chain of completion-time PMFs down its queue (Section IV) and its final
availability PMF, built from the PET matrix.  This per-machine snapshot path
is the *reference* implementation: the engine itself serves availability
from the incrementally maintained
:class:`~repro.simulator.state.SystemState`, which runs the same chain steps
but caches them across mapping events (bit-identical by construction).  For
standalone callers that want several machines' availability PMFs in batched
form (the shape the scoring kernels of :mod:`repro.core.batch` consume —
e.g. analysis tools or custom heuristics), :func:`batched_availability`
stacks them onto one aligned :class:`~repro.core.batch.PMFBatch` grid.  Note
the in-tree two-phase heuristics batch their *virtual* (post-drop,
post-commit) availabilities instead — see ``ScoreTable.refresh_machines``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from ..core.batch import PMFBatch
from ..core.completion import DroppingPolicy, chain_step
from ..core.pmf import DiscretePMF
from ..pet.matrix import PETMatrix
from .task import Task

__all__ = ["Machine", "MachineQueueSnapshot", "batched_availability"]


@dataclass(frozen=True)
class MachineQueueSnapshot:
    """Read-only probabilistic view of one machine queue at a mapping event.

    Attributes
    ----------
    tasks:
        Queued tasks, executing task first (if any).
    completion_pmfs:
        ``completion_pmfs[k]`` is the availability PMF of the machine after
        ``tasks[k]`` (Eqs. 2-5 applied down the queue).
    availability:
        Availability PMF of the machine after its whole current queue — the
        PMF a newly mapped task's PET must be convolved with.
    """

    tasks: tuple[Task, ...]
    completion_pmfs: tuple[DiscretePMF, ...]
    availability: DiscretePMF


class Machine:
    """One heterogeneous machine with a bounded FCFS queue."""

    def __init__(
        self,
        index: int,
        name: str,
        *,
        queue_capacity: int = 6,
        price_per_time: float = 1.0,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue capacity must be at least one")
        if price_per_time < 0:
            raise ValueError("price must be non-negative")
        self.index = int(index)
        self.name = str(name)
        self.queue_capacity = int(queue_capacity)
        self.price_per_time = float(price_per_time)
        #: Task currently executing, if any.
        self.executing: Task | None = None
        #: Mapped tasks waiting behind the executing one (FCFS order).
        self.pending: deque[Task] = deque()
        #: Accumulated busy time (used by the cost model).
        self.busy_time: int = 0
        #: Monotonic counter bumped on every queue mutation; used to cache
        #: the probabilistic queue snapshot across mapping events.
        self.queue_version: int = 0
        self._snapshot_cache: tuple[tuple, MachineQueueSnapshot] | None = None

    # ------------------------------------------------------------------
    # Queue occupancy
    # ------------------------------------------------------------------
    @property
    def occupied_slots(self) -> int:
        """Number of queue slots in use, counting the executing task."""
        return (1 if self.executing is not None else 0) + len(self.pending)

    @property
    def free_slots(self) -> int:
        return self.queue_capacity - self.occupied_slots

    @property
    def is_idle(self) -> bool:
        return self.executing is None

    @property
    def has_free_slot(self) -> bool:
        return self.free_slots > 0

    def queued_tasks(self) -> list[Task]:
        """All tasks on the machine, executing task first."""
        tasks = [] if self.executing is None else [self.executing]
        tasks.extend(self.pending)
        return tasks

    # ------------------------------------------------------------------
    # Queue mutation (driven by the simulation engine)
    # ------------------------------------------------------------------
    def enqueue(self, task: Task, now: int) -> None:
        """Append a task to the local queue (mapping decision applied)."""
        if not self.has_free_slot:
            raise RuntimeError(f"machine {self.name} queue is full")
        task.mark_mapped(self.index, now)
        self.pending.append(task)
        self.queue_version += 1

    def start_next(self, now: int, actual_execution_time: int) -> Task:
        """Begin executing the head of the pending queue."""
        if self.executing is not None:
            raise RuntimeError(f"machine {self.name} is already executing a task")
        if not self.pending:
            raise RuntimeError(f"machine {self.name} has no pending tasks")
        task = self.pending.popleft()
        task.mark_executing(now, actual_execution_time)
        self.executing = task
        self.queue_version += 1
        return task

    def finish_executing(self, task: Task, now: int) -> None:
        """Release the executing slot after completion or eviction."""
        if self.executing is not task:
            raise RuntimeError(
                f"task {task.task_id} is not executing on machine {self.name}"
            )
        self.busy_time += max(0, now - (task.exec_start or now))
        self.executing = None
        self.queue_version += 1

    def remove_pending(self, task: Task) -> None:
        """Remove a not-yet-executing task from the local queue."""
        try:
            self.pending.remove(task)
        except ValueError as exc:
            raise RuntimeError(
                f"task {task.task_id} is not pending on machine {self.name}"
            ) from exc
        self.queue_version += 1

    # ------------------------------------------------------------------
    # Probabilistic queue state (used by mapping heuristics)
    # ------------------------------------------------------------------
    def executing_completion_pmf(
        self, pet: PETMatrix, now: int, *, condition_on_now: bool = False
    ) -> DiscretePMF:
        """Completion-time PMF of the executing task.

        The paper anchors the executing task's PCT at its observed start time
        (its PET shifted by the start time, Section IV); that is the default.
        With ``condition_on_now`` the PMF is additionally conditioned on the
        task not having finished by ``now`` — slightly more informative but
        it changes at every mapping event, which defeats snapshot caching.
        If the conditional mass is empty (the task is running longer than any
        historical sample) the machine is assumed to free up at the next
        time unit.
        """
        task = self.executing
        if task is None:
            return DiscretePMF.point(now)
        start = now if task.exec_start is None else task.exec_start
        pmf = pet.get(task.task_type, self.index).shift(start)
        if not condition_on_now:
            return pmf
        remaining = pmf.truncate_from(now + 1)
        if remaining.is_zero():
            return DiscretePMF.point(now + 1)
        return remaining.normalise()

    def executing_anchor_pmf(
        self,
        pet: PETMatrix,
        now: int,
        *,
        policy: DroppingPolicy = DroppingPolicy.EVICT,
        condition_on_now: bool = False,
    ) -> DiscretePMF:
        """THE chain base for an executing head task.

        The executing task's completion PMF, with its tail collapsed onto
        ``max(deadline, now + 1)`` under an evict-capable policy (the task
        is guaranteed to leave the machine by then).  Every
        availability-chain walk — :meth:`queue_snapshot`, the incremental
        :class:`~repro.simulator.state.SystemState`, and the pruning-path
        ``availability_excluding`` fallback — anchors through this single
        helper so the paths stay bit-identical by construction (the queued
        steps behind it go through
        :func:`~repro.core.completion.chain_step`).
        """
        if self.executing is None:
            raise RuntimeError(f"machine {self.name} has no executing task to anchor")
        prev = self.executing_completion_pmf(pet, now, condition_on_now=condition_on_now)
        if policy is DroppingPolicy.EVICT:
            prev = prev.collapse_tail_to(max(self.executing.deadline, now + 1))
        return prev

    def queue_snapshot(
        self,
        pet: PETMatrix,
        now: int,
        *,
        policy: DroppingPolicy = DroppingPolicy.EVICT,
        max_impulses: int | None = 32,
        condition_on_now: bool = False,
    ) -> MachineQueueSnapshot:
        """Completion-time chain for the whole local queue (Section IV).

        When the executing task is anchored at its start time (the default),
        the chain only depends on the queue contents, so it is cached and
        reused across mapping events until the queue changes.
        """
        tasks = self.queued_tasks()
        if not tasks:
            return MachineQueueSnapshot((), (), DiscretePMF.point(now))
        cache_key: tuple | None = None
        if not condition_on_now:
            # The anchor's evict collapse point is constant (the deadline)
            # until the executing task outlives it; past the deadline it
            # tracks ``now``, so it must be part of the key.
            anchor_cut = (
                max(self.executing.deadline, now + 1)
                if self.executing is not None and policy is DroppingPolicy.EVICT
                else None
            )
            cache_key = (self.queue_version, policy, max_impulses, anchor_cut)
            if self._snapshot_cache is not None and self._snapshot_cache[0] == cache_key:
                return self._snapshot_cache[1]

        pmfs: list[DiscretePMF] = []
        if self.executing is not None:
            prev = self.executing_anchor_pmf(
                pet, now, policy=policy, condition_on_now=condition_on_now
            )
            pmfs.append(prev)
            start_index = 1
        else:
            prev = DiscretePMF.point(now)
            start_index = 0
        for task in tasks[start_index:]:
            pet_entry = pet.get(task.task_type, self.index)
            prev = chain_step(pet_entry, prev, task.deadline, policy, max_impulses)
            pmfs.append(prev)
        snapshot = MachineQueueSnapshot(tuple(tasks), tuple(pmfs), prev)
        if cache_key is not None:
            self._snapshot_cache = (cache_key, snapshot)
        return snapshot

    def availability_pmf(
        self,
        pet: PETMatrix,
        now: int,
        *,
        policy: DroppingPolicy = DroppingPolicy.EVICT,
        max_impulses: int | None = 32,
        condition_on_now: bool = False,
    ) -> DiscretePMF:
        """Availability PMF after the machine's current local queue."""
        return self.queue_snapshot(
            pet,
            now,
            policy=policy,
            max_impulses=max_impulses,
            condition_on_now=condition_on_now,
        ).availability

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(index={self.index}, name={self.name!r}, "
            f"occupied={self.occupied_slots}/{self.queue_capacity})"
        )


def batched_availability(
    machines: Iterable[Machine],
    pet: PETMatrix,
    now: int,
    *,
    policy: DroppingPolicy = DroppingPolicy.EVICT,
    max_impulses: int | None = 32,
    condition_on_now: bool = False,
) -> PMFBatch:
    """Availability PMFs of several machines on one aligned batch grid.

    Parameters
    ----------
    machines:
        Machines whose current local queues should be chained; batch row
        ``i`` corresponds to the ``i``-th machine yielded.
    pet, now, policy, max_impulses, condition_on_now:
        Forwarded to :meth:`Machine.availability_pmf` (per-machine snapshot
        caching applies as usual).

    Returns
    -------
    PMFBatch
        ``(n_machines, support)`` batch ready for the scoring kernels in
        :mod:`repro.core.batch`; row values are bit-identical to the scalar
        per-machine availability PMFs.
    """
    return PMFBatch.from_pmfs(
        [
            machine.availability_pmf(
                pet,
                now,
                policy=policy,
                max_impulses=max_impulses,
                condition_on_now=condition_on_now,
            )
            for machine in machines
        ]
    )
