"""Persistent incremental availability state of the whole system.

Before this layer existed, every mapping event rebuilt machine availability
from scratch: any queue mutation invalidated the machine's snapshot cache
and the next event re-convolved the *entire* completion-time chain of that
queue (Section IV, Eqs. 2-5), even when the mutation only appended one task
at the tail.  :class:`SystemState` turns availability into a
simulation-lifetime, incrementally-maintained structure:

* every machine's completion-time chain (``chain[k]`` = availability after
  the ``k``-th queued task) is kept alive across mapping events,
* queue mutations are *notifications* (:meth:`notify_enqueue`,
  :meth:`notify_start`, :meth:`notify_finish`, :meth:`notify_remove`) that
  invalidate only the dirty *suffix* of the affected machine's chain — an
  enqueue costs one convolution step, a drop at position ``p`` costs
  ``len(queue) - p`` steps, and untouched machines cost nothing,
* all machines' availability PMFs are served as one live, padded
  ``(n_machines, support)`` :class:`~repro.core.batch.PMFBatch`
  (:meth:`availability_batch`) — the exact input shape the batched scoring
  kernels consume,
* :meth:`rebuild` recomputes everything from scratch, propagating the
  independent per-machine chains *in lockstep* through
  :func:`~repro.core.completion.batched_completion_step` (one ragged-batch
  convolve per queue position across all machines).

Exact-equivalence contract
--------------------------
The incremental path and the rebuild-from-scratch path are **bit-identical**
(``atol=0``): both run the same scalar-mirroring chain step
(:func:`~repro.core.completion.completion_pmf` followed by impulse
aggregation) with the same strict left-to-right reduction discipline as the
rest of the batched engine, and incremental maintenance only ever *caches*
immutable intermediate PMFs instead of recomputing them.  Construct the
state with ``cross_check=True`` (or run the simulator with
``SimulatorConfig(state_cross_check=True)``) and every availability query
re-derives the chain from scratch through the lockstep kernel and raises
:class:`SystemStateError` on any bit-level divergence —
``tests/simulator/test_state.py`` runs seeded full trials in this mode.

Time anchoring
--------------
With the paper's default anchoring (the executing task's completion PMF is
pinned at its observed start time) a non-empty machine's chain does not
depend on the current time, so it survives across mapping events untouched.
Chains whose base is the current time — an idle machine's ``point(now)``,
or any chain under ``condition_executing_on_now=True`` — are transparently
re-anchored when queried at a different ``now``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.batch import PMFBatch
from ..core.completion import (
    DroppingPolicy,
    batched_completion_step,
    chain_step,
    completion_pmf,
)
from ..core.pmf import DiscretePMF
from ..core.robustness import success_probability
from ..pet.matrix import PETMatrix
from .machine import Machine
from .task import Task

__all__ = ["SystemState", "SystemStateError"]


class SystemStateError(RuntimeError):
    """Raised when cross-check mode detects incremental/rebuild divergence."""


class _MachineChain:
    """Mutable per-machine record: task mirror, chain cache, dirty suffix."""

    __slots__ = (
        "tasks",
        "chain",
        "meta",
        "dirty_from",
        "head_executing",
        "anchor_now",
        "version",
        "revision",
        "verified_at",
    )

    def __init__(self) -> None:
        #: Mirror of ``machine.queued_tasks()`` (executing task first).
        self.tasks: list[Task] = []
        #: ``chain[k]`` is the availability PMF after ``tasks[k]``; entries
        #: past ``dirty_from`` are stale and recomputed lazily.
        self.chain: list[DiscretePMF] = []
        #: Lazily filled pruning sidecar, parallel to ``chain``:
        #: ``meta[k]`` is ``(success_probability, bounded_skewness)`` of
        #: ``tasks[k]`` given the tasks ahead of it — the per-task inputs of
        #: the pruner's no-drop dropping test.  Truncated wherever the chain
        #: is, so entries are never stale; may be shorter than ``chain``
        #: until the pruning path asks for it.
        self.meta: list[tuple[float, float]] = []
        #: First chain index that needs recomputation (``len(tasks)`` = clean).
        self.dirty_from: int = 0
        #: Whether ``chain[0]`` was computed with ``tasks[0]`` executing.
        self.head_executing: bool = False
        #: The ``now`` the chain base was anchored at (only meaningful when
        #: the base is time-dependent: idle head or conditioned executing PMF).
        self.anchor_now: int | None = None
        #: ``machine.queue_version`` at the last (re)sync — the defensive
        #: change detector for mutations that arrived without a notification.
        self.version: int = 0
        #: Bumped whenever the cached chain content may have changed; with
        #: the query time it keys cross-check verification, so an untouched
        #: machine re-verifies only when queried at a new ``now`` (the case
        #: a missed re-anchor would corrupt).
        self.revision: int = 0
        self.verified_at: tuple[int, int] | None = None


class SystemState:
    """Live, incrementally-updated availability engine for all machines.

    Parameters
    ----------
    machines:
        The simulator's machines; the state observes them but never mutates
        their queues.
    pet:
        PET matrix used to extend completion-time chains.
    policy:
        Dropping regime of the running system (Section IV); fixed for the
        lifetime of the state, like the simulator config it derives from.
    max_impulses:
        Impulse-aggregation cap applied after every chain step.
    condition_executing_on_now:
        Mirror of :attr:`SimulatorConfig.condition_executing_on_now`; when
        True every non-empty chain is time-dependent and is re-anchored at
        each mapping event (matching the pre-existing per-event costs).
    cross_check:
        When True, every availability query re-derives the machine's chain
        from scratch through the lockstep rebuild kernel and raises
        :class:`SystemStateError` on any bit-level mismatch with the
        incrementally maintained chain.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        pet: PETMatrix,
        *,
        policy: DroppingPolicy = DroppingPolicy.EVICT,
        max_impulses: int | None = 32,
        condition_executing_on_now: bool = False,
        cross_check: bool = False,
    ) -> None:
        self.machines = list(machines)
        self.pet = pet
        self.policy = policy
        self.max_impulses = max_impulses
        self.condition_executing_on_now = bool(condition_executing_on_now)
        self.cross_check = bool(cross_check)
        self._records = [_MachineChain() for _ in self.machines]
        self._version = 0
        self._batch_cache: tuple[tuple[int, int], PMFBatch] | None = None
        for machine, rec in zip(self.machines, self._records):
            self._resync_from_machine(rec, machine)

    # ------------------------------------------------------------------
    # Notifications (called by the engine next to each queue mutation)
    # ------------------------------------------------------------------
    def notify_enqueue(self, machine_index: int, task: Task) -> None:
        """A task was appended to the machine's local queue (tail extend)."""
        machine = self.machines[machine_index]
        rec = self._records[machine_index]
        if rec.version == machine.queue_version - 1:
            rec.tasks.append(task)
            rec.version = machine.queue_version
        else:
            self._resync_from_machine(rec, machine)
        self._touch(rec)

    def notify_start(self, machine_index: int) -> None:
        """The head task began executing (anchoring changed, membership not)."""
        machine = self.machines[machine_index]
        rec = self._records[machine_index]
        if rec.version == machine.queue_version - 1:
            rec.dirty_from = 0
            rec.version = machine.queue_version
        else:
            self._resync_from_machine(rec, machine)
        self._touch(rec)

    def notify_finish(self, machine_index: int, task: Task) -> None:
        """The executing head task left the machine (completion or eviction)."""
        machine = self.machines[machine_index]
        rec = self._records[machine_index]
        if (
            rec.version == machine.queue_version - 1
            and rec.tasks
            and rec.tasks[0] is task
        ):
            # The whole chain was anchored on the departed head.
            del rec.tasks[0]
            rec.chain.clear()
            rec.meta.clear()
            rec.dirty_from = 0
            rec.version = machine.queue_version
        else:
            self._resync_from_machine(rec, machine)
        self._touch(rec)

    def notify_remove(self, machine_index: int, task: Task) -> None:
        """A pending task was removed (deadline miss or proactive drop)."""
        machine = self.machines[machine_index]
        rec = self._records[machine_index]
        position = next(
            (k for k, queued in enumerate(rec.tasks) if queued is task), None
        )
        if rec.version == machine.queue_version - 1 and position is not None:
            del rec.tasks[position]
            del rec.chain[position:]
            del rec.meta[position:]
            rec.dirty_from = min(rec.dirty_from, position)
            rec.version = machine.queue_version
        else:
            self._resync_from_machine(rec, machine)
        self._touch(rec)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def availability(self, machine_index: int, now: int) -> DiscretePMF:
        """Availability PMF of one machine's current queue at time ``now``.

        Bit-identical to
        :meth:`repro.simulator.machine.Machine.availability_pmf` with the
        state's policy/aggregation settings — the chain runs the same scalar
        steps; it is merely cached across events instead of rebuilt.
        """
        rec = self._sync(machine_index, int(now))
        if self.cross_check:
            self._verify(machine_index, int(now), rec)
        if not rec.tasks:
            return DiscretePMF.point(int(now))
        return rec.chain[-1]

    def chain(self, machine_index: int, now: int) -> tuple[DiscretePMF, ...]:
        """The machine's full completion-time chain (one PMF per queued task)."""
        rec = self._sync(machine_index, int(now))
        if self.cross_check:
            self._verify(machine_index, int(now), rec)
        return tuple(rec.chain)

    def availability_batch(self, now: int) -> PMFBatch:
        """All machines' availability PMFs on one aligned, padded batch grid.

        The batch is cached and only re-stacked when some machine's chain
        (or the current time, for time-anchored chains) changed; row ``j``
        is machine ``j`` and the values match :meth:`availability` bit for
        bit.
        """
        now = int(now)
        pmfs = [
            self.availability(machine_index, now)
            for machine_index in range(len(self.machines))
        ]
        key = (self._version, now)
        if self._batch_cache is not None and self._batch_cache[0] == key:
            return self._batch_cache[1]
        batch = PMFBatch.from_pmfs(pmfs)
        self._batch_cache = (key, batch)
        return batch

    def availability_excluding(
        self, machine_index: int, dropped_task_ids: Iterable[int], now: int
    ) -> DiscretePMF:
        """Availability of a machine's queue with some tasks removed.

        Used by the pruning path to evaluate post-drop availability: the
        chain *prefix* ahead of the first dropped task is reused verbatim
        and only the suffix behind it is re-convolved — bit-identical to
        recomputing the reduced queue from scratch, at a fraction of the
        cost.
        """
        now = int(now)
        dropped = set(dropped_task_ids)
        rec = self._sync(machine_index, now)
        tasks = rec.tasks
        kept = [task for task in tasks if task.task_id not in dropped]
        if len(kept) == len(tasks):
            return self.availability(machine_index, now)
        if not kept:
            return DiscretePMF.point(now)
        first = next(
            k for k, task in enumerate(tasks) if task.task_id in dropped
        )
        machine = self.machines[machine_index]
        if first == 0:
            # Head (possibly the executing task) dropped: the reduced chain
            # starts from an immediately-free machine, matching the pruner.
            prev = DiscretePMF.point(now)
            suffix = kept
        else:
            prev = rec.chain[first - 1]
            suffix = kept[first:]
        for task in suffix:
            prev = chain_step(
                self.pet.get(task.task_type, machine.index),
                prev,
                task.deadline,
                self.policy,
                self.max_impulses,
            )
        return prev

    def prune_prefix_meta(
        self, machine_index: int, now: int
    ) -> tuple[tuple[float, float], ...]:
        """Per-task pruning inputs down the machine's *current* (no-drop) queue.

        ``result[k]`` is ``(success_probability, bounded_skewness)`` of the
        ``k``-th queued task given every task ahead of it kept — exactly the
        quantities :meth:`repro.pruning.pruner.Pruner.prune_machine_queue`
        derives while walking the queue from the head.  The tuple is cached
        alongside the availability chain and invalidated with the same
        dirty-suffix discipline, so a queue untouched since the last mapping
        event answers without a single convolution; the pruner only falls
        back to re-convolving *behind* the first task it actually drops.

        For an executing head the pair is computed from the task's raw
        (uncollapsed) completion PMF — the pruner evaluates the executing
        task on the chance it finishes by its deadline given it already
        started, not on the evict-collapsed chain anchor.
        """
        now = int(now)
        rec = self._sync(machine_index, now)
        if self.cross_check:
            self._verify(machine_index, now, rec)
        machine = self.machines[machine_index]
        tasks = rec.tasks
        while len(rec.meta) < len(tasks):
            k = len(rec.meta)
            task = tasks[k]
            if k == 0 and rec.head_executing:
                raw = machine.executing_completion_pmf(
                    self.pet, now, condition_on_now=self.condition_executing_on_now
                )
                prob = float(min(1.0, raw.cdf(task.deadline)))
                skew = raw.bounded_skewness()
            else:
                prev = rec.chain[k - 1] if k else DiscretePMF.point(now)
                pet_entry = self.pet.get(task.task_type, machine.index)
                prob = success_probability(pet_entry, prev, task.deadline, self.policy)
                pct = completion_pmf(pet_entry, prev, task.deadline, self.policy)
                skew = pct.bounded_skewness()
            rec.meta.append((prob, skew))
        return tuple(rec.meta)

    # ------------------------------------------------------------------
    # Rebuild path (cross-check reference and cold start)
    # ------------------------------------------------------------------
    def rebuild(self, now: int) -> None:
        """Recompute every machine's chain from scratch, in lockstep.

        All machines' chains advance one queue position per round through
        :func:`~repro.core.completion.batched_completion_step` (machines
        whose queues are exhausted drop out of the round).  The result
        replaces the incremental caches and is bit-identical to them — this
        is the reference path the cross-check mode compares against and the
        baseline the incremental benchmark gate measures.
        """
        now = int(now)
        chains = self._rebuild_chains(range(len(self.machines)), now)
        for machine_index, chain in zip(range(len(self.machines)), chains):
            machine = self.machines[machine_index]
            rec = self._records[machine_index]
            rec.tasks = machine.queued_tasks()
            rec.chain = chain
            rec.meta = []
            rec.dirty_from = len(rec.tasks)
            rec.head_executing = bool(rec.tasks) and rec.tasks[0] is machine.executing
            rec.anchor_now = now
            rec.version = machine.queue_version
            self._touch(rec)

    def _rebuild_chains(
        self, machine_indices: Iterable[int], now: int
    ) -> list[list[DiscretePMF]]:
        """From-scratch chains for several machines via lockstep propagation."""
        indices = list(machine_indices)
        chains: list[list[DiscretePMF]] = [[] for _ in indices]
        tasks_of: list[list[Task]] = []
        prevs: list[DiscretePMF] = []
        positions: list[int] = []
        for row, machine_index in enumerate(indices):
            machine = self.machines[machine_index]
            tasks = machine.queued_tasks()
            tasks_of.append(tasks)
            if tasks and tasks[0] is machine.executing:
                prev = self._executing_anchor(machine, now)
                chains[row].append(prev)
                positions.append(1)
            else:
                prev = DiscretePMF.point(now)
                positions.append(0)
            prevs.append(prev)
        while True:
            rows = [
                row
                for row in range(len(indices))
                if positions[row] < len(tasks_of[row])
            ]
            if not rows:
                break
            step_tasks = [tasks_of[row][positions[row]] for row in rows]
            stepped = batched_completion_step(
                [
                    self.pet.get(task.task_type, indices[row])
                    for row, task in zip(rows, step_tasks)
                ],
                [prevs[row] for row in rows],
                [task.deadline for task in step_tasks],
                self.policy,
                max_impulses=self.max_impulses,
            )
            for row, pmf in zip(rows, stepped):
                prevs[row] = pmf
                chains[row].append(pmf)
                positions[row] += 1
        return chains

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _touch(self, rec: _MachineChain) -> None:
        rec.revision += 1
        self._version += 1
        self._batch_cache = None

    def _resync_from_machine(self, rec: _MachineChain, machine: Machine) -> None:
        """Defensive full resync after an un-notified queue mutation."""
        rec.tasks = machine.queued_tasks()
        rec.chain = []
        rec.meta = []
        rec.dirty_from = 0
        rec.version = machine.queue_version

    def _executing_anchor(self, machine: Machine, now: int) -> DiscretePMF:
        """Chain base for an executing head (the shared anchor helper)."""
        return machine.executing_anchor_pmf(
            self.pet,
            now,
            policy=self.policy,
            condition_on_now=self.condition_executing_on_now,
        )

    def _sync(self, machine_index: int, now: int) -> _MachineChain:
        machine = self.machines[machine_index]
        rec = self._records[machine_index]
        if rec.version != machine.queue_version:
            self._resync_from_machine(rec, machine)
            self._touch(rec)
        tasks = rec.tasks
        if not tasks:
            rec.dirty_from = 0
            return rec
        head_executing = machine.executing is not None and tasks[0] is machine.executing
        time_anchored = not head_executing or self.condition_executing_on_now
        if rec.dirty_from > 0:
            if head_executing != rec.head_executing:
                rec.dirty_from = 0
            elif time_anchored and rec.anchor_now != now:
                rec.dirty_from = 0
            elif (
                head_executing
                and self.policy is DroppingPolicy.EVICT
                and rec.anchor_now is not None
                and max(machine.executing.deadline, rec.anchor_now + 1)
                != max(machine.executing.deadline, now + 1)
            ):
                # An executing head that has outlived its deadline: the
                # evict collapse point ``max(deadline, now + 1)`` tracks
                # the query time, so the anchor must be recomputed.  (The
                # engine always evicts at the deadline, but externally
                # driven machines can be queried in this window.)
                rec.dirty_from = 0
        if rec.dirty_from >= len(tasks):
            return rec
        self._advance(rec, machine, now)
        self._touch(rec)
        return rec

    def _advance(self, rec: _MachineChain, machine: Machine, now: int) -> None:
        """Recompute the dirty suffix of one machine's chain."""
        tasks = rec.tasks
        start = rec.dirty_from
        del rec.chain[start:]
        del rec.meta[start:]
        if start == 0:
            head_executing = (
                machine.executing is not None and tasks[0] is machine.executing
            )
            if head_executing:
                prev = self._executing_anchor(machine, now)
                rec.chain.append(prev)
                start = 1
            else:
                prev = DiscretePMF.point(now)
            rec.head_executing = head_executing
            rec.anchor_now = now
        else:
            prev = rec.chain[start - 1]
        for task in tasks[start:]:
            prev = chain_step(
                self.pet.get(task.task_type, machine.index),
                prev,
                task.deadline,
                self.policy,
                self.max_impulses,
            )
            rec.chain.append(prev)
        rec.dirty_from = len(tasks)

    def _verify(self, machine_index: int, now: int, rec: _MachineChain) -> None:
        """Cross-check the incremental chain against a from-scratch rebuild.

        Keyed on ``(revision, now)``: a chain is re-verified whenever its
        cached content changed *or* it is queried at a new time — the
        latter is exactly the window in which a missed re-anchor in
        ``_sync`` would serve a stale chain, so it must not be memoised
        away.
        """
        if rec.verified_at == (rec.revision, now):
            return
        reference = self._rebuild_chains([machine_index], now)[0]
        if len(reference) != len(rec.chain):
            raise SystemStateError(
                f"machine {machine_index}: incremental chain has "
                f"{len(rec.chain)} entries, rebuild has {len(reference)}"
            )
        for position, (incremental, rebuilt) in enumerate(
            zip(rec.chain, reference)
        ):
            if incremental.offset != rebuilt.offset or not np.array_equal(
                incremental.probs, rebuilt.probs
            ):
                raise SystemStateError(
                    f"machine {machine_index}: incremental chain diverges "
                    f"from rebuild at queue position {position} (time {now})"
                )
        rec.verified_at = (rec.revision, now)
