"""Event-driven simulator of the oversubscribed HC system (paper Section III).

The engine drives a workload trace through the system model of the paper:

* tasks arrive dynamically into a batch queue of unmapped tasks,
* a *mapping event* fires whenever the scheduling policy is due (see the
  two scheduling modes below); before each engine step, tasks whose
  deadlines have already passed are removed from the system,
* the active mapping heuristic examines the batch queue and the machine
  queues and returns assignments (and, for pruning-aware heuristics,
  proactive drops and deferrals),
* machines process their bounded local queues FCFS with no preemption or
  multitasking; actual execution times are sampled from the PET matrix,
* optionally (default, matching the paper's hard-deadline semantics) an
  executing task is evicted the moment its deadline passes.

The engine is deterministic given a seeded ``numpy.random.Generator``.

Everything the engine reacts to lives in one **global event heap**
(:class:`~repro.simulator.events.EventManager`): arrivals, finishes,
scheduling-round markers, and stream watermarks are typed events popped in
``(time, kind, seq)`` order, following the Firmament-style trace
simulators.  Two scheduling modes share that heap:

* **per-event mapping** (``batch_window=0``, the default and the paper's
  protocol) — a mapping event fires at every event timestamp, exactly as
  the pre-rework loop did.  This mode is bit-identical (atol=0) to the
  frozen :class:`~repro.simulator.legacy.LegacyHCSimulator`, which the
  differential property suite pins.
* **batched scheduling rounds** (``batch_window=W > 0``) — mapping events
  fire at most once per ``W`` time units; all tasks arriving within the
  window accumulate in the batch queue and are mapped together against a
  single :class:`~repro.heuristics.scoring.ScoreTable` fill, amortising
  the batched kernel calls across the round (Firmament's
  ``simulator.cc::ReplaySimulation`` batch mode).  A ``ROUND`` marker in
  the heap bounds round latency when no task event lands at the round
  boundary.  Machines still pull from their local queues and deadline
  drops still happen at every event timestamp — only the *mapping
  decisions* are batched.

The simulator owns a live :class:`~repro.simulator.state.SystemState`: the
machines' availability chains persist across mapping events and every queue
mutation below is paired with a notification that invalidates only the
affected machine's chain suffix.  Mapping events read availability as views
over that state (``MappingContext.machine_availability`` /
``availability_batch``) and the heuristics' ``ScoreTable`` scores every
(task, machine) candidate pair against it in a single batched kernel call.
See ``docs/architecture.md`` for the full event-loop lifecycle.

Two driving modes share the same event loop:

* **batch replay** — :meth:`HCSimulator.run` pre-loads a whole trace and
  drains the event heap to completion (the paper's protocol);
* **externally-driven streaming** — :meth:`HCSimulator.begin_stream` /
  :meth:`inject_task` / :meth:`advance_until` / :meth:`finish_stream` let a
  caller (the :mod:`repro.serve` admission service) feed arrivals one at a
  time and advance virtual time between them.  ``advance_until`` plants a
  typed ``WATERMARK`` event and drains the heap up to it, so the frontier
  is itself part of the heap discipline.  ``run`` is implemented on top of
  these primitives, so a trace streamed in arrival order produces
  bit-identical decisions to a batch replay of the same trace — in either
  scheduling mode.

An optional :class:`EngineObserver` receives per-task callbacks (assigned,
terminal) and per-mapping-event callbacks as they happen, which is how the
serving layer streams decisions without touching simulation semantics.
Under batched rounds the assignments of one round surface through
``on_assigned`` in ascending task-id order (a deterministic contract for
consumers), and a task's terminal callback never precedes its assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter_ns
from typing import Protocol, Sequence

import numpy as np

from ..core.completion import DroppingPolicy
from ..core.kernels import (
    KERNEL_BACKEND_NAMES,
    InstrumentedBackend,
    active_backend,
    resolve_backend,
    use_backend,
)
from ..obs.telemetry import NULL_TELEMETRY
from ..obs.telemetry import active as obs_active
from ..pet.matrix import PETMatrix
from ..utils.rng import make_generator
from ..workload.generator import WorkloadTrace
from ..workload.spec import TaskSpec
from .cost import default_prices_for
from .events import EventKind, EventManager
from .machine import Machine
from .mapping import (
    MappingContext,
    MappingDecision,
    TerminalEvent,
    batch_in_arrival_order,
)
from .metrics import SimulationCounters, SimulationResult
from .state import SystemState
from .task import DropReason, Task, TaskStatus

__all__ = [
    "SimulatorConfig",
    "MappingHeuristicProtocol",
    "EngineObserver",
    "HCSimulator",
    "simulate",
]


class MappingHeuristicProtocol(Protocol):
    """Structural interface every mapping heuristic implements."""

    name: str

    def map_tasks(self, context: MappingContext) -> MappingDecision:  # pragma: no cover
        ...

    def reset(self) -> None:  # pragma: no cover
        ...


class EngineObserver(Protocol):
    """Callbacks the engine fires as decisions happen (all optional to act on).

    Pure notifications: observers must not mutate engine state.  The serving
    layer implements this to stream per-task decisions in real time; batch
    replays run with ``observer=None`` and skip the calls entirely.

    Ordering contract: within one mapping event, ``on_assigned`` callbacks
    arrive in decision order in per-event mode and in ascending task-id
    order under batched rounds (``batch_window > 0``); a task's
    ``on_terminal`` callback never precedes its ``on_assigned``.
    """

    def on_assigned(self, task: Task, machine_index: int, now: int) -> None:  # pragma: no cover
        ...

    def on_terminal(self, task: Task) -> None:  # pragma: no cover
        ...

    def on_mapping_event(self, now: int, decision: MappingDecision) -> None:  # pragma: no cover
        ...


@dataclass(frozen=True)
class SimulatorConfig:
    """System-model parameters of the simulated HC system."""

    #: Machine local-queue size, counting the executing task (paper: 6).
    queue_capacity: int = 6
    #: Evict an executing task the instant its deadline passes.  This matches
    #: the hard-deadline semantics ("no value remains in executing the task")
    #: and the evict-capable completion-time model (Section IV, case C).
    evict_executing_at_deadline: bool = True
    #: Impulse-aggregation cap used when propagating completion-time PMFs
    #: (None = exact convolutions; 32 keeps mapping events fast).
    max_impulses: int | None = 32
    #: Condition the executing task's completion PMF on the current time at
    #: every mapping event.  The paper anchors it at the start time instead
    #: (default False), which also allows queue-chain caching.
    condition_executing_on_now: bool = False
    #: Verify the incremental :class:`~repro.simulator.state.SystemState`
    #: against a from-scratch lockstep rebuild at every availability query
    #: (raises on any bit-level divergence).  Test/diagnostic mode; the
    #: equivalence suite runs seeded full trials with this enabled and
    #: asserts the results are bit-identical to the default path.
    state_cross_check: bool = False
    #: Batched-scheduling-round window in time units.  ``0`` (default) maps
    #: at every event timestamp — the paper's per-event protocol,
    #: bit-identical to the pre-rework loop.  ``W > 0`` fires mapping
    #: events at most once per ``W`` units: arrivals accumulate across the
    #: round and are scored in one batched ``ScoreTable`` fill, which
    #: amortises kernel calls on large traces at the cost of bounded extra
    #: mapping latency (at most ``W`` time units per task).
    batch_window: int = 0
    #: Kernel backend the engine's event loops dispatch through (one of
    #: :data:`repro.core.kernels.KERNEL_BACKEND_NAMES`).  ``None`` (default)
    #: keeps the process-wide selection — the ``REPRO_KERNEL_BACKEND``
    #: environment variable or the ``numpy`` reference.  The backend only
    #: changes *how* the kernels run: the ``numpy`` and ``numba`` paths are
    #: bit-identical, the ``array-api`` path is pinned within its documented
    #: tolerance (see ``docs/architecture.md``).
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least one")
        if self.max_impulses is not None and self.max_impulses < 1:
            raise ValueError("max_impulses must be at least one (or None)")
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.kernel_backend is not None and self.kernel_backend not in KERNEL_BACKEND_NAMES:
            raise ValueError(
                f"unknown kernel backend {self.kernel_backend!r}; expected one "
                f"of {KERNEL_BACKEND_NAMES}"
            )

    @property
    def dropping_policy(self) -> DroppingPolicy:
        """Completion-time regime matching the configured system behaviour."""
        return DroppingPolicy.EVICT if self.evict_executing_at_deadline else DroppingPolicy.PENDING


# Module-level aliases keep the inner loop free of attribute lookups on the
# enum class (popped hundreds of thousands of times on large traces).
_WATERMARK = int(EventKind.WATERMARK)
_ARRIVAL = int(EventKind.ARRIVAL)
_FINISH = int(EventKind.FINISH)


class HCSimulator:
    """Discrete-event simulator binding a PET matrix, machines, and a heuristic."""

    def __init__(
        self,
        pet: PETMatrix,
        heuristic: MappingHeuristicProtocol,
        *,
        config: SimulatorConfig | None = None,
        machine_prices: Sequence[float] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.pet = pet
        self.heuristic = heuristic
        self.config = config or SimulatorConfig()
        prices = (
            list(machine_prices)
            if machine_prices is not None
            else default_prices_for(pet.machine_names)
        )
        if len(prices) != pet.num_machines:
            raise ValueError("one price per machine is required")
        self.machine_prices = [float(p) for p in prices]
        self.rng = make_generator(rng)
        #: Kernel backend scoped around the event loops; resolved eagerly so
        #: a missing optional dependency fails at construction, not mid-run.
        #: ``None`` (no explicit selection) leaves the process-wide backend
        #: untouched — ``use_backend(None)`` is a no-op scope.
        self._kernel_backend = (
            resolve_backend(self.config.kernel_backend)
            if self.config.kernel_backend is not None
            else None
        )
        #: Telemetry registry and derived loop plumbing; rebound from the
        #: process-active registry every time a run/stream begins (see
        #: ``_reset_state``), so one engine instance can serve traced and
        #: untraced runs back to back.
        self._obs = NULL_TELEMETRY
        self._loop_backend = self._kernel_backend
        self._mapping_span_name = f"engine.mapping_event.{self.heuristic.name}"
        self._popped_arrivals = 0
        self._popped_finishes = 0
        self._popped_markers = 0

        self.machines: list[Machine] = []
        #: Live incremental availability state; (re)built by ``_reset_state``
        #: and notified next to every queue mutation below.
        self.state: SystemState | None = None
        #: Optional decision-stream observer (see :class:`EngineObserver`).
        self.observer: EngineObserver | None = None
        #: The single global event heap (arrivals, finishes, rounds,
        #: watermarks as typed events).
        self.events = EventManager()
        self.tasks: dict[int, Task] = {}
        self._batch: dict[int, Task] = {}
        self._counters = SimulationCounters()
        self._misses_since_event = 0
        self._terminal_since_event: list[TerminalEvent] = []
        self._now = 0
        #: Latest event timestamp fully processed in streaming mode; arrivals
        #: at or before this instant can no longer join their mapping event.
        self._processed_through = -1
        #: Next instant a scheduling round is due (batched-rounds mode);
        #: ``None`` until the first engine step fires the first round.
        self._next_round_at: int | None = None
        #: Timestamp of the latest ROUND marker pushed, so each round
        #: boundary is scheduled into the heap at most once.
        self._round_event_at: int | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, trace: WorkloadTrace) -> SimulationResult:
        """Simulate one workload trace to completion and return the metrics."""
        self.begin_stream()
        for spec in trace:
            self.inject_task(spec)
        return self.finish_stream()

    # ------------------------------------------------------------------
    # Externally-driven streaming mode (the online serving layer).
    # ------------------------------------------------------------------
    def begin_stream(self) -> None:
        """Reset the engine for an externally-driven arrival stream."""
        self._reset_state()
        self.heuristic.reset()

    def validate_inject(self, spec: TaskSpec) -> None:
        """Check a submission against the live stream *without* touching state.

        Raises exactly the errors :meth:`inject_task` would raise — duplicate
        task id, or an arrival at or before an already-processed event
        timestamp — so admission layers can reject a submission *before*
        advancing the virtual clock on its behalf.
        """
        if self.state is None:
            raise RuntimeError("begin_stream() must be called before inject_task()")
        if spec.task_id in self.tasks:
            raise ValueError(f"task {spec.task_id} was already injected")
        if spec.arrival <= self._processed_through:
            raise ValueError(
                f"task {spec.task_id} arrives at {spec.arrival}, but the engine "
                f"has already processed events through {self._processed_through}"
            )

    def inject_task(self, spec: TaskSpec) -> Task:
        """Add one arriving task to the live system.

        The arrival must not predate an already-processed event timestamp:
        the mapping event at that instant has fired and cannot be re-run
        without breaking replay equivalence.
        """
        self.validate_inject(spec)
        task = Task(spec)
        self.tasks[spec.task_id] = task
        self.events.push(spec.arrival, EventKind.ARRIVAL, spec.task_id)
        return task

    def advance_until(self, time: int) -> None:
        """Process every pending event timestamp strictly before ``time``.

        Events at ``time`` itself stay pending so late-but-simultaneous
        arrivals can still join their mapping event — the caller advances
        past an instant only once it knows no more arrivals carry it.

        The frontier is a typed ``WATERMARK`` event planted in the heap: it
        sorts ahead of every real event at its own timestamp, so draining
        stops the moment the watermark surfaces — before the guarded
        instant is opened.
        """
        events = self.events
        events.push(time, EventKind.WATERMARK)
        with use_backend(self._loop_backend):
            while True:
                head = events.peek()
                if head[1] == _WATERMARK:
                    events.pop()
                    return
                self._step_once()

    def finish_stream(self) -> SimulationResult:
        """Drain all pending events, finalise, and return the metrics."""
        with use_backend(self._loop_backend):
            while self.events:
                self._step_once()
            self._finalise_unfinished_tasks()
        if self._obs.enabled:
            self._publish_obs_counters()
        ordered = tuple(
            sorted(self.tasks.values(), key=lambda t: (t.arrival, t.task_id))
        )
        return SimulationResult(
            tasks=ordered,
            machine_names=tuple(self.pet.machine_names),
            machine_busy_times=tuple(float(m.busy_time) for m in self.machines),
            machine_prices=tuple(self.machine_prices),
            num_task_types=self.pet.num_task_types,
            counters=self._counters,
            end_time=self._now,
        )

    @property
    def pending_events(self) -> int:
        """Pending *task* events (arrivals/finishes) still in the heap.

        Round markers and watermarks are bookkeeping, not workload, and are
        excluded from the count.
        """
        return self.events.count_kind(EventKind.ARRIVAL) + self.events.count_kind(
            EventKind.FINISH
        )

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _step_once(self) -> None:
        """Process one event timestamp: events, drops, mapping policy, starts."""
        events = self.events
        now = events.next_time()
        self._now = now
        tasks = self.tasks
        batch = self._batch
        while events.pending_at(now):
            _, kind, _, task_id = events.pop()
            if kind == _ARRIVAL:
                self._popped_arrivals += 1
                batch[task_id] = tasks[task_id]
            elif kind == _FINISH:
                self._popped_finishes += 1
                self._handle_finish(tasks[task_id], now)
            else:
                # ROUND markers (and defensively, stray watermarks) carry no
                # payload: popping one is what forces this step to exist.
                self._popped_markers += 1
        self._drop_missed_tasks(now)
        window = self.config.batch_window
        if window == 0 or self._next_round_at is None or now >= self._next_round_at:
            # Per-event mode, or a scheduling round is due: map now.  The
            # next round is anchored at this firing instant.
            self._run_mapping_event(now)
            self._next_round_at = now + window
        elif batch and self._round_event_at != self._next_round_at:
            # Mid-round step left unmapped tasks behind: make sure the round
            # boundary itself exists in the heap, or a quiet stretch (no
            # arrivals, no finishes) would strand them past the window.
            self._round_event_at = self._next_round_at
            events.push(self._next_round_at, EventKind.ROUND)
        self._start_executions(now)
        self._processed_through = now

    def _reset_state(self) -> None:
        self.machines = [
            Machine(
                index=i,
                name=name,
                queue_capacity=self.config.queue_capacity,
                price_per_time=self.machine_prices[i],
            )
            for i, name in enumerate(self.pet.machine_names)
        ]
        self.state = SystemState(
            self.machines,
            self.pet,
            policy=self.config.dropping_policy,
            max_impulses=self.config.max_impulses,
            condition_executing_on_now=self.config.condition_executing_on_now,
            cross_check=self.config.state_cross_check,
        )
        self.tasks = {}
        self._batch = {}
        self.events = EventManager()
        self._counters = SimulationCounters()
        self._misses_since_event = 0
        self._terminal_since_event = []
        self._now = 0
        self._processed_through = -1
        self._next_round_at = None
        self._round_event_at = None
        # Bind the active telemetry registry for this run.  Disabled (the
        # null registry): the loop dispatches through the bare configured
        # backend and executes bit-identical code.  Enabled: kernel calls
        # dispatch through an InstrumentedBackend wrapper so every call is
        # timed into ``kernel.<backend>.<method>`` spans.
        self._obs = obs_active()
        self._mapping_span_name = f"engine.mapping_event.{self.heuristic.name}"
        self._popped_arrivals = 0
        self._popped_finishes = 0
        self._popped_markers = 0
        if self._obs.enabled:
            self._loop_backend = InstrumentedBackend(
                self._kernel_backend
                if self._kernel_backend is not None
                else active_backend(),
                self._obs,
            )
        else:
            self._loop_backend = self._kernel_backend

    def _publish_obs_counters(self) -> None:
        """Fold this stream's totals into the active telemetry registry.

        Called once per finished stream (additive ``count``), so sequential
        trials under one registry — a multi-trial ``repro simulate``, the
        obs-smoke scale run — accumulate rather than overwrite.
        """
        obs = self._obs
        counters = self._counters
        obs.count("engine.events.arrival", self._popped_arrivals)
        obs.count("engine.events.finish", self._popped_finishes)
        obs.count("engine.events.marker", self._popped_markers)
        obs.count("engine.rounds", counters.mapping_events)
        obs.count("engine.mapping_events", counters.mapping_events)
        obs.count("engine.completions", counters.completions)
        obs.count("engine.assignments", counters.assignments)
        obs.count("engine.deferrals", counters.deferrals)
        obs.count("engine.evictions", counters.evictions)
        obs.count("engine.deadline_miss_drops", counters.deadline_miss_drops)
        obs.count("engine.proactive_drops", counters.proactive_drops)
        obs.gauge("engine.end_time", self._now)

    def _handle_finish(self, task: Task, now: int) -> None:
        # The task may have been proactively dropped after this event was
        # scheduled; such stale events are ignored.
        if task.status is not TaskStatus.EXECUTING or task.machine is None:
            return
        machine = self.machines[task.machine]
        if machine.executing is not task:
            return
        machine.finish_executing(task, now)
        self.state.notify_finish(machine.index, task)
        finish_time = (task.exec_start or now) + (task.actual_execution_time or 0)
        if finish_time <= now:
            task.mark_completed(now)
            self._counters.completions += 1
            if not task.on_time:
                self._misses_since_event += 1
            self._record_terminal(task)
        else:
            # Eviction: deadline reached before the sampled execution time elapsed.
            task.mark_dropped(now, DropReason.DEADLINE_MISS_EXECUTING)
            self._counters.evictions += 1
            self._misses_since_event += 1
            self._record_terminal(task)

    def _record_terminal(self, task: Task) -> None:
        self._terminal_since_event.append(
            TerminalEvent(task.task_id, task.task_type, task.on_time)
        )
        if self.observer is not None:
            self.observer.on_terminal(task)

    def _drop_missed_tasks(self, now: int) -> None:
        """Remove tasks whose deadlines passed while waiting (Section III)."""
        for task_id in [tid for tid, t in self._batch.items() if t.deadline <= now]:
            task = self._batch.pop(task_id)
            task.mark_dropped(now, DropReason.DEADLINE_MISS_UNMAPPED)
            self._counters.deadline_miss_drops += 1
            self._misses_since_event += 1
            self._record_terminal(task)
        for machine in self.machines:
            for task in [t for t in machine.pending if t.deadline <= now]:
                machine.remove_pending(task)
                self.state.notify_remove(machine.index, task)
                task.mark_dropped(now, DropReason.DEADLINE_MISS_QUEUED)
                self._counters.deadline_miss_drops += 1
                self._misses_since_event += 1
                self._record_terminal(task)

    def _run_mapping_event(self, now: int) -> None:
        context = MappingContext(
            now=now,
            batch=batch_in_arrival_order(self._batch.values()),
            machines=tuple(self.machines),
            pet=self.pet,
            policy=self.config.dropping_policy,
            misses_since_last_event=self._misses_since_event,
            terminal_events=tuple(self._terminal_since_event),
            max_impulses=self.config.max_impulses,
            condition_executing_on_now=self.config.condition_executing_on_now,
            state=self.state,
        )
        self._misses_since_event = 0
        self._terminal_since_event = []
        obs = self._obs
        if obs.enabled:
            start_ns = perf_counter_ns()
        decision = self.heuristic.map_tasks(context)
        decision.validate(context)
        self._apply_decision(decision, now)
        self._counters.mapping_events += 1
        if obs.enabled:
            obs.add_span(
                self._mapping_span_name,
                start_ns,
                perf_counter_ns() - start_ns,
                now=now,
                batch=len(context.batch),
            )
        if self.observer is not None:
            self.observer.on_mapping_event(now, decision)

    def _apply_decision(self, decision: MappingDecision, now: int) -> None:
        for drop in decision.queue_drops:
            machine = self.machines[drop.machine_index]
            task = self.tasks[drop.task_id]
            if task.is_terminal:
                continue
            if machine.executing is task:
                machine.finish_executing(task, now)
                self.state.notify_finish(machine.index, task)
            else:
                machine.remove_pending(task)
                self.state.notify_remove(machine.index, task)
            task.mark_dropped(now, DropReason.PRUNED)
            self._counters.proactive_drops += 1
            self._record_terminal(task)

        # Assignments are *applied* in decision order (that order decides who
        # wins the last free slot); under batched rounds the observer sees
        # them in ascending task-id order — the deterministic contract for
        # round consumers — while per-event mode keeps the legacy decision
        # order so the decision stream stays bit-identical to the old loop.
        applied: list[tuple[Task, int]] = []
        for assignment in decision.assignments:
            machine = self.machines[assignment.machine_index]
            task = self.tasks[assignment.task_id]
            if task.is_terminal or task.task_id not in self._batch:
                continue
            if not machine.has_free_slot:
                continue
            del self._batch[task.task_id]
            machine.enqueue(task, now)
            self.state.notify_enqueue(machine.index, task)
            self._counters.assignments += 1
            if self.observer is not None:
                applied.append((task, machine.index))
        if self.observer is not None and applied:
            if self.config.batch_window > 0:
                applied.sort(key=lambda pair: pair[0].task_id)
            for task, machine_index in applied:
                self.observer.on_assigned(task, machine_index, now)

        self._counters.deferrals += len(decision.deferrals)

    def _start_executions(self, now: int) -> None:
        for machine in self.machines:
            if machine.is_idle and machine.pending:
                head = machine.pending[0]
                pet_entry = self.pet.get(head.task_type, machine.index)
                actual = int(pet_entry.sample(self.rng))
                task = machine.start_next(now, actual)
                self.state.notify_start(machine.index)
                finish_time = now + actual
                if (
                    self.config.evict_executing_at_deadline
                    and finish_time > task.deadline
                ):
                    self.events.push(
                        max(task.deadline, now + 1), EventKind.FINISH, task.task_id
                    )
                else:
                    self.events.push(finish_time, EventKind.FINISH, task.task_id)

    def _finalise_unfinished_tasks(self) -> None:
        """Terminate tasks stranded when the event queue drains.

        This only happens when a heuristic defers tasks even though no more
        events will ever fire (e.g. nothing can meet its deadline any more);
        those tasks are dropped at their deadlines.
        """
        end_time = self._now
        for task in self.tasks.values():
            if task.is_terminal:
                continue
            drop_time = max(task.deadline, self._now)
            end_time = max(end_time, drop_time)
            if task.status is TaskStatus.PENDING:
                reason = DropReason.DEADLINE_MISS_UNMAPPED
            elif task.status is TaskStatus.QUEUED:
                reason = DropReason.DEADLINE_MISS_QUEUED
            else:
                reason = DropReason.DEADLINE_MISS_EXECUTING
            if task.machine is not None and not task.is_terminal:
                machine = self.machines[task.machine]
                if machine.executing is task:
                    machine.finish_executing(task, drop_time)
                    self.state.notify_finish(machine.index, task)
                elif task in machine.pending:
                    machine.remove_pending(task)
                    self.state.notify_remove(machine.index, task)
            task.mark_dropped(drop_time, reason)
            self._counters.deadline_miss_drops += 1
            if self.observer is not None:
                self.observer.on_terminal(task)
        self._now = end_time


def simulate(
    pet: PETMatrix,
    heuristic: MappingHeuristicProtocol,
    trace: WorkloadTrace,
    *,
    config: SimulatorConfig | None = None,
    machine_prices: Sequence[float] | None = None,
    rng: np.random.Generator | int | None = None,
) -> SimulationResult:
    """One-call convenience wrapper: build an :class:`HCSimulator` and run it."""
    sim = HCSimulator(
        pet, heuristic, config=config, machine_prices=machine_prices, rng=rng
    )
    return sim.run(trace)
