"""The global event heap driving the simulator (Firmament-style).

Every occurrence the engine reacts to is one *typed event* in a single
priority queue, patterned after the ``EventManager`` of Firmament's trace
simulator: task arrivals, task finishes (completion or eviction), scheduling
**round** markers (batched-rounds mode bounds round latency with them), and
stream **watermarks** (the externally-driven serving mode marks "safe to
process everything before here" with one instead of comparing timestamps
inline).

Heap entries are plain ``(time, kind, seq, task_id)`` tuples, not event
objects — a 100k-task trace pushes and pops hundreds of thousands of events
and the per-event Python overhead of materialising an object per event is
measurable.  The tuple order is load-bearing:

* ``time`` — events pop in virtual-time order;
* ``kind`` — at one instant, watermarks pop first (they *guard* the
  instant: nothing at their timestamp may be processed yet), then arrivals,
  then finishes, then round markers;
* ``seq`` — a monotone tie-breaker making the pop order of same-time,
  same-kind events deterministic (push order) without ever comparing task
  payloads.

The relative ``ARRIVAL < FINISH`` order and the per-kind FIFO tie-break are
exactly the pre-rework engine's pop order, which is what keeps the heap loop
bit-identical to the legacy loop at ``batch_window=0``.
"""

from __future__ import annotations

import heapq
import itertools
from enum import IntEnum

__all__ = ["EventKind", "EventManager"]


class EventKind(IntEnum):
    """Event types sharing the global heap (the tuple's second sort key)."""

    #: Streaming-mode frontier marker: everything strictly before this
    #: instant may be processed, nothing at or after it.  Sorts ahead of
    #: every real event at its own timestamp so the drain loop stops
    #: *before* opening the instant.
    WATERMARK = -1
    #: A task joins the batch queue of unmapped tasks.
    ARRIVAL = 0
    #: The executing task on some machine reaches its finish instant
    #: (completion, or eviction when the deadline cut it short).
    FINISH = 1
    #: Batched-rounds marker: forces an engine step (and therefore a
    #: scheduling round) at its timestamp even if no task event lands there.
    ROUND = 2


class EventManager:
    """Single global event heap with typed entries and a monotone sequence.

    A thin, slotted wrapper over :mod:`heapq`; the engine's inner loop calls
    these methods hundreds of thousands of times per large trace, so every
    method stays a couple of bytecodes away from the raw heap operation.
    """

    __slots__ = ("_heap", "_seq", "events_processed")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, int]] = []
        self._seq = itertools.count()
        #: Total events popped since construction (diagnostics only).
        self.events_processed = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: int, kind: EventKind, task_id: int = -1) -> None:
        """Schedule one event; ``task_id`` is ``-1`` for task-less kinds."""
        heapq.heappush(self._heap, (int(time), int(kind), next(self._seq), task_id))

    def next_time(self) -> int | None:
        """Timestamp of the earliest pending event (``None`` when empty)."""
        return self._heap[0][0] if self._heap else None

    def peek(self) -> tuple[int, int, int, int] | None:
        """The earliest pending event entry without popping it."""
        return self._heap[0] if self._heap else None

    def pop(self) -> tuple[int, int, int, int]:
        """Pop the earliest event entry."""
        self.events_processed += 1
        return heapq.heappop(self._heap)

    def pending_at(self, time: int) -> bool:
        """Whether the head of the heap sits exactly at ``time``."""
        return bool(self._heap) and self._heap[0][0] == time

    def count_kind(self, kind: EventKind) -> int:
        """Pending events of one kind (diagnostics; O(n))."""
        return sum(1 for entry in self._heap if entry[1] == int(kind))
