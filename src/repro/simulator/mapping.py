"""Interface between the simulation engine and mapping heuristics.

At every *mapping event* the engine builds a :class:`MappingContext` — an
immutable view of the system state (batch queue, machine queues, PET matrix,
deadline misses observed since the last event) — and hands it to the active
heuristic.  The heuristic returns a :class:`MappingDecision` listing the
tasks it wants to assign, defer, or proactively drop; the engine validates
and applies the decision.  Keeping the heuristics side-effect free makes them
unit-testable without running a full simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.batch import PMFBatch
from ..core.completion import DroppingPolicy, chain_step
from ..core.pmf import DiscretePMF
from ..pet.matrix import PETMatrix
from .machine import Machine, batched_availability
from .state import SystemState
from .task import Task

__all__ = ["MappingContext", "MappingDecision", "Assignment", "QueueDrop", "TerminalEvent"]


@dataclass(frozen=True)
class Assignment:
    """One task-to-machine assignment chosen by a heuristic."""

    task_id: int
    machine_index: int


@dataclass(frozen=True)
class QueueDrop:
    """A proactive drop of a task already sitting in a machine queue."""

    task_id: int
    machine_index: int


@dataclass(frozen=True)
class TerminalEvent:
    """A task that reached a terminal state since the previous mapping event.

    The fairness tracker of PAMF consumes these to update per-type sufferage
    values ("updating the sufferage value occurs upon completion of a task").
    """

    task_id: int
    task_type: int
    #: True when the task completed at or before its deadline.
    on_time: bool


@dataclass
class MappingContext:
    """Read-only snapshot of the system at a mapping event."""

    #: Current simulation time.
    now: int
    #: Unmapped tasks in the batch queue (arrival order).
    batch: tuple[Task, ...]
    #: All machines with their current local queues.
    machines: tuple[Machine, ...]
    #: The PET matrix available to the resource-allocation system.
    pet: PETMatrix
    #: Dropping regime the running system actually implements; heuristics use
    #: the matching completion-time math (Section IV).
    policy: DroppingPolicy = DroppingPolicy.EVICT
    #: Number of tasks whose deadlines passed since the previous mapping
    #: event (the oversubscription signal mu_tau of Eq. 8).
    misses_since_last_event: int = 0
    #: Tasks that reached a terminal state since the previous mapping event.
    terminal_events: tuple[TerminalEvent, ...] = ()
    #: Impulse-aggregation cap for completion-time chains (None = exact).
    max_impulses: int | None = 32
    #: Condition the executing task's PCT on it not having finished yet.
    #: Off by default: the paper anchors the PCT at the observed start time.
    condition_executing_on_now: bool = False
    #: Live availability state owned by the engine.  When present, the
    #: availability accessors below are *views* over its incrementally
    #: maintained chains; when absent (contexts built by hand in tests or
    #: analysis code) they fall back to per-machine snapshot recomputation.
    #: Both paths are bit-identical.
    state: SystemState | None = None
    _availability_cache: dict[int, DiscretePMF] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def machine_availability(self, machine_index: int) -> DiscretePMF:
        """Availability PMF of a machine's *current* queue (live view)."""
        if self.state is not None:
            return self.state.availability(machine_index, self.now)
        if machine_index not in self._availability_cache:
            machine = self.machines[machine_index]
            self._availability_cache[machine_index] = machine.availability_pmf(
                self.pet,
                self.now,
                policy=self.policy,
                max_impulses=self.max_impulses,
                condition_on_now=self.condition_executing_on_now,
            )
        return self._availability_cache[machine_index]

    def availability_batch(self) -> PMFBatch:
        """All machines' availability PMFs on one aligned batch grid.

        Served straight from the live :class:`SystemState` batch when the
        engine provides one (no recomputation, no restacking unless a queue
        changed); otherwise stacked on the fly from per-machine snapshots.

        Returns
        -------
        PMFBatch
            ``(n_machines, support)`` batch (row ``j`` is machine ``j``),
            with the same per-machine PMF values
            :meth:`machine_availability` serves — the input shape the
            batched scoring kernels of :mod:`repro.core.batch` consume.
        """
        if self.state is not None:
            return self.state.availability_batch(self.now)
        return batched_availability(
            self.machines,
            self.pet,
            self.now,
            policy=self.policy,
            max_impulses=self.max_impulses,
            condition_on_now=self.condition_executing_on_now,
        )

    def availability_excluding(
        self, machine_index: int, dropped_task_ids: Iterable[int]
    ) -> DiscretePMF:
        """Availability of a machine's queue with some tasks dropped.

        The pruning path uses this to see post-drop availability.  With a
        live state the chain prefix ahead of the first dropped task is
        reused and only the suffix is re-convolved; the fallback rebuilds
        the reduced chain from scratch.  Bit-identical either way.
        """
        dropped = set(dropped_task_ids)
        if self.state is not None:
            return self.state.availability_excluding(machine_index, dropped, self.now)
        machine = self.machines[machine_index]
        kept = [t for t in machine.queued_tasks() if t.task_id not in dropped]
        prev = DiscretePMF.point(self.now)
        if machine.executing is not None and kept and kept[0] is machine.executing:
            prev = machine.executing_anchor_pmf(
                self.pet,
                self.now,
                policy=self.policy,
                condition_on_now=self.condition_executing_on_now,
            )
            kept = kept[1:]
        for task in kept:
            pet_entry = self.pet.get(task.task_type, machine.index)
            prev = chain_step(pet_entry, prev, task.deadline, self.policy, self.max_impulses)
        return prev

    def executing_pmf(self, machine_index: int) -> DiscretePMF:
        """Completion-time PMF of the machine's executing task (if any)."""
        machine = self.machines[machine_index]
        return machine.executing_completion_pmf(
            self.pet, self.now, condition_on_now=self.condition_executing_on_now
        )

    def execution_pmf(self, task: Task, machine_index: int) -> DiscretePMF:
        """PET entry of a task on a machine."""
        return self.pet.get(task.task_type, machine_index)

    def free_slots(self) -> int:
        """Total free machine-queue slots across the system."""
        return sum(m.free_slots for m in self.machines)

    def batch_task(self, task_id: int) -> Task:
        for task in self.batch:
            if task.task_id == task_id:
                return task
        raise KeyError(f"task {task_id} is not in the batch queue")


@dataclass
class MappingDecision:
    """What a heuristic wants the engine to do at one mapping event."""

    #: Ordered task-to-machine assignments from the batch queue.
    assignments: list[Assignment] = field(default_factory=list)
    #: Proactive drops of tasks already in machine queues (pruning).
    queue_drops: list[QueueDrop] = field(default_factory=list)
    #: Batch tasks explicitly deferred by the pruner (kept unmapped).  Purely
    #: informational — the engine leaves unassigned batch tasks in place
    #: either way — but recorded for the deferral statistics.
    deferrals: list[int] = field(default_factory=list)

    def assign(self, task: Task | int, machine: Machine | int) -> None:
        task_id = task if isinstance(task, int) else task.task_id
        machine_index = machine if isinstance(machine, int) else machine.index
        self.assignments.append(Assignment(task_id, machine_index))

    def drop_from_queue(self, task: Task | int, machine: Machine | int) -> None:
        task_id = task if isinstance(task, int) else task.task_id
        machine_index = machine if isinstance(machine, int) else machine.index
        self.queue_drops.append(QueueDrop(task_id, machine_index))

    def defer(self, task: Task | int) -> None:
        self.deferrals.append(task if isinstance(task, int) else task.task_id)

    def validate(self, context: MappingContext) -> None:
        """Sanity-check the decision against the context it was made for."""
        batch_ids = {t.task_id for t in context.batch}
        seen: set[int] = set()
        for assignment in self.assignments:
            if assignment.task_id not in batch_ids:
                raise ValueError(
                    f"assignment references task {assignment.task_id} not in the batch queue"
                )
            if assignment.task_id in seen:
                raise ValueError(f"task {assignment.task_id} assigned more than once")
            if not 0 <= assignment.machine_index < len(context.machines):
                raise ValueError(
                    f"assignment references unknown machine {assignment.machine_index}"
                )
            seen.add(assignment.task_id)
        for drop in self.queue_drops:
            if not 0 <= drop.machine_index < len(context.machines):
                raise ValueError(f"queue drop references unknown machine {drop.machine_index}")
            machine = context.machines[drop.machine_index]
            if drop.task_id not in {t.task_id for t in machine.queued_tasks()}:
                raise ValueError(
                    f"queue drop references task {drop.task_id} not queued on machine "
                    f"{drop.machine_index}"
                )


def batch_in_arrival_order(tasks: Sequence[Task]) -> tuple[Task, ...]:
    """Helper used by the engine: batch queue sorted by arrival then id."""
    return tuple(sorted(tasks, key=lambda t: (t.arrival, t.task_id)))
