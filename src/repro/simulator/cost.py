"""Cost model for heterogeneous (cloud) machines (paper Section VII-F).

The paper maps Amazon EC2 VM prices onto the eight simulated machines and
reports the incurred dollar cost divided by the percentage of on-time task
completions.  Real EC2 price sheets are not redistributable/fetchable
offline, so this module ships a static price table whose *relative* structure
matches the paper's setup: faster/accelerated machines cost more per time
unit than slower general-purpose ones.  Only relative cost across heuristics
matters for the Figure 8 comparison.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "SPEC_MACHINE_PRICES",
    "TRANSCODING_MACHINE_PRICES",
    "price_for_machine",
    "default_prices_for",
    "total_cost",
    "cost_per_percent_robustness",
]

#: Price per 1000 time units for each SPEC-style machine (arbitrary $ scale,
#: roughly proportional to machine capability).
SPEC_MACHINE_PRICES: Mapping[str, float] = {
    "dell-precision-380": 0.35,
    "apple-imac-core-duo": 0.22,
    "apple-xserve": 0.25,
    "ibm-system-x3455": 0.38,
    "shuttle-sn25p": 0.28,
    "ibm-system-p570": 0.95,
    "sunfire-3800": 0.18,
    "ibm-bladecenter-hs21xm": 0.42,
}

#: Price per 1000 time units for the transcoding VM types (GPU instances are
#: the most expensive, matching EC2's relative pricing).
TRANSCODING_MACHINE_PRICES: Mapping[str, float] = {
    "cpu-optimized": 0.34,
    "memory-optimized": 0.50,
    "general-purpose": 0.23,
    "gpu": 1.53,
}

_ALL_PRICES: dict[str, float] = {**SPEC_MACHINE_PRICES, **TRANSCODING_MACHINE_PRICES}

#: Fallback price for machines outside the two built-in price sheets.
DEFAULT_PRICE = 0.40


def price_for_machine(name: str) -> float:
    """Price per 1000 time units of a named machine (falls back to a default)."""
    return _ALL_PRICES.get(name, DEFAULT_PRICE)


def default_prices_for(machine_names: Sequence[str]) -> list[float]:
    """Price list aligned with ``machine_names``."""
    return [price_for_machine(name) for name in machine_names]


def total_cost(busy_times: Sequence[float], prices: Sequence[float]) -> float:
    """Total incurred cost: sum over machines of busy time x price per unit.

    ``prices`` are per 1000 time units, matching the tables above.
    """
    if len(busy_times) != len(prices):
        raise ValueError("busy_times and prices must have the same length")
    return float(sum(b * p / 1000.0 for b, p in zip(busy_times, prices)))


def cost_per_percent_robustness(cost: float, robustness_percent: float) -> float:
    """The Figure 8 metric: incurred cost / percentage of on-time completions.

    Returns ``inf`` when nothing completed on time (the paper notes MSD/MMU
    become "unchartable" at extreme oversubscription for this reason).
    """
    if robustness_percent <= 0:
        return float("inf")
    return cost / robustness_percent
