"""Runtime task state inside the HC simulator.

A :class:`Task` wraps an immutable :class:`~repro.workload.spec.TaskSpec`
with the mutable state the simulator needs: where the task currently lives
(batch queue, machine queue, executing), when it started/finished, and why it
left the system.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..workload.spec import TaskSpec

__all__ = ["Task", "TaskStatus", "DropReason"]


class TaskStatus(enum.Enum):
    """Lifecycle of a task in the simulator."""

    #: In the batch (unmapped) queue, waiting for a mapping event.
    PENDING = "pending"
    #: Mapped to a machine queue, not yet executing.
    QUEUED = "queued"
    #: Currently executing on its mapped machine.
    EXECUTING = "executing"
    #: Finished executing (check :attr:`Task.on_time` for success).
    COMPLETED = "completed"
    #: Removed from the system without finishing.
    DROPPED = "dropped"


class DropReason(enum.Enum):
    """Why a dropped task was removed from the system."""

    #: Deadline passed while the task was still in the batch queue.
    DEADLINE_MISS_UNMAPPED = "deadline-miss-unmapped"
    #: Deadline passed while the task was waiting in a machine queue.
    DEADLINE_MISS_QUEUED = "deadline-miss-queued"
    #: Deadline passed while the task was executing (eviction).
    DEADLINE_MISS_EXECUTING = "deadline-miss-executing"
    #: Proactively dropped by the pruning mechanism (probability too low).
    PRUNED = "pruned"


@dataclass
class Task:
    """Mutable simulator view of one task."""

    spec: TaskSpec
    status: TaskStatus = TaskStatus.PENDING
    #: Index of the machine the task is (or was) mapped to, if any.
    machine: int | None = None
    #: Simulation time at which the task was mapped to a machine queue.
    mapped_at: int | None = None
    #: Simulation time at which execution started.
    exec_start: int | None = None
    #: Simulation time at which the task left the machine (completion or eviction).
    exec_end: int | None = None
    #: Sampled actual execution time (set when execution starts).
    actual_execution_time: int | None = None
    #: Why the task was dropped, when status is DROPPED.
    drop_reason: DropReason | None = None
    #: Simulation time at which the task was dropped.
    dropped_at: int | None = None
    #: Number of mapping events at which the task was deferred by the pruner.
    times_deferred: int = field(default=0)

    # ------------------------------------------------------------------
    @property
    def task_id(self) -> int:
        return self.spec.task_id

    @property
    def task_type(self) -> int:
        return self.spec.task_type

    @property
    def arrival(self) -> int:
        return self.spec.arrival

    @property
    def deadline(self) -> int:
        return self.spec.deadline

    @property
    def is_terminal(self) -> bool:
        """True once the task can no longer change state."""
        return self.status in (TaskStatus.COMPLETED, TaskStatus.DROPPED)

    @property
    def on_time(self) -> bool:
        """True when the task completed at or before its deadline."""
        return (
            self.status is TaskStatus.COMPLETED
            and self.exec_end is not None
            and self.exec_end <= self.deadline
        )

    @property
    def busy_time(self) -> int:
        """Machine time consumed by this task (0 if it never started)."""
        if self.exec_start is None:
            return 0
        end = self.exec_end if self.exec_end is not None else self.exec_start
        return max(0, end - self.exec_start)

    # ------------------------------------------------------------------
    def mark_mapped(self, machine: int, now: int) -> None:
        if self.is_terminal:
            raise RuntimeError(f"task {self.task_id} is already terminal")
        self.status = TaskStatus.QUEUED
        self.machine = machine
        self.mapped_at = now

    def mark_executing(self, now: int, actual_execution_time: int) -> None:
        if self.status is not TaskStatus.QUEUED:
            raise RuntimeError(
                f"task {self.task_id} cannot start executing from {self.status}"
            )
        if actual_execution_time < 1:
            raise ValueError("execution time must be at least one time unit")
        self.status = TaskStatus.EXECUTING
        self.exec_start = now
        self.actual_execution_time = actual_execution_time

    def mark_completed(self, now: int) -> None:
        if self.status is not TaskStatus.EXECUTING:
            raise RuntimeError(f"task {self.task_id} cannot complete from {self.status}")
        self.status = TaskStatus.COMPLETED
        self.exec_end = now

    def mark_dropped(self, now: int, reason: DropReason) -> None:
        if self.is_terminal:
            raise RuntimeError(f"task {self.task_id} is already terminal")
        if self.status is TaskStatus.EXECUTING:
            self.exec_end = now
        self.status = TaskStatus.DROPPED
        self.drop_reason = reason
        self.dropped_at = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task(id={self.task_id}, type={self.task_type}, arr={self.arrival}, "
            f"dl={self.deadline}, status={self.status.value})"
        )
