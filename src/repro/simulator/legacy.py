"""Frozen pre-rework engine loop: the differential harness's reference.

This module is a verbatim snapshot of :class:`LegacyHCSimulator` as it stood
before the event-heap rework (one mapping event per event timestamp, no
typed events, no batched scheduling rounds).  It exists for exactly one
purpose: the differential property suite in
``tests/simulator/test_engine_equivalence.py`` replays traces through the
reworked heap engine *and* through this loop and requires bit-identical
decision sequences and metrics (atol=0) whenever ``batch_window=0``.

Do not grow features here.  Behaviour changes belong in
:mod:`repro.simulator.engine`; this reference only ever changes when a
deliberate, gated semantics change is re-pinned.
"""


from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from ..pet.matrix import PETMatrix
from ..utils.rng import make_generator
from ..workload.generator import WorkloadTrace
from ..workload.spec import TaskSpec
from .cost import default_prices_for
from .engine import EngineObserver, MappingHeuristicProtocol, SimulatorConfig
from .machine import Machine
from .mapping import (
    MappingContext,
    MappingDecision,
    TerminalEvent,
    batch_in_arrival_order,
)
from .metrics import SimulationCounters, SimulationResult
from .state import SystemState
from .task import DropReason, Task, TaskStatus

__all__ = ["LegacyHCSimulator", "legacy_simulate"]

_ARRIVAL = 0
_FINISH = 1


class LegacyHCSimulator:
    """Discrete-event simulator binding a PET matrix, machines, and a heuristic."""

    def __init__(
        self,
        pet: PETMatrix,
        heuristic: MappingHeuristicProtocol,
        *,
        config: SimulatorConfig | None = None,
        machine_prices: Sequence[float] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.pet = pet
        self.heuristic = heuristic
        self.config = config or SimulatorConfig()
        if self.config.batch_window:
            raise ValueError(
                "the legacy reference loop has no batched rounds; use batch_window=0"
            )
        prices = (
            list(machine_prices)
            if machine_prices is not None
            else default_prices_for(pet.machine_names)
        )
        if len(prices) != pet.num_machines:
            raise ValueError("one price per machine is required")
        self.machine_prices = [float(p) for p in prices]
        self.rng = make_generator(rng)

        self.machines: list[Machine] = []
        #: Live incremental availability state; (re)built by ``_reset_state``
        #: and notified next to every queue mutation below.
        self.state: SystemState | None = None
        #: Optional decision-stream observer (see :class:`EngineObserver`).
        self.observer: EngineObserver | None = None
        self.tasks: dict[int, Task] = {}
        self._batch: dict[int, Task] = {}
        self._events: list[tuple[int, int, int, int]] = []
        self._seq = itertools.count()
        self._counters = SimulationCounters()
        self._misses_since_event = 0
        self._terminal_since_event: list[TerminalEvent] = []
        self._now = 0
        #: Latest event timestamp fully processed in streaming mode; arrivals
        #: at or before this instant can no longer join their mapping event.
        self._processed_through = -1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, trace: WorkloadTrace) -> SimulationResult:
        """Simulate one workload trace to completion and return the metrics."""
        self.begin_stream()
        for spec in trace:
            self.inject_task(spec)
        return self.finish_stream()

    # ------------------------------------------------------------------
    # Externally-driven streaming mode (the online serving layer).
    # ------------------------------------------------------------------
    def begin_stream(self) -> None:
        """Reset the engine for an externally-driven arrival stream."""
        self._reset_state()
        self.heuristic.reset()

    def inject_task(self, spec: TaskSpec) -> Task:
        """Add one arriving task to the live system.

        The arrival must not predate an already-processed event timestamp:
        the mapping event at that instant has fired and cannot be re-run
        without breaking replay equivalence.
        """
        if self.state is None:
            raise RuntimeError("begin_stream() must be called before inject_task()")
        if spec.task_id in self.tasks:
            raise ValueError(f"task {spec.task_id} was already injected")
        if spec.arrival <= self._processed_through:
            raise ValueError(
                f"task {spec.task_id} arrives at {spec.arrival}, but the engine "
                f"has already processed events through {self._processed_through}"
            )
        task = Task(spec)
        self.tasks[spec.task_id] = task
        self._push_event(spec.arrival, _ARRIVAL, spec.task_id)
        return task

    def advance_until(self, time: int) -> None:
        """Process every pending event timestamp strictly before ``time``.

        Events at ``time`` itself stay pending so late-but-simultaneous
        arrivals can still join their mapping event — the caller advances
        past an instant only once it knows no more arrivals carry it.
        """
        while self._events and self._events[0][0] < time:
            self._step_once()

    def finish_stream(self) -> SimulationResult:
        """Drain all pending events, finalise, and return the metrics."""
        while self._events:
            self._step_once()
        self._finalise_unfinished_tasks()
        ordered = tuple(
            sorted(self.tasks.values(), key=lambda t: (t.arrival, t.task_id))
        )
        return SimulationResult(
            tasks=ordered,
            machine_names=tuple(self.pet.machine_names),
            machine_busy_times=tuple(float(m.busy_time) for m in self.machines),
            machine_prices=tuple(self.machine_prices),
            num_task_types=self.pet.num_task_types,
            counters=self._counters,
            end_time=self._now,
        )

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the heap (streaming mode)."""
        return len(self._events)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _step_once(self) -> None:
        """Process one event timestamp: events, drops, mapping, starts."""
        now = self._events[0][0]
        self._now = now
        self._process_events_at(now)
        self._drop_missed_tasks(now)
        self._run_mapping_event(now)
        self._start_executions(now)
        self._processed_through = now
    def _reset_state(self) -> None:
        self.machines = [
            Machine(
                index=i,
                name=name,
                queue_capacity=self.config.queue_capacity,
                price_per_time=self.machine_prices[i],
            )
            for i, name in enumerate(self.pet.machine_names)
        ]
        self.state = SystemState(
            self.machines,
            self.pet,
            policy=self.config.dropping_policy,
            max_impulses=self.config.max_impulses,
            condition_executing_on_now=self.config.condition_executing_on_now,
            cross_check=self.config.state_cross_check,
        )
        self.tasks = {}
        self._batch = {}
        self._events = []
        self._seq = itertools.count()
        self._counters = SimulationCounters()
        self._misses_since_event = 0
        self._terminal_since_event = []
        self._now = 0
        self._processed_through = -1

    def _push_event(self, time: int, kind: int, task_id: int) -> None:
        heapq.heappush(self._events, (int(time), kind, next(self._seq), task_id))

    def _process_events_at(self, now: int) -> None:
        while self._events and self._events[0][0] == now:
            _, kind, _, task_id = heapq.heappop(self._events)
            task = self.tasks[task_id]
            if kind == _ARRIVAL:
                self._batch[task_id] = task
            elif kind == _FINISH:
                self._handle_finish(task, now)

    def _handle_finish(self, task: Task, now: int) -> None:
        # The task may have been proactively dropped after this event was
        # scheduled; such stale events are ignored.
        if task.status is not TaskStatus.EXECUTING or task.machine is None:
            return
        machine = self.machines[task.machine]
        if machine.executing is not task:
            return
        machine.finish_executing(task, now)
        self.state.notify_finish(machine.index, task)
        finish_time = (task.exec_start or now) + (task.actual_execution_time or 0)
        if finish_time <= now:
            task.mark_completed(now)
            self._counters.completions += 1
            if not task.on_time:
                self._misses_since_event += 1
            self._record_terminal(task)
        else:
            # Eviction: deadline reached before the sampled execution time elapsed.
            task.mark_dropped(now, DropReason.DEADLINE_MISS_EXECUTING)
            self._counters.evictions += 1
            self._misses_since_event += 1
            self._record_terminal(task)

    def _record_terminal(self, task: Task) -> None:
        self._terminal_since_event.append(
            TerminalEvent(task.task_id, task.task_type, task.on_time)
        )
        if self.observer is not None:
            self.observer.on_terminal(task)

    def _drop_missed_tasks(self, now: int) -> None:
        """Remove tasks whose deadlines passed while waiting (Section III)."""
        for task_id in [tid for tid, t in self._batch.items() if t.deadline <= now]:
            task = self._batch.pop(task_id)
            task.mark_dropped(now, DropReason.DEADLINE_MISS_UNMAPPED)
            self._counters.deadline_miss_drops += 1
            self._misses_since_event += 1
            self._record_terminal(task)
        for machine in self.machines:
            for task in [t for t in machine.pending if t.deadline <= now]:
                machine.remove_pending(task)
                self.state.notify_remove(machine.index, task)
                task.mark_dropped(now, DropReason.DEADLINE_MISS_QUEUED)
                self._counters.deadline_miss_drops += 1
                self._misses_since_event += 1
                self._record_terminal(task)

    def _run_mapping_event(self, now: int) -> None:
        context = MappingContext(
            now=now,
            batch=batch_in_arrival_order(self._batch.values()),
            machines=tuple(self.machines),
            pet=self.pet,
            policy=self.config.dropping_policy,
            misses_since_last_event=self._misses_since_event,
            terminal_events=tuple(self._terminal_since_event),
            max_impulses=self.config.max_impulses,
            condition_executing_on_now=self.config.condition_executing_on_now,
            state=self.state,
        )
        self._misses_since_event = 0
        self._terminal_since_event = []
        decision = self.heuristic.map_tasks(context)
        decision.validate(context)
        self._apply_decision(decision, now)
        self._counters.mapping_events += 1
        if self.observer is not None:
            self.observer.on_mapping_event(now, decision)

    def _apply_decision(self, decision: MappingDecision, now: int) -> None:
        for drop in decision.queue_drops:
            machine = self.machines[drop.machine_index]
            task = self.tasks[drop.task_id]
            if task.is_terminal:
                continue
            if machine.executing is task:
                machine.finish_executing(task, now)
                self.state.notify_finish(machine.index, task)
            else:
                machine.remove_pending(task)
                self.state.notify_remove(machine.index, task)
            task.mark_dropped(now, DropReason.PRUNED)
            self._counters.proactive_drops += 1
            self._record_terminal(task)

        for assignment in decision.assignments:
            machine = self.machines[assignment.machine_index]
            task = self.tasks[assignment.task_id]
            if task.is_terminal or task.task_id not in self._batch:
                continue
            if not machine.has_free_slot:
                continue
            del self._batch[task.task_id]
            machine.enqueue(task, now)
            self.state.notify_enqueue(machine.index, task)
            self._counters.assignments += 1
            if self.observer is not None:
                self.observer.on_assigned(task, machine.index, now)

        self._counters.deferrals += len(decision.deferrals)

    def _start_executions(self, now: int) -> None:
        for machine in self.machines:
            if machine.is_idle and machine.pending:
                head = machine.pending[0]
                pet_entry = self.pet.get(head.task_type, machine.index)
                actual = int(pet_entry.sample(self.rng))
                task = machine.start_next(now, actual)
                self.state.notify_start(machine.index)
                finish_time = now + actual
                if (
                    self.config.evict_executing_at_deadline
                    and finish_time > task.deadline
                ):
                    self._push_event(max(task.deadline, now + 1), _FINISH, task.task_id)
                else:
                    self._push_event(finish_time, _FINISH, task.task_id)

    def _finalise_unfinished_tasks(self) -> None:
        """Terminate tasks stranded when the event queue drains.

        This only happens when a heuristic defers tasks even though no more
        events will ever fire (e.g. nothing can meet its deadline any more);
        those tasks are dropped at their deadlines.
        """
        end_time = self._now
        for task in self.tasks.values():
            if task.is_terminal:
                continue
            drop_time = max(task.deadline, self._now)
            end_time = max(end_time, drop_time)
            if task.status is TaskStatus.PENDING:
                reason = DropReason.DEADLINE_MISS_UNMAPPED
            elif task.status is TaskStatus.QUEUED:
                reason = DropReason.DEADLINE_MISS_QUEUED
            else:
                reason = DropReason.DEADLINE_MISS_EXECUTING
            if task.machine is not None and not task.is_terminal:
                machine = self.machines[task.machine]
                if machine.executing is task:
                    machine.finish_executing(task, drop_time)
                    self.state.notify_finish(machine.index, task)
                elif task in machine.pending:
                    machine.remove_pending(task)
                    self.state.notify_remove(machine.index, task)
            task.mark_dropped(drop_time, reason)
            self._counters.deadline_miss_drops += 1
            if self.observer is not None:
                self.observer.on_terminal(task)
        self._now = end_time


def legacy_simulate(
    pet: PETMatrix,
    heuristic: MappingHeuristicProtocol,
    trace: WorkloadTrace,
    *,
    config: SimulatorConfig | None = None,
    machine_prices: Sequence[float] | None = None,
    rng: np.random.Generator | int | None = None,
) -> SimulationResult:
    """One-call convenience wrapper: build an :class:`LegacyHCSimulator` and run it."""
    sim = LegacyHCSimulator(
        pet, heuristic, config=config, machine_prices=machine_prices, rng=rng
    )
    return sim.run(trace)
