"""repro — reproduction of "Robust Dynamic Resource Allocation via
Probabilistic Task Pruning in Heterogeneous Computing Systems"
(Gentry, Denninnart, Amini Salehi, 2019).

The package is organised bottom-up:

* :mod:`repro.core` — discrete PMF algebra, completion-time model under task
  dropping (Eqs. 2-5) and robustness (Eq. 1);
* :mod:`repro.pet` — the Probabilistic Execution Time matrix and its builders;
* :mod:`repro.workload` — arrival/deadline generation (Section VI-B);
* :mod:`repro.simulator` — the event-driven oversubscribed HC system;
* :mod:`repro.pruning` — dropping/deferring thresholds, oversubscription
  detection, fairness (Section V);
* :mod:`repro.heuristics` — PAM, PAMF and the four baseline mappers;
* :mod:`repro.experiments` — drivers regenerating every evaluation figure;
* :mod:`repro.sweep` — parallel experiment orchestration with a
  content-addressed result cache (declarative grids, process-pool fan-out).

Quickstart::

    import repro

    pet = repro.build_spec_pet(rng=1)
    trace = repro.generate_workload(
        repro.WorkloadConfig(num_tasks=400, time_span=4000), pet, rng=2
    )
    result = repro.simulate(pet, repro.make_heuristic("PAM"), trace, rng=3)
    print(result.robustness_percent())
"""

from .core import (
    DiscretePMF,
    DroppingPolicy,
    completion_pmf,
    queue_completion_pmfs,
    robustness_of_pct,
    success_probability,
)
from .heuristics import (
    HEURISTIC_NAMES,
    FairPruningMapper,
    MappingHeuristic,
    MaxOntimeCompletions,
    MinCompletionMaxUrgency,
    MinCompletionMinCompletion,
    MinCompletionSoonestDeadline,
    PruningAwareMapper,
    make_heuristic,
)
from .pet import (
    PETMatrix,
    build_pet_from_means,
    build_spec_pet,
    build_transcoding_pet,
)
from .pruning import (
    OversubscriptionDetector,
    Pruner,
    PruningThresholds,
    SufferageTracker,
)
from .simulator import (
    HCSimulator,
    SimulationResult,
    SimulatorConfig,
    SystemState,
    simulate,
)
from .sweep import (
    HeuristicSpec,
    ParallelExecutor,
    PETSpec,
    ResultCache,
    SweepOutcome,
    SweepPoint,
    SweepSpec,
    TraceSpec,
    run_sweep,
)
from .workload import (
    TaskSpec,
    WorkloadConfig,
    WorkloadTrace,
    generate_transcoding_trace,
    generate_workload,
    load_trace,
    save_trace,
)

__version__ = "0.3.0"

__all__ = [
    "__version__",
    # core
    "DiscretePMF",
    "DroppingPolicy",
    "completion_pmf",
    "queue_completion_pmfs",
    "robustness_of_pct",
    "success_probability",
    # pet
    "PETMatrix",
    "build_pet_from_means",
    "build_spec_pet",
    "build_transcoding_pet",
    # workload
    "TaskSpec",
    "WorkloadConfig",
    "WorkloadTrace",
    "generate_workload",
    # simulator
    "HCSimulator",
    "SimulatorConfig",
    "SystemState",
    "SimulationResult",
    "simulate",
    # pruning
    "Pruner",
    "PruningThresholds",
    "OversubscriptionDetector",
    "SufferageTracker",
    # heuristics
    "MappingHeuristic",
    "PruningAwareMapper",
    "FairPruningMapper",
    "MaxOntimeCompletions",
    "MinCompletionMinCompletion",
    "MinCompletionSoonestDeadline",
    "MinCompletionMaxUrgency",
    "HEURISTIC_NAMES",
    "make_heuristic",
    # sweep orchestration
    "PETSpec",
    "HeuristicSpec",
    "TraceSpec",
    "SweepPoint",
    "SweepSpec",
    "SweepOutcome",
    "ParallelExecutor",
    "ResultCache",
    "run_sweep",
    # trace persistence / replay
    "save_trace",
    "load_trace",
    "generate_transcoding_trace",
]
