"""Summary statistics used by the experiment harness.

The paper reports the mean and the 95 % confidence interval over 30 workload
trials; :func:`mean_and_ci` reproduces that using a Student-t interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sp_stats

__all__ = ["confidence_interval_95", "mean_and_ci", "Summary", "summarize"]


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of the 95 % Student-t confidence interval of the mean.

    Returns 0.0 when fewer than two samples are available (no spread can be
    estimated) — this keeps single-trial smoke runs well defined.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size < 2:
        return 0.0
    sem = sp_stats.sem(arr)
    if sem == 0.0:
        return 0.0
    t_crit = sp_stats.t.ppf(0.975, df=arr.size - 1)
    return float(t_crit * sem)


def mean_and_ci(values: Sequence[float]) -> tuple[float, float]:
    """Mean and 95 % CI half-width of a sequence of trial results."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return float("nan"), 0.0
    return float(arr.mean()), confidence_interval_95(arr)


@dataclass(frozen=True)
class Summary:
    """Mean, spread and extremes of one experiment series."""

    mean: float
    ci95: float
    std: float
    minimum: float
    maximum: float
    n: int

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "ci95": self.ci95,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "n": float(self.n),
        }


def summarize(values: Sequence[float]) -> Summary:
    """Full summary of a series of per-trial measurements."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        nan = float("nan")
        return Summary(nan, 0.0, nan, nan, nan, 0)
    return Summary(
        mean=float(arr.mean()),
        ci95=confidence_interval_95(arr),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        n=int(arr.size),
    )
