"""Shared utilities: seeded RNG management, summary statistics, formatting."""

from .rng import spawn_generators, make_generator
from .stats import confidence_interval_95, mean_and_ci, summarize
from .tables import format_table

__all__ = [
    "spawn_generators",
    "make_generator",
    "confidence_interval_95",
    "mean_and_ci",
    "summarize",
    "format_table",
]
