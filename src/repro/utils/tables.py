"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper's figures show;
this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """Render a list of rows as an aligned, pipe-separated text table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
