"""Deterministic random-number management.

Every stochastic component of the library takes a ``numpy.random.Generator``
argument so that trials are reproducible.  Experiment drivers derive
independent child generators with ``SeedSequence.spawn``, which guarantees
statistically independent streams for the 30-trial experiments of the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_generator", "spawn_generators"]


def make_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator from a seed, pass through an existing Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: int | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from one master seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
