"""Command-line interface for the reproduction.

Eight subcommands cover the common workflows:

``simulate``
    Run one workload trial with a chosen heuristic and print the headline
    metrics (robustness, cost, outcome breakdown).

``figure``
    Regenerate one of the paper's evaluation figures (4-9) and print the
    table of series; optionally write text/CSV/JSON artefacts.

``sweep``
    Regenerate one or more figures through the :mod:`repro.sweep`
    orchestration subsystem: trials fan out over ``--jobs`` worker
    processes (or, with ``--backend queue``, over detached ``repro
    worker`` processes sharing ``--queue-dir``), per-point progress
    streams to stderr, and completed points are cached under
    ``--cache-dir`` so interrupted or repeated sweeps resume instantly.

``trace``
    Work with recorded workload traces: ``record`` synthesises a trace to
    a JSON file, ``inspect`` summarises one, and ``replay`` runs one
    through the sweep/cache pipeline with chosen heuristics (every
    heuristic replays the identical arrivals — the paper's paired
    protocol).

``worker``
    Run one detached sweep worker: claim trials from the durable queue at
    ``--queue-dir``, execute, repeat.  Start any number, on any hosts
    sharing the queue directory; results are bit-identical regardless of
    which worker runs which trial.

``queue``
    Observe and maintain a work queue: ``status`` (counts per state plus
    worker heartbeats), ``requeue`` (recover expired leases, optionally
    revive dead-lettered trials), ``drain`` (delete rows).

``cache``
    Observe and maintain a result cache: ``stats`` (entries, bytes, kernel
    versions) and ``gc`` (drop artefacts from stale kernel versions).

``serve``
    The online scheduler service: ``run`` hosts the admission loop on a
    Unix socket or TCP port until interrupted (``--workers N`` shards
    submissions across N engine-worker processes behind one socket, and
    ``--inbox-limit`` bounds the admission queue so overload is answered
    with explicit ``accepted=false`` rejections), ``submit`` replays a
    recorded trace (or a single task) into a running service and prints
    the streamed decisions, and ``bench`` drives a fresh service at
    several arrival-rate multipliers, checks the decision stream against
    an offline replay (per shard when sharded), and writes the
    ``BENCH_serve.json`` artefact.

Examples::

    python -m repro.cli simulate --heuristic PAM --tasks 500 --span 2500
    python -m repro.cli figure 7 --trials 2
    python -m repro.cli figure 9 --trials 3 --output-dir results/
    python -m repro.cli sweep 4 7 --jobs 4 --cache-dir results/cache
    python -m repro.cli sweep 9 --trace examples/transcoding_660.trace.json
    python -m repro.cli sweep 4 --backend queue --queue-dir results/queue --jobs 2
    python -m repro.cli worker --queue-dir results/queue
    python -m repro.cli queue status --queue-dir results/queue
    python -m repro.cli cache stats --cache-dir results/cache
    python -m repro.cli trace record --builder transcoding-660 --out my.trace.json
    python -m repro.cli trace inspect examples/transcoding_660.trace.json
    python -m repro.cli trace replay examples/transcoding_660.trace.json \
        --heuristics PAMF MM --jobs 4 --cache-dir results/cache
    python -m repro.cli serve run --socket /tmp/repro-serve.sock
    python -m repro.cli serve run --listen tcp:127.0.0.1:7077 --workers 4
    python -m repro.cli serve submit --socket /tmp/repro-serve.sock \
        --trace examples/transcoding_660.trace.json --tasks 50 --rate 10
    python -m repro.cli serve submit --connect tcp:127.0.0.1:7077 --task 1 0 5 400
    python -m repro.cli serve bench --trace examples/transcoding_660.trace.json \
        --rates 10 100 1000 --out BENCH_serve.json
    python -m repro.cli serve bench --transport tcp --workers 2 \
        --out BENCH_serve_shard2.json
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Callable, Sequence

from . import (
    WorkloadConfig,
    build_spec_pet,
    build_transcoding_pet,
    generate_workload,
    make_heuristic,
    simulate,
)
from .experiments import (
    ExperimentConfig,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
)
from .experiments.reporting import save_figure_result
from .core.kernels import KERNEL_BACKEND_NAMES
from .heuristics.registry import HEURISTIC_NAMES
from .simulator.engine import SimulatorConfig
from .sweep import BACKEND_NAMES, StreamReporter
from .workload import (
    TRACE_BUILDERS,
    build_named_trace,
    load_trace,
    save_trace,
    trace_content_hash,
)

__all__ = ["main", "build_parser"]

#: Figure number -> (driver, CSV headers)
_FIGURES: dict[int, tuple[Callable[..., object], list[str]]] = {
    4: (run_fig4, ["lambda", "default robustness %", "default ci95", "schmitt robustness %", "schmitt ci95"]),
    5: (run_fig5, ["drop threshold %", "defer threshold %", "robustness %", "ci95"]),
    6: (run_fig6, ["level", "fairness factor %", "variance of type completion %", "robustness %", "ci95"]),
    7: (run_fig7, ["level", "heuristic", "robustness %", "ci95"]),
    8: (run_fig8, ["level", "heuristic", "total cost", "robustness %", "cost / percent on-time"]),
    9: (run_fig9, ["level", "heuristic", "robustness %", "ci95"]),
}


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return jobs


def _non_negative_int(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return count


def _positive_float(value: str) -> float:
    seconds = float(value)
    if seconds <= 0:
        raise argparse.ArgumentTypeError("must be positive")
    return seconds


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Robust Dynamic Resource Allocation via "
        "Probabilistic Task Pruning in Heterogeneous Computing Systems'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sim = subparsers.add_parser("simulate", help="run one workload trial")
    sim.add_argument("--heuristic", default="PAM", choices=sorted(HEURISTIC_NAMES))
    sim.add_argument("--tasks", type=int, default=500, help="number of arriving tasks")
    sim.add_argument("--span", type=int, default=2500, help="arrival window in time units")
    sim.add_argument("--beta", type=float, default=1.5, help="deadline slack coefficient")
    sim.add_argument("--seed", type=int, default=2019)
    sim.add_argument(
        "--workload",
        choices=("spec", "transcoding"),
        default="spec",
        help="which PET matrix / system to simulate",
    )
    sim.add_argument("--warmup", type=int, default=50, help="tasks trimmed from the head")
    sim.add_argument("--cooldown", type=int, default=50, help="tasks trimmed from the tail")
    sim.add_argument(
        "--batch-window",
        type=_non_negative_int,
        default=0,
        help="batched scheduling-round window in time units "
        "(0 = map at every event, the paper's protocol)",
    )
    _add_kernel_backend_argument(sim)
    _add_obs_arguments(sim)

    fig = subparsers.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("number", type=int, choices=sorted(_FIGURES), help="figure number (4-9)")
    _add_figure_run_arguments(fig)

    sweep = subparsers.add_parser(
        "sweep", help="regenerate figures in parallel with result caching"
    )
    sweep.add_argument(
        "numbers",
        type=int,
        nargs="+",
        choices=sorted(_FIGURES),
        help="figure numbers to sweep (4-9)",
    )
    _add_figure_run_arguments(sweep)
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress on stderr"
    )

    worker = subparsers.add_parser(
        "worker", help="run one detached sweep worker against a shared work queue"
    )
    worker.add_argument("--queue-dir", required=True, help="work-queue directory")
    worker.add_argument(
        "--poll-interval",
        type=_positive_float,
        default=0.5,
        help="seconds to sleep when the queue has nothing claimable",
    )
    worker.add_argument(
        "--lease-seconds",
        type=_positive_float,
        default=60.0,
        help="claim lease length; renewed automatically while a trial runs",
    )
    worker.add_argument(
        "--max-tasks", type=_positive_int, default=None, help="exit after this many trials"
    )
    worker.add_argument(
        "--exit-when-empty",
        action="store_true",
        help="exit once no trial is pending or leased (instead of polling forever)",
    )
    worker.add_argument(
        "--idle-timeout",
        type=_positive_float,
        default=None,
        help="exit after this many seconds without a successful claim",
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-trial log lines on stderr"
    )

    queue = subparsers.add_parser(
        "queue", help="observe or maintain a shared work queue"
    )
    queue_sub = queue.add_subparsers(dest="queue_command", required=True)
    queue_status = queue_sub.add_parser(
        "status", help="counts per state plus worker heartbeats"
    )
    queue_requeue = queue_sub.add_parser(
        "requeue", help="recover expired leases back to pending"
    )
    queue_requeue.add_argument(
        "--dead",
        action="store_true",
        help="also revive dead-lettered trials with a fresh attempt budget",
    )
    queue_drain = queue_sub.add_parser("drain", help="delete queue rows")
    queue_drain.add_argument(
        "--done-only", action="store_true", help="only delete completed rows"
    )
    for sub in (queue_status, queue_requeue, queue_drain):
        sub.add_argument("--queue-dir", required=True, help="work-queue directory")

    cache = subparsers.add_parser(
        "cache", help="observe or maintain a content-addressed result cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entries, bytes, and kernel-version breakdown"
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="drop artefacts from stale kernel versions"
    )
    cache_gc.add_argument(
        "--kernel-version",
        default=None,
        help="kernel version to KEEP (default: the current "
        "repro.core.batch.KERNEL_VERSION).  Matches the version part of "
        "each artefact's engine tag, so a bare version keeps every "
        "backend's entries at that version; pass a composite tag like "
        "'3+numba' (or add --kernel-backend) to keep one backend only",
    )
    cache_gc.add_argument(
        "--kernel-backend",
        choices=KERNEL_BACKEND_NAMES,
        default=None,
        help="additionally restrict the kept artefacts to this kernel backend",
    )
    cache_gc.add_argument(
        "--dry-run", action="store_true", help="report what would be removed, remove nothing"
    )
    for sub in (cache_stats, cache_gc):
        sub.add_argument("--cache-dir", required=True, help="result-cache root directory")

    trace = subparsers.add_parser("trace", help="record, inspect, or replay workload traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_sub.add_parser("record", help="synthesise a trace and save it to JSON")
    record.add_argument("--out", required=True, help="output trace file (JSON)")
    source = record.add_mutually_exclusive_group()
    source.add_argument(
        "--builder",
        choices=sorted(TRACE_BUILDERS),
        default=None,
        help="named trace builder (e.g. the 660-task transcoding reference shape)",
    )
    source.add_argument(
        "--workload",
        choices=("spec", "transcoding"),
        default=None,
        help="synthesise a Section VI-B workload on this PET instead",
    )
    record.add_argument("--tasks", type=int, default=None, help="number of arriving tasks")
    record.add_argument(
        "--span",
        type=int,
        default=None,
        help="arrival window in time units (synthetic workloads only; default 3000)",
    )
    record.add_argument(
        "--beta",
        type=float,
        default=None,
        help="deadline slack coefficient (synthetic workloads only; default 1.5)",
    )
    record.add_argument("--seed", type=int, default=2019)

    inspect = trace_sub.add_parser("inspect", help="summarise a recorded trace file")
    inspect.add_argument("file", help="trace file written by 'trace record' or save_trace")

    replay = trace_sub.add_parser(
        "replay", help="replay a recorded trace through the sweep/cache pipeline"
    )
    replay.add_argument("file", help="trace file to replay")
    replay.add_argument(
        "--heuristics",
        nargs="+",
        default=["PAMF", "MM"],
        choices=sorted(HEURISTIC_NAMES),
        help="heuristics to compare on the identical replayed arrivals",
    )
    replay.add_argument(
        "--pet",
        choices=("spec", "transcoding"),
        default="transcoding",
        help="PET matrix / system the trace's task types index into",
    )
    replay.add_argument("--trials", type=int, default=2, help="execution-sampling trials")
    replay.add_argument("--seed", type=int, default=2019)
    replay.add_argument(
        "--batch-window",
        type=_non_negative_int,
        default=0,
        help="batched scheduling-round window in time units (0 = per-event)",
    )
    _add_kernel_backend_argument(replay)
    replay.add_argument("--jobs", type=_positive_int, default=1, help="worker processes")
    replay.add_argument("--cache-dir", default=None, help="content-addressed result cache root")
    _add_backend_arguments(replay)
    replay.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress on stderr"
    )
    _add_obs_arguments(replay)

    serve = subparsers.add_parser(
        "serve", help="online scheduler service: host it, feed it, or benchmark it"
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    serve_run = serve_sub.add_parser(
        "run", help="host the admission service on a Unix socket or TCP port until interrupted"
    )
    serve_listen = serve_run.add_mutually_exclusive_group(required=True)
    serve_listen.add_argument(
        "--socket", help="Unix socket path to serve on (created, removed on exit)"
    )
    serve_listen.add_argument(
        "--listen",
        help="endpoint to serve on: unix:PATH or tcp:HOST:PORT (port 0 picks one)",
    )
    serve_run.add_argument(
        "--pet",
        choices=("spec", "transcoding"),
        default="transcoding",
        help="PET matrix / system submitted task types index into",
    )
    serve_run.add_argument(
        "--heuristic", choices=sorted(HEURISTIC_NAMES), default="PAMF",
        help="mapping heuristic the admission loop runs",
    )
    serve_run.add_argument("--seed", type=int, default=2019)
    serve_run.add_argument(
        "--batch-window",
        type=_non_negative_int,
        default=0,
        help="batched scheduling-round window in time units (0 = per-event)",
    )
    _add_kernel_backend_argument(serve_run)
    _add_obs_arguments(serve_run)
    serve_run.add_argument(
        "--drain-grace",
        type=_positive_float,
        default=5.0,
        help="seconds to let in-flight submissions drain on shutdown",
    )
    serve_run.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="engine-worker processes behind the front-end, sharded by task "
        "type (1 = single-process service)",
    )
    serve_run.add_argument(
        "--inbox-limit",
        type=_positive_int,
        default=None,
        help="bounded admission inbox (per-shard in-flight cap when sharded); "
        "submissions beyond it are answered accepted=false",
    )

    serve_submit = serve_sub.add_parser(
        "submit",
        help="replay a recorded trace (or one task) into a running service "
        "and print the streamed decisions",
    )
    serve_target = serve_submit.add_mutually_exclusive_group(required=True)
    serve_target.add_argument("--socket", help="Unix socket of a running 'serve run'")
    serve_target.add_argument(
        "--connect", help="endpoint of a running 'serve run': unix:PATH or tcp:HOST:PORT"
    )
    source = serve_submit.add_mutually_exclusive_group(required=True)
    source.add_argument("--trace", help="recorded trace file to replay")
    source.add_argument(
        "--task",
        nargs=4,
        type=int,
        metavar=("ID", "TYPE", "ARRIVAL", "DEADLINE"),
        help="submit a single task instead of a trace",
    )
    serve_submit.add_argument(
        "--tasks", type=_positive_int, default=None, help="replay only the first N trace tasks"
    )
    serve_submit.add_argument(
        "--rate", type=_positive_float, default=10.0, help="arrival-rate multiplier"
    )
    serve_submit.add_argument(
        "--time-unit",
        type=_positive_float,
        default=None,
        help="wall seconds one trace time unit spans at 1x (default 0.01)",
    )
    serve_submit.add_argument(
        "--close",
        action="store_true",
        help="finalise the run after submitting (otherwise just flush pending decisions)",
    )

    serve_bench = serve_sub.add_parser(
        "bench",
        help="load-generator benchmark: replay a trace at several arrival "
        "rates, verify against offline replay, write BENCH_serve.json",
    )
    serve_bench.add_argument(
        "--trace",
        default="examples/transcoding_660.trace.json",
        help="recorded trace file to replay",
    )
    serve_bench.add_argument(
        "--tasks", type=_positive_int, default=None, help="bench only the first N trace tasks"
    )
    serve_bench.add_argument(
        "--rates",
        nargs="+",
        type=_positive_float,
        default=[10.0, 100.0, 1000.0],
        help="arrival-rate multipliers to sweep",
    )
    serve_bench.add_argument(
        "--heuristic", choices=sorted(HEURISTIC_NAMES), default="PAMF"
    )
    serve_bench.add_argument("--pet", choices=("spec", "transcoding"), default="transcoding")
    serve_bench.add_argument("--seed", type=int, default=2019)
    serve_bench.add_argument(
        "--time-unit",
        type=_positive_float,
        default=None,
        help="wall seconds one trace time unit spans at 1x (default 0.01)",
    )
    serve_bench.add_argument(
        "--out", default="BENCH_serve.json", help="write the JSON bench report here"
    )
    serve_bench.add_argument(
        "--no-check",
        action="store_true",
        help="skip the offline replay-equivalence check",
    )
    serve_bench.add_argument(
        "--transport",
        choices=("unix", "tcp"),
        default="unix",
        help="client-facing transport the bench drives",
    )
    serve_bench.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="engine-worker processes behind the front-end (1 = single-process)",
    )
    serve_bench.add_argument(
        "--inbox-limit",
        type=_positive_int,
        default=None,
        help="shrink the admission inbox to provoke measurable backpressure "
        "(rejections are counted per rate)",
    )

    return parser


def _add_figure_run_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``figure`` and ``sweep`` (both run figure drivers)."""
    parser.add_argument("--trials", type=int, default=2, help="workload trials per data point")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--task-scale", type=float, default=1.0, help="scale factor on task counts")
    parser.add_argument("--output-dir", default=None, help="write text/CSV/JSON artefacts here")
    parser.add_argument(
        "--batch-window",
        type=_non_negative_int,
        default=0,
        help="batched scheduling-round window in time units (0 = per-event, "
        "the paper's protocol; folded into the result cache key)",
    )
    _add_kernel_backend_argument(parser)
    _add_obs_arguments(parser)
    parser.add_argument("--jobs", type=_positive_int, default=1, help="worker processes (1 = serial)")
    parser.add_argument("--cache-dir", default=None, help="content-addressed result cache root")
    _add_backend_arguments(parser)
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="replay this recorded trace file instead of synthesising workloads "
        "(figure 9 only; e.g. examples/transcoding_660.trace.json)",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability export options shared by the engine-running commands.

    Either flag enables the in-process telemetry registry for the whole
    command (spans, counters, timing histograms); without them the command
    runs against the no-op registry and executes bit-identical code.
    """
    parser.add_argument(
        "--obs-trace",
        default=None,
        metavar="PATH",
        help="record spans and write a Chrome trace-event JSON timeline here "
        "(load in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--obs-snapshot",
        default=None,
        metavar="PATH",
        help="write a flat JSON snapshot of telemetry counters/gauges/timing "
        "histograms here",
    )


@contextmanager
def _obs_session(args: argparse.Namespace):
    """Scope a recording telemetry registry around one CLI command.

    No-op (the null registry stays active) unless ``--obs-trace`` or
    ``--obs-snapshot`` was given.  Exports run in a ``finally`` so an
    interrupted command (Ctrl-C on ``serve run``) still writes what it
    recorded.  Only in-process work is captured: trials executed by
    process-pool/queue workers and sharded serve engines run in child
    processes and contribute no spans to this registry.
    """
    trace_path = getattr(args, "obs_trace", None)
    snapshot_path = getattr(args, "obs_snapshot", None)
    if trace_path is None and snapshot_path is None:
        yield None
        return
    from .obs import Telemetry, use_telemetry, write_chrome_trace, write_snapshot

    telemetry = Telemetry()
    try:
        with use_telemetry(telemetry):
            yield telemetry
    finally:
        if trace_path is not None:
            path = write_chrome_trace(telemetry, trace_path)
            print(f"wrote obs trace: {path}", file=sys.stderr)
        if snapshot_path is not None:
            path = write_snapshot(telemetry, snapshot_path)
            print(f"wrote obs snapshot: {path}", file=sys.stderr)


def _add_kernel_backend_argument(parser: argparse.ArgumentParser) -> None:
    """Kernel-backend selection shared by every command that runs the engine."""
    parser.add_argument(
        "--kernel-backend",
        choices=KERNEL_BACKEND_NAMES,
        default=None,
        help="PMF kernel backend the engine dispatches through (default: "
        "$REPRO_KERNEL_BACKEND, else numpy; numba needs the optional numba "
        "package)",
    )


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """Execution-backend selection shared by figure/sweep/replay commands."""
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="process",
        help="where trials execute: in-process, a local process pool, or a "
        "durable work queue drained by detached 'repro worker' processes",
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        help="work-queue directory (required for --backend queue)",
    )
    parser.add_argument(
        "--queue-workers",
        type=_non_negative_int,
        default=None,
        help="workers to spawn for --backend queue (default: --jobs; "
        "0 = rely on detached workers you started yourself)",
    )


def _command_simulate(args: argparse.Namespace) -> int:
    if args.workload == "spec":
        pet = build_spec_pet(rng=args.seed)
    else:
        pet = build_transcoding_pet(rng=args.seed)
    workload = WorkloadConfig(num_tasks=args.tasks, time_span=args.span, beta=args.beta)
    trace = generate_workload(workload, pet, rng=args.seed + 1)
    heuristic = make_heuristic(args.heuristic, num_task_types=pet.num_task_types)
    config = SimulatorConfig(
        batch_window=args.batch_window, kernel_backend=args.kernel_backend
    )
    result = simulate(pet, heuristic, trace, config=config, rng=args.seed + 2)

    print(f"heuristic          : {args.heuristic}")
    if args.kernel_backend is not None:
        print(f"kernel backend     : {args.kernel_backend}")
    if args.batch_window:
        print(
            "engine mode        : "
            f"batched rounds (window {args.batch_window}, "
            f"{result.counters.mapping_events} mapping events)"
        )
    print(f"tasks / span       : {args.tasks} / {args.span} (load {trace.offered_load(pet):.2f}x)")
    print(
        "robustness         : "
        f"{result.robustness_percent(warmup=args.warmup, cooldown=args.cooldown):.2f}% on time"
    )
    print(f"total cost         : {result.total_cost():.3f}")
    print(
        "cost / percent     : "
        f"{result.cost_per_percent_on_time(warmup=args.warmup, cooldown=args.cooldown):.4f}"
    )
    print(
        "fairness variance  : "
        f"{result.fairness_variance(warmup=args.warmup, cooldown=args.cooldown):.2f}"
    )
    print("outcomes:")
    for outcome, count in sorted(result.status_counts().items()):
        print(f"  {outcome:<28} {count}")
    return 0


def _run_figure(
    number: int,
    args: argparse.Namespace,
    *,
    progress: Callable | None = None,
) -> None:
    driver, headers = _FIGURES[number]
    config = ExperimentConfig(
        trials=args.trials,
        seed=args.seed,
        task_scale=args.task_scale,
        batch_window=args.batch_window,
        kernel_backend=args.kernel_backend,
    )
    extra: dict[str, object] = {}
    if getattr(args, "trace", None) is not None:
        if number != 9:
            raise SystemExit(
                f"--trace only applies to figure 9 (the transcoding replay), not figure {number}"
            )
        from .experiments.fig9_transcoding import coerce_fig9_trace

        # Validate the trace up front so only genuine trace problems turn
        # into clean exits; errors out of the run itself propagate intact.
        try:
            extra["trace"] = coerce_fig9_trace(args.trace, seed=config.seed)
        except FileNotFoundError as exc:
            raise SystemExit(f"trace file not found: {args.trace}") from exc
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    if args.backend == "queue" and args.queue_dir is None:
        raise SystemExit("--backend queue requires --queue-dir")
    result = driver(
        config,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        progress=progress,
        backend=args.backend,
        queue_dir=args.queue_dir,
        queue_workers=args.queue_workers,
        **extra,
    )
    print(result.to_text())
    if args.output_dir is not None:
        paths = save_figure_result(result, headers, args.output_dir, name=f"figure{number}")
        for kind, path in paths.items():
            print(f"wrote {kind}: {path}")


def _command_figure(args: argparse.Namespace) -> int:
    _run_figure(args.number, args)
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    progress = None if args.quiet else StreamReporter()
    for number in args.numbers:
        _run_figure(number, args, progress=progress)
    return 0


def _trace_summary_lines(trace) -> list[str]:
    arrivals = [t.arrival for t in trace]
    slacks = [t.slack for t in trace]
    counts = trace.type_counts()
    lines = [
        f"tasks              : {len(trace)}",
        f"task types         : {trace.num_task_types} "
        f"(counts {', '.join(str(int(c)) for c in counts)})",
        f"arrival window     : {arrivals[0] if arrivals else 0} - "
        f"{arrivals[-1] if arrivals else 0} "
        f"(configured span {trace.config.time_span})",
    ]
    if slacks:
        lines.append(
            f"deadline slack     : min {min(slacks)}, max {max(slacks)}, "
            f"mean {sum(slacks) / len(slacks):.1f}"
        )
    else:
        lines.append("deadline slack     : n/a")
    lines.append(f"content sha256     : {trace_content_hash(trace)}")
    return lines


def _command_trace_record(args: argparse.Namespace) -> int:
    if args.builder is not None:
        if args.span is not None or args.beta is not None:
            raise SystemExit(
                "--span/--beta only apply to synthetic --workload recordings; "
                f"the {args.builder!r} builder fixes its own workload shape "
                "(use --seed/--tasks to vary it)"
            )
        trace = build_named_trace(args.builder, seed=args.seed, num_tasks=args.tasks)
        origin = f"builder {args.builder!r} (seed {args.seed})"
    else:
        workload_kind = args.workload or "transcoding"
        pet = (
            build_spec_pet(rng=args.seed)
            if workload_kind == "spec"
            else build_transcoding_pet(rng=args.seed)
        )
        tasks = args.tasks if args.tasks is not None else 500
        span = args.span if args.span is not None else 3000
        beta = args.beta if args.beta is not None else 1.5
        config = WorkloadConfig(num_tasks=tasks, time_span=span, beta=beta)
        trace = generate_workload(config, pet, rng=args.seed + 1)
        origin = f"synthetic {workload_kind} workload (seed {args.seed})"
    path = save_trace(trace, args.out)
    print(f"recorded {origin} -> {path}")
    for line in _trace_summary_lines(trace):
        print(line)
    return 0


def _command_trace_inspect(args: argparse.Namespace) -> int:
    trace = load_trace(args.file)
    print(f"trace file         : {args.file}")
    for line in _trace_summary_lines(trace):
        print(line)
    return 0


def _command_trace_replay(args: argparse.Namespace) -> int:
    from .experiments.fig9_transcoding import TRACE_LEVEL_LABEL
    from .simulator.cost import default_prices_for
    from .sweep import (
        HeuristicSpec,
        PETSpec,
        SweepSpec,
        TraceSpec,
        pet_for,
        run_sweep,
        trace_for,
    )
    from .utils.tables import format_table

    heuristics = list(dict.fromkeys(args.heuristics))
    config = ExperimentConfig(
        trials=args.trials,
        seed=args.seed,
        batch_window=args.batch_window,
        kernel_backend=args.kernel_backend,
    )
    pet_spec = PETSpec(kind=args.pet, seed=config.seed)
    pet = pet_for(pet_spec)
    trace_spec = TraceSpec(path=args.file)
    try:
        # Resolved through the same per-process memo the executor uses, so
        # the run parses the file once, not once per layer.
        trace = trace_for(trace_spec)
    except FileNotFoundError:
        raise SystemExit(f"trace file not found: {args.file}")
    except ValueError as exc:
        raise SystemExit(str(exc))
    if trace.num_task_types > pet.num_task_types:
        raise SystemExit(
            f"trace uses {trace.num_task_types} task types but the {args.pet!r} "
            f"PET only has {pet.num_task_types}"
        )
    spec = SweepSpec.from_traces(
        pet=pet_spec,
        heuristics={name: HeuristicSpec(name=name) for name in heuristics},
        traces={TRACE_LEVEL_LABEL: trace_spec},
        config=config,
        machine_prices=tuple(default_prices_for(pet.machine_names)),
    )
    if args.backend == "queue" and args.queue_dir is None:
        raise SystemExit("--backend queue requires --queue-dir")
    progress = None if args.quiet else StreamReporter()
    outcome = run_sweep(
        spec,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        progress=progress,
        backend=args.backend,
        queue_dir=args.queue_dir,
        queue_workers=args.queue_workers,
    )
    rows = []
    for series in outcome.series():
        summary = series.robustness()
        rows.append([series.label, summary.mean, summary.ci95])
    print(f"replayed {args.file} ({len(trace)} tasks, {args.trials} trials each)")
    print(format_table(["series", "robustness %", "ci95"], rows))
    if args.cache_dir is not None:
        print(
            f"cache: {outcome.cache_hits} hits, {outcome.cache_misses} misses, "
            f"{outcome.executed_trials} trials executed"
        )
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from .sweep import run_worker

    def log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    executed = run_worker(
        args.queue_dir,
        poll_interval=args.poll_interval,
        lease_seconds=args.lease_seconds,
        max_tasks=args.max_tasks,
        exit_when_empty=args.exit_when_empty,
        idle_timeout=args.idle_timeout,
        log=None if args.quiet else log,
    )
    print(f"executed {executed} trial(s)")
    return 0


def _command_queue(args: argparse.Namespace) -> int:
    from .sweep import WorkQueue, format_heartbeat
    from .utils.tables import format_table

    queue = WorkQueue(args.queue_dir)
    if args.queue_command == "status":
        status = queue.status()
        rows = [
            ["pending", status.pending],
            ["leased", status.leased],
            ["done", status.done],
            ["dead", status.dead],
            ["total", status.total],
        ]
        print(format_table(["state", "trials"], rows))
        print(format_heartbeat(status))
        dead_rows = [t for t in queue.tasks() if t.status == "dead"]
        for row in dead_rows[:5]:
            detail = (row.error or "no error recorded").strip().splitlines()[-1]
            print(f"dead: {row.label!r} trial {row.trial_index} — {detail}")
        if len(dead_rows) > 5:
            print(f"... and {len(dead_rows) - 5} more dead trial(s)")
        return 0
    if args.queue_command == "requeue":
        moved = queue.requeue(include_dead=args.dead)
        print(f"requeued {moved} trial(s)")
        return 0
    if args.queue_command == "drain":
        removed = queue.drain(done_only=args.done_only)
        which = "completed" if args.done_only else "queued"
        print(f"drained {removed} {which} row(s)")
        return 0
    raise AssertionError(f"unhandled queue command {args.queue_command!r}")  # pragma: no cover


def _command_cache(args: argparse.Namespace) -> int:
    from .core.batch import KERNEL_VERSION
    from .sweep import ResultCache
    from .utils.tables import format_table

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        from .core.kernels import parse_kernel_tag

        stats = cache.disk_stats()
        print(f"entries            : {stats['entries']}")
        print(f"bytes              : {stats['bytes']}")
        print(f"corrupt            : {stats['corrupt']}")
        kernels = stats["kernel_versions"]
        if kernels:
            # Grouped by the full engine tag; the version *part* decides
            # current vs stale, so "3" and "3+numba" are both current at
            # kernel version 3 — just produced by different backends.
            rows = []
            for tag, count in kernels.items():
                version, backend = parse_kernel_tag(tag)
                status = "current" if version == str(KERNEL_VERSION) else "stale"
                rows.append([tag, backend, count, status])
            print(format_table(["kernel tag", "backend", "entries", ""], rows))
        return 0
    if args.cache_command == "gc":
        keep = args.kernel_version if args.kernel_version is not None else KERNEL_VERSION
        removed, removed_bytes = cache.gc(
            keep_kernel_version=keep,
            keep_backend=args.kernel_backend,
            dry_run=args.dry_run,
        )
        verb = "would remove" if args.dry_run else "removed"
        kept = f"kernel version {keep!r}"
        if args.kernel_backend is not None:
            kept += f" on backend {args.kernel_backend!r}"
        print(f"{verb} {removed} artefact(s) ({removed_bytes} bytes) not matching {kept}")
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")  # pragma: no cover


def _serve_pet(args: argparse.Namespace):
    return build_spec_pet(rng=args.seed) if args.pet == "spec" else build_transcoding_pet(rng=args.seed)


def _command_serve_run(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from .serve import (
        SchedulerCore,
        SchedulerService,
        ShardedSchedulerService,
        build_shard_specs,
    )

    pet = _serve_pet(args)
    listen = args.listen if args.listen is not None else args.socket
    sim_config = SimulatorConfig(
        batch_window=args.batch_window, kernel_backend=args.kernel_backend
    )

    async def host() -> tuple[dict, BaseException | None]:
        if args.workers > 1:
            # Sharded: the front-end's per-shard in-flight cap is the
            # binding backpressure limit; worker inboxes sit above it.
            front_cap = args.inbox_limit if args.inbox_limit is not None else 256
            shard_specs = build_shard_specs(
                pet,
                args.heuristic,
                workers=args.workers,
                seed=args.seed + 2,
                sim_config=sim_config,
                inbox_limit=max(4 * front_cap, 1024),
            )
            service: SchedulerService | ShardedSchedulerService = ShardedSchedulerService(
                shard_specs, listen, max_inflight=front_cap, drain_grace=args.drain_grace
            )
            snapshot = service.metrics.snapshot
        else:
            heuristic = make_heuristic(args.heuristic, num_task_types=pet.num_task_types)
            core = SchedulerCore(pet, heuristic, config=sim_config, rng=args.seed + 2)
            kwargs = {} if args.inbox_limit is None else {"inbox_limit": args.inbox_limit}
            service = SchedulerService(core, listen, drain_grace=args.drain_grace, **kwargs)
            snapshot = core.metrics.snapshot
        await service.start()
        mode = f" (batched rounds, window {args.batch_window})" if args.batch_window else ""
        if args.kernel_backend is not None:
            mode += f" [kernel backend {args.kernel_backend}]"
        if args.workers > 1:
            mode += f" [{args.workers} sharded workers]"
        print(
            f"serving {args.heuristic}{mode} on {service.endpoint} — Ctrl-C to stop",
            file=sys.stderr,
            flush=True,
        )
        loop = asyncio.get_running_loop()
        interrupted = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, interrupted.set)
        stopper = asyncio.create_task(interrupted.wait(), name="repro-serve-signal")
        stopped = asyncio.create_task(service.wait_stopped(), name="repro-serve-stopped")
        try:
            # Until Ctrl-C, or until a client's `close` shuts the service down.
            await asyncio.wait({stopper, stopped}, return_when=asyncio.FIRST_COMPLETED)
            await service.stop(drain=True)
        finally:
            for task in (stopper, stopped):
                task.cancel()
            await asyncio.gather(stopper, stopped, return_exceptions=True)
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(signum)
        return snapshot(), service.failure

    snapshot, failure = asyncio.run(host())
    print(json.dumps(snapshot, indent=2))
    if failure is not None:
        print(f"service failed: {failure}", file=sys.stderr)
        return 1
    return 0


def _command_serve_submit(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .serve import replay_trace
    from .serve.loadgen import DEFAULT_TIME_UNIT_SECONDS
    from .workload.spec import TaskSpec

    if args.task is not None:
        task_id, task_type, arrival, deadline = args.task
        specs: list = [
            TaskSpec(arrival=arrival, task_id=task_id, task_type=task_type, deadline=deadline)
        ]
    else:
        from .serve import slice_trace

        specs = slice_trace(load_trace(args.trace), args.tasks)
    time_unit = args.time_unit if args.time_unit is not None else DEFAULT_TIME_UNIT_SECONDS
    endpoint = args.connect if args.connect is not None else args.socket
    outcome = asyncio.run(
        replay_trace(
            endpoint,
            specs,
            rate=args.rate,
            time_unit_seconds=time_unit,
            close=args.close,
            progress=lambda message: print(message, file=sys.stderr, flush=True),
        )
    )
    for event in outcome.decisions:
        print(json.dumps(event, separators=(",", ":")))
    rejected_note = (
        f", {outcome.rejected} rejected under backpressure" if outcome.rejected else ""
    )
    print(
        f"submitted {outcome.submitted} task(s), received {len(outcome.decisions)} "
        f"decision(s) in {outcome.wall_seconds:.3f}s{rejected_note}",
        file=sys.stderr,
    )
    if outcome.closed is not None:
        summary = outcome.closed["summary"]
        print(
            f"run closed: robustness {summary['robustness_percent']:.2f}% on time",
            file=sys.stderr,
        )
    return 0


def _command_serve_bench(args: argparse.Namespace) -> int:
    from .serve import run_bench, slice_trace
    from .serve.loadgen import DEFAULT_TIME_UNIT_SECONDS
    from .utils.tables import format_table

    pet = _serve_pet(args)
    trace = slice_trace(load_trace(args.trace), args.tasks)

    def heuristic_factory():
        return make_heuristic(args.heuristic, num_task_types=pet.num_task_types)

    report = run_bench(
        pet,
        heuristic_factory,
        trace,
        heuristic_name=args.heuristic,
        pet_kind=args.pet,
        seed=args.seed + 2,
        rates=tuple(args.rates),
        time_unit_seconds=(
            args.time_unit if args.time_unit is not None else DEFAULT_TIME_UNIT_SECONDS
        ),
        check_offline=not args.no_check,
        transport=args.transport,
        workers=args.workers,
        inbox_limit=args.inbox_limit,
        out_path=args.out,
        progress=lambda message: print(message, file=sys.stderr, flush=True),
    )
    headers = ["rate", "decisions/s", "rejected", "p50 ms", "p95 ms", "p99 ms", "drop %"]
    rows = [
        [
            f"{rate.multiplier:g}x",
            f"{rate.decisions_per_sec:.0f}",
            f"{rate.rejected}",
            f"{rate.p50_ms:.2f}",
            f"{rate.p95_ms:.2f}",
            f"{rate.p99_ms:.2f}",
            f"{100.0 * rate.drop_rate:.1f}",
        ]
        for rate in report.rates
    ]
    print(format_table(headers, rows))
    if report.equivalent_to_offline is not None:
        print(f"replay-equivalent to offline run: {report.equivalent_to_offline}")
    print(f"wrote {args.out}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.serve_command == "run":
        with _obs_session(args):
            return _command_serve_run(args)
    if args.serve_command == "submit":
        return _command_serve_submit(args)
    if args.serve_command == "bench":
        return _command_serve_bench(args)
    raise AssertionError(f"unhandled serve command {args.serve_command!r}")  # pragma: no cover


def _command_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        return _command_trace_record(args)
    if args.trace_command == "inspect":
        return _command_trace_inspect(args)
    if args.trace_command == "replay":
        with _obs_session(args):
            return _command_trace_replay(args)
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        with _obs_session(args):
            return _command_simulate(args)
    if args.command == "figure":
        with _obs_session(args):
            return _command_figure(args)
    if args.command == "sweep":
        with _obs_session(args):
            return _command_sweep(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "queue":
        return _command_queue(args)
    if args.command == "cache":
        return _command_cache(args)
    if args.command == "serve":
        return _command_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
