"""Command-line interface for the reproduction.

Three subcommands cover the common workflows:

``simulate``
    Run one workload trial with a chosen heuristic and print the headline
    metrics (robustness, cost, outcome breakdown).

``figure``
    Regenerate one of the paper's evaluation figures (4-9) and print the
    table of series; optionally write text/CSV/JSON artefacts.

``sweep``
    Regenerate one or more figures through the :mod:`repro.sweep`
    orchestration subsystem: trials fan out over ``--jobs`` worker
    processes, per-point progress streams to stderr, and completed points
    are cached under ``--cache-dir`` so interrupted or repeated sweeps
    resume instantly.

Examples::

    python -m repro.cli simulate --heuristic PAM --tasks 500 --span 2500
    python -m repro.cli figure 7 --trials 2
    python -m repro.cli figure 9 --trials 3 --output-dir results/
    python -m repro.cli sweep 4 7 --jobs 4 --cache-dir results/cache
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from . import (
    WorkloadConfig,
    build_spec_pet,
    build_transcoding_pet,
    generate_workload,
    make_heuristic,
    simulate,
)
from .experiments import (
    ExperimentConfig,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
)
from .experiments.reporting import save_figure_result
from .heuristics.registry import HEURISTIC_NAMES
from .sweep import StreamReporter

__all__ = ["main", "build_parser"]

#: Figure number -> (driver, CSV headers)
_FIGURES: dict[int, tuple[Callable[..., object], list[str]]] = {
    4: (run_fig4, ["lambda", "default robustness %", "default ci95", "schmitt robustness %", "schmitt ci95"]),
    5: (run_fig5, ["drop threshold %", "defer threshold %", "robustness %", "ci95"]),
    6: (run_fig6, ["level", "fairness factor %", "variance of type completion %", "robustness %", "ci95"]),
    7: (run_fig7, ["level", "heuristic", "robustness %", "ci95"]),
    8: (run_fig8, ["level", "heuristic", "total cost", "robustness %", "cost / percent on-time"]),
    9: (run_fig9, ["level", "heuristic", "robustness %", "ci95"]),
}


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Robust Dynamic Resource Allocation via "
        "Probabilistic Task Pruning in Heterogeneous Computing Systems'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sim = subparsers.add_parser("simulate", help="run one workload trial")
    sim.add_argument("--heuristic", default="PAM", choices=sorted(HEURISTIC_NAMES))
    sim.add_argument("--tasks", type=int, default=500, help="number of arriving tasks")
    sim.add_argument("--span", type=int, default=2500, help="arrival window in time units")
    sim.add_argument("--beta", type=float, default=1.5, help="deadline slack coefficient")
    sim.add_argument("--seed", type=int, default=2019)
    sim.add_argument(
        "--workload",
        choices=("spec", "transcoding"),
        default="spec",
        help="which PET matrix / system to simulate",
    )
    sim.add_argument("--warmup", type=int, default=50, help="tasks trimmed from the head")
    sim.add_argument("--cooldown", type=int, default=50, help="tasks trimmed from the tail")

    fig = subparsers.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("number", type=int, choices=sorted(_FIGURES), help="figure number (4-9)")
    _add_figure_run_arguments(fig)

    sweep = subparsers.add_parser(
        "sweep", help="regenerate figures in parallel with result caching"
    )
    sweep.add_argument(
        "numbers",
        type=int,
        nargs="+",
        choices=sorted(_FIGURES),
        help="figure numbers to sweep (4-9)",
    )
    _add_figure_run_arguments(sweep)
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress on stderr"
    )

    return parser


def _add_figure_run_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``figure`` and ``sweep`` (both run figure drivers)."""
    parser.add_argument("--trials", type=int, default=2, help="workload trials per data point")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--task-scale", type=float, default=1.0, help="scale factor on task counts")
    parser.add_argument("--output-dir", default=None, help="write text/CSV/JSON artefacts here")
    parser.add_argument("--jobs", type=_positive_int, default=1, help="worker processes (1 = serial)")
    parser.add_argument("--cache-dir", default=None, help="content-addressed result cache root")


def _command_simulate(args: argparse.Namespace) -> int:
    if args.workload == "spec":
        pet = build_spec_pet(rng=args.seed)
    else:
        pet = build_transcoding_pet(rng=args.seed)
    workload = WorkloadConfig(num_tasks=args.tasks, time_span=args.span, beta=args.beta)
    trace = generate_workload(workload, pet, rng=args.seed + 1)
    heuristic = make_heuristic(args.heuristic, num_task_types=pet.num_task_types)
    result = simulate(pet, heuristic, trace, rng=args.seed + 2)

    print(f"heuristic          : {args.heuristic}")
    print(f"tasks / span       : {args.tasks} / {args.span} (load {trace.offered_load(pet):.2f}x)")
    print(
        "robustness         : "
        f"{result.robustness_percent(warmup=args.warmup, cooldown=args.cooldown):.2f}% on time"
    )
    print(f"total cost         : {result.total_cost():.3f}")
    print(
        "cost / percent     : "
        f"{result.cost_per_percent_on_time(warmup=args.warmup, cooldown=args.cooldown):.4f}"
    )
    print(
        "fairness variance  : "
        f"{result.fairness_variance(warmup=args.warmup, cooldown=args.cooldown):.2f}"
    )
    print("outcomes:")
    for outcome, count in sorted(result.status_counts().items()):
        print(f"  {outcome:<28} {count}")
    return 0


def _run_figure(
    number: int,
    args: argparse.Namespace,
    *,
    progress: Callable | None = None,
) -> None:
    driver, headers = _FIGURES[number]
    config = ExperimentConfig(trials=args.trials, seed=args.seed, task_scale=args.task_scale)
    result = driver(
        config, jobs=args.jobs, cache_dir=args.cache_dir, progress=progress
    )
    print(result.to_text())
    if args.output_dir is not None:
        paths = save_figure_result(result, headers, args.output_dir, name=f"figure{number}")
        for kind, path in paths.items():
            print(f"wrote {kind}: {path}")


def _command_figure(args: argparse.Namespace) -> int:
    _run_figure(args.number, args)
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    progress = None if args.quiet else StreamReporter()
    for number in args.numbers:
        _run_figure(number, args, progress=progress)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "sweep":
        return _command_sweep(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
