"""Multi-worker sharded admission: one front-end, N engine-worker processes.

The single-process :class:`~repro.serve.service.SchedulerService` serialises
every submission through one :class:`SchedulerCore`; past a few thousand
decisions per second the Python admission loop is the ceiling.  This module
scales the service *out*: a :class:`ShardedSchedulerService` front-end owns
the one client-facing socket (Unix or TCP) and routes each submission — by a
stable hash of its ``task_type`` — to one of N **worker processes**, each
hosting its own :class:`SchedulerCore` behind a private Unix socket in a
scratch directory.  Decision events flow back through the front-end, which
re-sequences them into one globally-ordered stream (``seq``) while
preserving each worker's own order (``shard``/``shard_seq``).

Sharding by task type partitions the *workload*, not the machines: each
shard simulates the full machine set for its slice of task types, so a
shard's decision stream is bit-identical to an offline
:meth:`HCSimulator.run` of exactly that shard's tasks (seeded with
:func:`shard_seed`) — the per-shard replay-equivalence contract pinned in
``tests/serve/test_sharded.py``.  The merged stream is the union of the
per-shard streams; cross-shard interleaving is wall-clock order at the
front-end and deliberately *not* part of the contract.

Backpressure is layered: the front-end caps in-flight submissions per shard
(``max_inflight``) and answers ``{"event": "accepted", "accepted": false,
"reason": "overloaded"}`` beyond it, while each worker keeps its own
bounded inbox (sized above the front-end cap, so the front-end's limit is
the one that binds and rejection responses stay correlated).

Worker processes are spawned via :mod:`multiprocessing` (fork where
available, spawn otherwise — :class:`ShardSpec` is picklable either way)
and are daemons: an abandoned front-end cannot leak engine processes.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import shutil
import sys
import tempfile
import time
from collections import deque
from contextlib import suppress
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..pet.matrix import PETMatrix
from ..simulator.engine import SimulatorConfig
from ..workload.spec import TaskSpec
from .metrics import ServiceMetrics, merge_snapshots
from .protocol import (
    decode_line,
    encode_line,
    format_endpoint,
    parse_endpoint,
    spec_from_payload,
    spec_to_payload,
)
from .service import SchedulerCore, SchedulerService

__all__ = [
    "ShardSpec",
    "ShardedSchedulerService",
    "build_shard_specs",
    "partition_trace",
    "shard_for",
    "shard_seed",
]


def shard_for(task_type: int, num_shards: int) -> int:
    """The shard a task type routes to — stable across processes and runs.

    Uses a keyed-nothing BLAKE2s digest rather than Python's ``hash`` (which
    is salted per process) so the front-end, every worker, and any offline
    replay agree on the partition.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    digest = hashlib.blake2s(str(int(task_type)).encode("ascii"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


def shard_seed(seed: int, shard: int) -> int:
    """Per-shard engine seed: distinct streams, derivable offline."""
    return int(seed) + int(shard)


def partition_trace(
    specs: Iterable[TaskSpec], num_shards: int
) -> list[list[TaskSpec]]:
    """Split a task stream into per-shard subsequences (arrival order kept)."""
    shards: list[list[TaskSpec]] = [[] for _ in range(num_shards)]
    for spec in specs:
        shards[shard_for(spec.task_type, num_shards)].append(spec)
    return shards


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker process needs to build its admission core.

    Picklable by construction (the heuristic travels as its registry name)
    so workers can start under either the fork or the spawn method.
    """

    pet: PETMatrix
    #: Heuristic registry name (``repro.heuristics.make_heuristic``).
    heuristic: str
    seed: int
    sim_config: SimulatorConfig | None = None
    #: The worker's own bounded inbox; sized above the front-end's
    #: ``max_inflight`` so the front-end cap is the one that binds.
    inbox_limit: int = 1024

    def build_core(self) -> SchedulerCore:
        from ..heuristics import make_heuristic

        heuristic = make_heuristic(self.heuristic, num_task_types=self.pet.num_task_types)
        return SchedulerCore(self.pet, heuristic, config=self.sim_config, rng=self.seed)


def build_shard_specs(
    pet: PETMatrix,
    heuristic: str,
    *,
    workers: int,
    seed: int,
    sim_config: SimulatorConfig | None = None,
    inbox_limit: int = 1024,
) -> tuple[ShardSpec, ...]:
    """One :class:`ShardSpec` per worker, seeded with :func:`shard_seed`."""
    if workers < 1:
        raise ValueError("workers must be at least 1")
    return tuple(
        ShardSpec(
            pet=pet,
            heuristic=heuristic,
            seed=shard_seed(seed, shard),
            sim_config=sim_config,
            inbox_limit=inbox_limit,
        )
        for shard in range(workers)
    )


# ----------------------------------------------------------------------
# Worker-process entry points (module level: picklable under spawn).
# ----------------------------------------------------------------------
def _shard_main(spec: ShardSpec, socket_path: str) -> None:
    """Child-process body: host one single-shard service until it stops."""
    # Under fork the child inherits the parent's "a loop is running" thread
    # state; clear it so asyncio.run can build a fresh loop.
    with suppress(AttributeError):
        asyncio.events._set_running_loop(None)
    try:
        asyncio.run(_host_shard(spec, socket_path))
    except KeyboardInterrupt:  # pragma: no cover - interactive interrupt
        pass


async def _host_shard(spec: ShardSpec, socket_path: str) -> None:
    service = SchedulerService(
        spec.build_core(), socket_path, inbox_limit=spec.inbox_limit
    )
    await service.start()
    await service.wait_stopped()


# ----------------------------------------------------------------------
# Front-end internals.
# ----------------------------------------------------------------------
@dataclass
class _FanIn:
    """One control request (flush/stats/close) awaiting every shard."""

    op: str
    writer: asyncio.StreamWriter | None
    remaining: int
    collected: list = field(default_factory=list)
    failed: bool = False


class _Shard:
    """Front-end bookkeeping for one worker process."""

    def __init__(self, index: int, spec: ShardSpec, socket_path: Path) -> None:
        self.index = index
        self.spec = spec
        self.socket_path = socket_path
        self.process: multiprocessing.process.BaseProcess | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.relay: asyncio.Task | None = None
        self.send_lock = asyncio.Lock()
        #: task_id -> requesting client writer, for in-flight submits.
        self.submit_waiters: dict[int, asyncio.StreamWriter] = {}
        #: FIFO of control requests forwarded to this shard.
        self.control: deque[_FanIn] = deque()
        self.closed_payload: dict | None = None


def _mp_context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class ShardedSchedulerService:
    """One client-facing socket fronting N sharded engine workers.

    Speaks the same JSON-lines wire protocol as the single-process
    :class:`~repro.serve.service.SchedulerService`; clients cannot tell the
    difference except for the extra ``shard``/``shard_seq`` fields on
    decision events and per-shard detail inside ``stats``/``closed``
    payloads.
    """

    def __init__(
        self,
        shard_specs: Sequence[ShardSpec],
        listen: str | Path,
        *,
        max_inflight: int = 256,
        drain_grace: float = 5.0,
        worker_start_timeout: float = 30.0,
    ) -> None:
        if not shard_specs:
            raise ValueError("at least one shard spec is required")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self._specs = tuple(shard_specs)
        self._endpoint = parse_endpoint(listen)
        self.socket_path = Path(self._endpoint[1]) if self._endpoint[0] == "unix" else None
        self.max_inflight = int(max_inflight)
        self.drain_grace = float(drain_grace)
        self.worker_start_timeout = float(worker_start_timeout)
        #: Front-end routing counters (workers keep their own engine-side
        #: metrics; ``stats`` merges both views).
        self.metrics = ServiceMetrics()
        self.failure: BaseException | None = None
        self._shards: list[_Shard] = []
        self._scratch: Path | None = None
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._seq = 0
        self._stopped = asyncio.Event()
        self._stopping = False
        #: Serialises control fan-out so every shard sees control ops in
        #: the same order its FIFO recorded them (concurrent clients would
        #: otherwise interleave forwards and desynchronise the matching).
        self._control_lock = asyncio.Lock()

    @property
    def num_shards(self) -> int:
        return len(self._specs)

    @property
    def endpoint(self) -> str:
        """The client-facing endpoint string (actual bound port over TCP)."""
        return format_endpoint(self._endpoint)

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None or self._shards:
            raise RuntimeError("the service is already started")
        self._scratch = Path(tempfile.mkdtemp(prefix="repro-shards-"))
        ctx = _mp_context()
        shards = [
            _Shard(index, spec, self._scratch / f"shard-{index}.sock")
            for index, spec in enumerate(self._specs)
        ]
        try:
            for shard in shards:
                process = ctx.Process(
                    target=_shard_main,
                    args=(shard.spec, str(shard.socket_path)),
                    name=f"repro-shard-{shard.index}",
                    daemon=True,
                )
                process.start()
                shard.process = process
            for shard in shards:
                await self._wait_for_worker(shard)
            for shard in shards:
                shard.reader, shard.writer = await asyncio.open_unix_connection(
                    str(shard.socket_path)
                )
                shard.relay = asyncio.create_task(
                    self._relay(shard), name=f"repro-shard-relay-{shard.index}"
                )
        except BaseException:
            self._shards = shards
            await self._teardown_workers()
            self._cleanup_scratch()
            self._shards = []
            raise
        self._shards = shards
        if self._endpoint[0] == "unix":
            assert self.socket_path is not None
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            if self.socket_path.exists():
                self.socket_path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=str(self.socket_path)
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self._endpoint[1], port=self._endpoint[2]
            )
            bound = self._server.sockets[0].getsockname()
            self._endpoint = ("tcp", bound[0], bound[1])

    async def _wait_for_worker(self, shard: _Shard) -> None:
        """Block until the worker's socket exists (or the process died)."""
        deadline = time.monotonic() + self.worker_start_timeout
        assert shard.process is not None
        while not shard.socket_path.exists():
            if not shard.process.is_alive():
                raise RuntimeError(
                    f"shard worker {shard.index} exited with code "
                    f"{shard.process.exitcode} before binding its socket"
                )
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"shard worker {shard.index} did not bind {shard.socket_path} "
                    f"within {self.worker_start_timeout:.0f}s"
                )
            await asyncio.sleep(0.01)

    async def wait_stopped(self) -> None:
        """Block until the service has fully shut down."""
        await self._stopped.wait()

    # ------------------------------------------------------------------
    async def stop(self, *, drain: bool = True) -> None:
        """Graceful shutdown; idempotent and safe to call from any task."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        await asyncio.sleep(0)
        if self._server is not None:
            self._server.close()
            with suppress(OSError):
                await self._server.wait_closed()
            self._server = None
        if drain:
            # Ask every still-open shard to finalise, bounded by the grace
            # period; workers exit on their own after answering `close`.
            with suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._drain_shards(), self.drain_grace)
        await self._teardown_workers()
        for writer in list(self._writers):
            await self._discard_writer(writer)
        if self.socket_path is not None:
            with suppress(OSError):
                if self.socket_path.exists():
                    self.socket_path.unlink()
        self._cleanup_scratch()
        self._stopped.set()

    async def _drain_shards(self) -> None:
        pending = [s for s in self._shards if s.closed_payload is None and s.writer]
        for shard in pending:
            fan_in = _FanIn(op="close", writer=None, remaining=1)
            shard.control.append(fan_in)
            with suppress(Exception):
                await self._forward(shard, {"op": "close"})
        for shard in pending:
            while shard.closed_payload is None and shard.relay is not None and not shard.relay.done():
                await asyncio.sleep(0.01)

    async def _teardown_workers(self) -> None:
        for shard in self._shards:
            if shard.relay is not None and not shard.relay.done():
                shard.relay.cancel()
                with suppress(asyncio.CancelledError):
                    await shard.relay
            if shard.writer is not None:
                with suppress(Exception):
                    shard.writer.close()
                    await shard.writer.wait_closed()
        # Workers that finalised (answered `close`) exit on their own; a
        # worker torn down mid-run is terminated outright.
        for shard in self._shards:
            process = shard.process
            if process is not None and shard.closed_payload is None and process.is_alive():
                process.terminate()
        deadline = time.monotonic() + 5.0
        for shard in self._shards:
            process = shard.process
            if process is None:
                continue
            while process.is_alive() and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
            process.join(timeout=0.5)

    def _cleanup_scratch(self) -> None:
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None

    # ------------------------------------------------------------------
    # Client side.
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_line(line)
                except ValueError as exc:
                    await self._send(writer, {"event": "error", "message": str(exc)})
                    continue
                try:
                    await self._route(request, writer)
                except Exception as exc:
                    self.failure = exc
                    print(
                        f"repro.serve: sharded front-end failed on "
                        f"{request.get('op')!r}: {exc!r}",
                        file=sys.stderr,
                        flush=True,
                    )
                    with suppress(Exception):
                        await self._send(
                            writer,
                            {
                                "event": "error",
                                "fatal": True,
                                "message": f"internal error: {type(exc).__name__}: {exc}",
                            },
                        )
                    asyncio.create_task(self.stop(drain=False))
                    return
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._discard_writer(writer)

    async def _route(self, request: Mapping, writer: asyncio.StreamWriter) -> None:
        op = request.get("op")
        if op == "submit":
            await self._route_submit(request, writer)
            return
        if op in ("flush", "stats", "close"):
            fan_in = _FanIn(op=op, writer=writer, remaining=len(self._shards))
            async with self._control_lock:
                for shard in self._shards:
                    shard.control.append(fan_in)
                for shard in self._shards:
                    await self._forward(shard, {"op": op})
            return
        await self._send(writer, {"event": "error", "message": f"unknown op {op!r}"})

    async def _route_submit(self, request: Mapping, writer: asyncio.StreamWriter) -> None:
        try:
            spec = spec_from_payload(request.get("task"))
        except ValueError as exc:
            self.metrics.rejected += 1
            await self._send(writer, {"event": "error", "message": str(exc)})
            return
        shard = self._shards[shard_for(spec.task_type, len(self._shards))]
        if len(shard.submit_waiters) >= self.max_inflight:
            # Per-shard backpressure: reject at the door, never forward.
            self.metrics.rejected_overload += 1
            await self._send(
                writer,
                {
                    "event": "accepted",
                    "accepted": False,
                    "task_id": spec.task_id,
                    "shard": shard.index,
                    "reason": "overloaded",
                },
            )
            return
        if spec.task_id in shard.submit_waiters:
            self.metrics.rejected += 1
            await self._send(
                writer,
                {
                    "event": "error",
                    "task_id": spec.task_id,
                    "message": f"task {spec.task_id} is already in flight",
                },
            )
            return
        shard.submit_waiters[spec.task_id] = writer
        self.metrics.submitted += 1
        await self._forward(shard, {"op": "submit", "task": spec_to_payload(spec)})

    async def _forward(self, shard: _Shard, payload: Mapping) -> None:
        assert shard.writer is not None
        async with shard.send_lock:
            shard.writer.write(encode_line(payload))
            await shard.writer.drain()

    # ------------------------------------------------------------------
    # Worker side: one relay task per shard.
    # ------------------------------------------------------------------
    async def _relay(self, shard: _Shard) -> None:
        assert shard.reader is not None
        try:
            while True:
                line = await shard.reader.readline()
                if not line:
                    break
                event = decode_line(line)
                kind = event.get("event")
                if kind == "decision":
                    await self._relay_decision(shard, event)
                elif kind == "accepted" or (kind == "error" and "task_id" in event):
                    client = shard.submit_waiters.pop(int(event["task_id"]), None)
                    if kind == "accepted":
                        event.setdefault("accepted", True)
                    event["shard"] = shard.index
                    if client is not None:
                        await self._send(client, event)
                elif kind in ("flushed", "stats", "closed"):
                    if kind == "closed":
                        shard.closed_payload = event
                    await self._resolve_control(shard, kind, event)
                elif kind == "error":
                    # Uncorrelated error: a control response (head of the
                    # FIFO) or a fatal worker failure.
                    if shard.control:
                        await self._resolve_control(shard, "error", event)
                    else:
                        await self._shard_failed(
                            shard, RuntimeError(str(event.get("message")))
                        )
                        return
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        # A worker EOFs its clients after answering `close`; that is a
        # normal exit, not a failure — only an EOF from a still-open shard
        # is a died-underneath-us event.
        if not self._stopping and shard.closed_payload is None:
            await self._shard_failed(
                shard,
                RuntimeError(f"shard worker {shard.index} closed its connection"),
            )

    async def _relay_decision(self, shard: _Shard, event: dict) -> None:
        payload = dict(event)
        payload["shard"] = shard.index
        payload["shard_seq"] = payload.get("seq")
        payload["seq"] = self._seq
        self._seq += 1
        self.metrics.decisions += 1
        await self._broadcast(payload)

    async def _resolve_control(self, shard: _Shard, kind: str, event: dict) -> None:
        if not shard.control:  # pragma: no cover - defensive
            return
        fan_in = shard.control.popleft()
        fan_in.collected.append((shard.index, event))
        if kind == "error":
            fan_in.failed = True
        fan_in.remaining -= 1
        if fan_in.remaining > 0:
            return
        if fan_in.op == "close":
            await self._finish_close(fan_in)
            return
        if fan_in.writer is None:
            return
        if fan_in.failed:
            first_error = next(
                (e for _, e in fan_in.collected if e.get("event") == "error"), None
            )
            await self._send(
                fan_in.writer,
                first_error or {"event": "error", "message": f"{fan_in.op} failed"},
            )
            return
        if fan_in.op == "flush":
            await self._send(fan_in.writer, {"event": "flushed"})
        elif fan_in.op == "stats":
            await self._send(fan_in.writer, self._merged_stats(fan_in))

    def _merged_stats(self, fan_in: _FanIn) -> dict:
        ordered = sorted(fan_in.collected)
        shard_metrics = [event.get("metrics", {}) for _, event in ordered]
        merged = merge_snapshots(shard_metrics)
        front = self.metrics.snapshot()
        for key in ("rejected", "rejected_overload"):
            merged[key] = int(merged.get(key, 0)) + int(front[key])
        return {
            "event": "stats",
            "metrics": merged,
            "shards": [
                {"shard": index, "metrics": event.get("metrics", {})}
                for index, event in ordered
            ],
        }

    async def _finish_close(self, fan_in: _FanIn) -> None:
        ordered = sorted(fan_in.collected)
        payload = self._merged_closed(ordered)
        if fan_in.writer is not None:
            await self._broadcast(payload)
        if not self._stopping:
            asyncio.create_task(self.stop(drain=False))

    def _merged_closed(self, ordered: list) -> dict:
        """Merge per-shard ``closed`` payloads into one service summary.

        Counters and costs sum exactly; robustness is the task-weighted
        mean of the shard robustness figures; ``end_time`` is the latest
        shard's.  The untouched per-shard payloads ride along under
        ``shards`` for anything that cannot be merged exactly.
        """
        status_counts: dict[str, int] = {}
        tasks = 0.0
        weighted_robustness = 0.0
        total_cost = 0.0
        end_time = 0.0
        snapshots = []
        for _, event in ordered:
            for key, value in event.get("status_counts", {}).items():
                status_counts[key] = status_counts.get(key, 0) + int(value)
            summary = event.get("summary", {})
            shard_tasks = float(summary.get("tasks", 0.0))
            tasks += shard_tasks
            weighted_robustness += shard_tasks * float(
                summary.get("robustness_percent", 0.0)
            )
            total_cost += float(summary.get("total_cost", 0.0))
            end_time = max(end_time, float(summary.get("end_time", 0.0)))
            snapshots.append(event.get("metrics", {}))
        merged_metrics = merge_snapshots(snapshots)
        for key in ("rejected", "rejected_overload"):
            merged_metrics[key] = int(merged_metrics.get(key, 0)) + int(
                self.metrics.snapshot()[key]
            )
        return {
            "event": "closed",
            "summary": {
                "tasks": tasks,
                "robustness_percent": (
                    weighted_robustness / tasks if tasks else float("nan")
                ),
                "total_cost": total_cost,
                "end_time": end_time,
            },
            "status_counts": status_counts,
            "metrics": merged_metrics,
            "shards": [
                {"shard": index, **{k: v for k, v in event.items() if k != "event"}}
                for index, event in ordered
            ],
        }

    async def _shard_failed(self, shard: _Shard, exc: BaseException) -> None:
        self.failure = exc
        print(f"repro.serve: {exc}", file=sys.stderr, flush=True)
        await self._broadcast(
            {"event": "error", "fatal": True, "message": str(exc)}
        )
        if not self._stopping:
            asyncio.create_task(self.stop(drain=False))

    # ------------------------------------------------------------------
    async def _broadcast(self, payload: Mapping) -> None:
        for writer in list(self._writers):
            await self._send(writer, payload)

    async def _send(self, writer: asyncio.StreamWriter, payload: Mapping) -> None:
        if writer not in self._writers:
            return
        try:
            writer.write(encode_line(payload))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            await self._discard_writer(writer)

    async def _discard_writer(self, writer: asyncio.StreamWriter) -> None:
        if writer in self._writers:
            self._writers.discard(writer)
            with suppress(Exception):
                writer.close()
                await writer.wait_closed()
