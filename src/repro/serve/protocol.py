"""JSON-lines wire format and transport endpoints of the scheduler service.

One request or event per line, UTF-8 JSON with a mandatory discriminator:
requests carry ``op`` (``submit``, ``flush``, ``stats``, ``close``), events
carry ``event`` (``accepted``, ``decision``, ``flushed``, ``stats``,
``closed``, ``error``).  The format is line-oriented so any language — or
``socat`` in a terminal — can drive the service.

``accepted`` events carry an explicit ``accepted`` boolean: ``true`` when
the submission entered the admission queue, ``false`` (with a ``reason``,
currently ``"overloaded"``) when backpressure rejected it at the door —
a rejected submission never touches the engine and never produces
decisions.  Decision events from a sharded service additionally carry
``shard`` (which worker decided) and ``shard_seq`` (that worker's own
stream sequence) beside the globally re-sequenced ``seq``.

The same wire format runs over two transports, selected by an *endpoint*
string: a filesystem path or ``unix:PATH`` serves a local Unix socket;
``tcp:HOST:PORT`` serves TCP (``PORT`` ``0`` binds an ephemeral port).
:func:`parse_endpoint` normalises the notation and :func:`open_endpoint`
opens a client connection to either.

Task payloads mirror the recorded-trace schema
(:mod:`repro.workload.traces`): integral ``task_id``/``task_type``/
``arrival``/``deadline``, validated strictly on receipt so a malformed
submission is answered with an ``error`` event instead of corrupting the
live system.
"""

from __future__ import annotations

import asyncio
import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from ..workload.spec import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .service import Decision

__all__ = [
    "decode_line",
    "encode_line",
    "format_endpoint",
    "open_endpoint",
    "parse_endpoint",
    "spec_from_payload",
    "spec_to_payload",
    "decision_to_payload",
]

#: Fields every submitted task must carry (the recorded-trace field set).
_TASK_FIELDS = ("task_id", "task_type", "arrival", "deadline")


# ----------------------------------------------------------------------
# Transport endpoints.
# ----------------------------------------------------------------------
def parse_endpoint(value: str | Path) -> tuple:
    """Normalise an endpoint string into ``("unix", path)`` or
    ``("tcp", host, port)``.

    Accepted notations: a bare filesystem path or ``unix:PATH`` (Unix
    socket), and ``tcp:HOST:PORT`` / ``tcp://HOST:PORT`` (TCP).  An empty
    host defaults to ``127.0.0.1``; port ``0`` is allowed for listeners
    (the OS picks an ephemeral port).
    """
    if isinstance(value, Path):
        return ("unix", str(value))
    text = str(value)
    if text.startswith("tcp:"):
        rest = text[4:]
        if rest.startswith("//"):
            rest = rest[2:]
        host, sep, port_text = rest.rpartition(":")
        if not sep:
            raise ValueError(f"tcp endpoint needs HOST:PORT, got {value!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"tcp endpoint port must be an integer, got {port_text!r}") from None
        if not 0 <= port <= 65535:
            raise ValueError(f"tcp endpoint port out of range: {port}")
        return ("tcp", host or "127.0.0.1", port)
    if text.startswith("unix:"):
        text = text[5:]
    if not text:
        raise ValueError("endpoint must not be empty")
    return ("unix", text)


def format_endpoint(spec: tuple) -> str:
    """The canonical endpoint string for a parsed endpoint tuple."""
    if spec[0] == "unix":
        return spec[1]
    return f"tcp:{spec[1]}:{spec[2]}"


async def open_endpoint(
    value: str | Path,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a client stream to a service endpoint (Unix socket or TCP)."""
    spec = parse_endpoint(value)
    if spec[0] == "tcp":
        return await asyncio.open_connection(spec[1], spec[2])
    return await asyncio.open_unix_connection(spec[1])


def encode_line(payload: Mapping) -> bytes:
    """One wire line: compact JSON plus the newline terminator."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes | str) -> dict:
    """Parse one wire line into a payload dict.

    Raises
    ------
    ValueError
        If the line is not a JSON object.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("wire lines must be JSON objects")
    return payload


def spec_to_payload(spec: TaskSpec) -> dict[str, int]:
    """Serialise one task spec for a ``submit`` request."""
    return {
        "task_id": spec.task_id,
        "task_type": spec.task_type,
        "arrival": spec.arrival,
        "deadline": spec.deadline,
    }


def spec_from_payload(payload: Mapping) -> TaskSpec:
    """Validate and rebuild a submitted task.

    Mirrors the strict recorded-trace loader: every field must be present,
    numeric, finite, and integral, and :class:`TaskSpec` enforces the
    arrival/deadline ordering — errors name the offending field.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("task payload must be an object")
    values: dict[str, int] = {}
    for name in _TASK_FIELDS:
        try:
            raw = payload[name]
        except (KeyError, TypeError):
            raise ValueError(f"task payload is missing field {name!r}") from None
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ValueError(f"task field {name!r} must be a number, got {raw!r}")
        number = float(raw)
        if not math.isfinite(number) or number != int(number):
            raise ValueError(f"task field {name!r} must be an integer, got {raw!r}")
        values[name] = int(number)
    try:
        return TaskSpec(
            arrival=values["arrival"],
            task_id=values["task_id"],
            task_type=values["task_type"],
            deadline=values["deadline"],
        )
    except ValueError as exc:
        raise ValueError(str(exc)) from None


def decision_to_payload(decision: "Decision") -> dict[str, object]:
    """Serialise one streamed decision event."""
    payload: dict[str, object] = {
        "event": "decision",
        "seq": decision.seq,
        "task_id": decision.task_id,
        "action": decision.action,
        "time": decision.time,
        "latency_s": decision.latency_s,
    }
    if decision.machine is not None:
        payload["machine"] = decision.machine
    if decision.reason is not None:
        payload["reason"] = decision.reason
    if decision.on_time is not None:
        payload["on_time"] = decision.on_time
    return payload
