"""JSON-lines wire format of the scheduler service.

One request or event per line, UTF-8 JSON with a mandatory discriminator:
requests carry ``op`` (``submit``, ``flush``, ``stats``, ``close``), events
carry ``event`` (``accepted``, ``decision``, ``flushed``, ``stats``,
``closed``, ``error``).  The format is line-oriented so any language — or
``socat`` in a terminal — can drive the service.

Task payloads mirror the recorded-trace schema
(:mod:`repro.workload.traces`): integral ``task_id``/``task_type``/
``arrival``/``deadline``, validated strictly on receipt so a malformed
submission is answered with an ``error`` event instead of corrupting the
live system.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Mapping

from ..workload.spec import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .service import Decision

__all__ = [
    "decode_line",
    "encode_line",
    "spec_from_payload",
    "spec_to_payload",
    "decision_to_payload",
]

#: Fields every submitted task must carry (the recorded-trace field set).
_TASK_FIELDS = ("task_id", "task_type", "arrival", "deadline")


def encode_line(payload: Mapping) -> bytes:
    """One wire line: compact JSON plus the newline terminator."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes | str) -> dict:
    """Parse one wire line into a payload dict.

    Raises
    ------
    ValueError
        If the line is not a JSON object.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("wire lines must be JSON objects")
    return payload


def spec_to_payload(spec: TaskSpec) -> dict[str, int]:
    """Serialise one task spec for a ``submit`` request."""
    return {
        "task_id": spec.task_id,
        "task_type": spec.task_type,
        "arrival": spec.arrival,
        "deadline": spec.deadline,
    }


def spec_from_payload(payload: Mapping) -> TaskSpec:
    """Validate and rebuild a submitted task.

    Mirrors the strict recorded-trace loader: every field must be present,
    numeric, finite, and integral, and :class:`TaskSpec` enforces the
    arrival/deadline ordering — errors name the offending field.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("task payload must be an object")
    values: dict[str, int] = {}
    for name in _TASK_FIELDS:
        try:
            raw = payload[name]
        except (KeyError, TypeError):
            raise ValueError(f"task payload is missing field {name!r}") from None
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ValueError(f"task field {name!r} must be a number, got {raw!r}")
        number = float(raw)
        if not math.isfinite(number) or number != int(number):
            raise ValueError(f"task field {name!r} must be an integer, got {raw!r}")
        values[name] = int(number)
    try:
        return TaskSpec(
            arrival=values["arrival"],
            task_id=values["task_id"],
            task_type=values["task_type"],
            deadline=values["deadline"],
        )
    except ValueError as exc:
        raise ValueError(str(exc)) from None


def decision_to_payload(decision: "Decision") -> dict[str, object]:
    """Serialise one streamed decision event."""
    payload: dict[str, object] = {
        "event": "decision",
        "seq": decision.seq,
        "task_id": decision.task_id,
        "action": decision.action,
        "time": decision.time,
        "latency_s": decision.latency_s,
    }
    if decision.machine is not None:
        payload["machine"] = decision.machine
    if decision.reason is not None:
        payload["reason"] = decision.reason
    if decision.on_time is not None:
        payload["on_time"] = decision.on_time
    return payload
