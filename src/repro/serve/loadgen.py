"""Load generation against the scheduler service, and the serve bench.

The load generator replays a recorded workload trace against a running
:class:`~repro.serve.service.SchedulerService` at a wall-clock arrival-rate
multiplier: task ``i`` is submitted when ``arrival_i * time_unit / rate``
wall seconds have elapsed.  Virtual time travels *with* the submissions, so
the decision stream is bit-identical at every rate — the multiplier only
controls how hard the admission loop is driven, which is exactly what the
throughput/latency curve measures.

``run_bench`` sweeps several multipliers (a fresh service per rate, same
seed), checks the decision stream against an offline
:meth:`HCSimulator.run` replay of the same trace, and writes the
machine-readable ``BENCH_serve.json`` perf artefact.  The bench drives any
service topology: Unix socket or TCP (``transport=``), one admission core
or N sharded worker processes (``workers=``), and a deliberately tiny
bounded inbox (``inbox_limit=``) to measure the overload rejection curve —
submissions turned away with ``accepted=false`` are counted per rate, and
the equivalence check then compares each shard's stream against an offline
replay of exactly the tasks that were *accepted* into that shard.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Callable, Mapping, Sequence

from ..pet.matrix import PETMatrix
from ..simulator.engine import HCSimulator, SimulatorConfig
from ..workload.generator import WorkloadTrace
from .metrics import LatencyHistogram
from .protocol import decode_line, encode_line, open_endpoint, spec_to_payload
from .service import SchedulerCore, SchedulerService, decision_map, offline_decision_map
from .workers import (
    ShardedSchedulerService,
    build_shard_specs,
    partition_trace,
    shard_seed,
)

__all__ = [
    "BenchReport",
    "RateReport",
    "ReplayOutcome",
    "replay_trace",
    "run_bench",
    "slice_trace",
]

#: Wall seconds one trace time unit spans at rate 1x.  0.01 s/unit puts the
#: 660-task reference trace (≈3000 units) at ~30 s of real time at 1x, 3 s
#: at 10x, and engine-bound at 1000x.
DEFAULT_TIME_UNIT_SECONDS = 0.01


def slice_trace(trace: WorkloadTrace, num_tasks: int | None) -> WorkloadTrace:
    """First ``num_tasks`` arrivals of a trace (the whole trace if ``None``).

    The task-type universe is preserved so the slice still indexes the same
    PET matrix.
    """
    if num_tasks is None or num_tasks >= len(trace):
        return trace
    if num_tasks < 1:
        raise ValueError("a trace slice needs at least one task")
    return WorkloadTrace(
        tuple(trace.tasks[:num_tasks]),
        trace.config,
        num_task_types=trace.num_task_types,
    )


@dataclass(frozen=True)
class ReplayOutcome:
    """Everything one socket replay produced."""

    #: Decision event payloads, in stream order.
    decisions: tuple[dict, ...]
    #: The ``closed`` event payload (``None`` when the replay kept the
    #: service open).
    closed: dict | None
    #: Wall seconds from the first submission to the last received event.
    wall_seconds: float
    #: Tasks submitted.
    submitted: int
    #: Task ids the service turned away with ``accepted=false``
    #: (backpressure under overload); never reached the engine.
    rejected_ids: tuple[int, ...] = ()

    @property
    def rejected(self) -> int:
        return len(self.rejected_ids)


@dataclass(frozen=True)
class RateReport:
    """Throughput/latency measurements at one arrival-rate multiplier."""

    multiplier: float
    tasks: int
    decisions: int
    #: Submissions rejected with ``accepted=false`` (backpressure).
    rejected: int
    wall_seconds: float
    decisions_per_sec: float
    submitted_per_sec: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    drop_rate: float
    robustness_percent: float

    def to_payload(self) -> dict[str, float]:
        return {
            "multiplier": self.multiplier,
            "tasks": self.tasks,
            "decisions": self.decisions,
            "rejected": self.rejected,
            "wall_seconds": round(self.wall_seconds, 6),
            "decisions_per_sec": round(self.decisions_per_sec, 3),
            "submitted_per_sec": round(self.submitted_per_sec, 3),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "max_ms": round(self.max_ms, 4),
            "drop_rate": round(self.drop_rate, 6),
            "robustness_percent": round(self.robustness_percent, 6),
        }


@dataclass(frozen=True)
class BenchReport:
    """One full serve bench: several rates over one trace."""

    trace_tasks: int
    heuristic: str
    pet_kind: str
    seed: int
    time_unit_seconds: float
    rates: tuple[RateReport, ...]
    #: ``True`` when every rate's decision stream matched the offline
    #: replay; ``None`` when the check was skipped.
    equivalent_to_offline: bool | None
    #: ``unix`` or ``tcp`` — the transport the bench drove.
    transport: str = "unix"
    #: Engine-worker processes behind the front-end (1 = single-process).
    workers: int = 1

    def to_payload(self) -> dict[str, object]:
        return {
            "schema": 1,
            "benchmark": "repro.serve",
            "trace_tasks": self.trace_tasks,
            "heuristic": self.heuristic,
            "pet": self.pet_kind,
            "seed": self.seed,
            "time_unit_seconds": self.time_unit_seconds,
            "transport": self.transport,
            "workers": self.workers,
            "equivalent_to_offline": self.equivalent_to_offline,
            "rates": [rate.to_payload() for rate in self.rates],
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_payload(), indent=2) + "\n")
        return path


async def replay_trace(
    endpoint: str | Path,
    trace: WorkloadTrace,
    *,
    rate: float = 10.0,
    time_unit_seconds: float = DEFAULT_TIME_UNIT_SECONDS,
    close: bool = True,
    progress: Callable[[str], None] | None = None,
) -> ReplayOutcome:
    """Replay a trace into a running service at ``rate``x arrival speed.

    ``endpoint`` is a Unix-socket path or a ``tcp:HOST:PORT`` string (any
    notation :func:`~repro.serve.protocol.parse_endpoint` accepts).
    Submissions are paced on the wall clock (task ``i`` goes out once
    ``arrival_i * time_unit_seconds / rate`` seconds have elapsed) and the
    decision stream is collected concurrently.  With ``close=True`` the
    replay finishes the run (drain + finalise) and returns the ``closed``
    summary; otherwise it ends with a ``flush`` so the service stays open.
    Submissions the service turns away with ``accepted=false``
    (backpressure) are recorded in :attr:`ReplayOutcome.rejected_ids`, not
    treated as errors.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if time_unit_seconds <= 0:
        raise ValueError("time_unit_seconds must be positive")
    reader, writer = await open_endpoint(endpoint)
    decisions: list[dict] = []
    rejected_ids: list[int] = []
    closed_payload: dict | None = None
    errors: list[str] = []
    finished = asyncio.Event()
    last_event_wall = time.perf_counter()

    async def collect() -> None:
        nonlocal closed_payload, last_event_wall
        while True:
            line = await reader.readline()
            if not line:
                break
            event = decode_line(line)
            last_event_wall = time.perf_counter()
            kind = event.get("event")
            if kind == "decision":
                decisions.append(event)
            elif kind == "accepted" and event.get("accepted") is False:
                rejected_ids.append(int(event.get("task_id", -1)))
            elif kind == "error":
                errors.append(str(event.get("message")))
            elif kind == "closed":
                closed_payload = event
                break
            elif kind == "flushed" and not close:
                break
        finished.set()

    collector = asyncio.create_task(collect(), name="repro-serve-collect")
    start = time.perf_counter()
    submitted = 0
    try:
        for spec in trace:
            target = start + spec.arrival * time_unit_seconds / rate
            delay = target - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            writer.write(encode_line({"op": "submit", "task": spec_to_payload(spec)}))
            await writer.drain()
            submitted += 1
            if progress is not None and submitted % 100 == 0:
                progress(f"submitted {submitted}/{len(trace)} tasks")
        writer.write(encode_line({"op": "close" if close else "flush"}))
        await writer.drain()
        await finished.wait()
    finally:
        collector.cancel()
        with_suppress_cancel = asyncio.gather(collector, return_exceptions=True)
        await with_suppress_cancel
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    if errors:
        raise RuntimeError(f"service reported {len(errors)} error(s); first: {errors[0]}")
    wall_seconds = max(last_event_wall - start, 1e-9)
    return ReplayOutcome(
        decisions=tuple(decisions),
        closed=closed_payload,
        wall_seconds=wall_seconds,
        submitted=submitted,
        rejected_ids=tuple(rejected_ids),
    )


def _rate_report(multiplier: float, outcome: ReplayOutcome) -> RateReport:
    """Distil one replay into the bench's throughput/latency row."""
    latencies = LatencyHistogram()
    first_seen: set[int] = set()
    for event in outcome.decisions:
        task_id = int(event["task_id"])
        if task_id not in first_seen:
            first_seen.add(task_id)
            latencies.record(float(event["latency_s"]))
    final = decision_map(outcome.decisions)
    dropped = sum(1 for _, status, _, _ in final.values() if status == "dropped")
    robustness = float("nan")
    if outcome.closed is not None:
        robustness = float(outcome.closed["summary"]["robustness_percent"])
    summary = latencies.summary()
    accepted = outcome.submitted - outcome.rejected
    return RateReport(
        multiplier=multiplier,
        tasks=outcome.submitted,
        decisions=len(outcome.decisions),
        rejected=outcome.rejected,
        wall_seconds=outcome.wall_seconds,
        decisions_per_sec=len(outcome.decisions) / outcome.wall_seconds,
        submitted_per_sec=outcome.submitted / outcome.wall_seconds,
        p50_ms=summary["p50_s"] * 1e3,
        p95_ms=summary["p95_s"] * 1e3,
        p99_ms=summary["p99_s"] * 1e3,
        max_ms=summary["max_s"] * 1e3,
        drop_rate=dropped / accepted if accepted else 0.0,
        robustness_percent=robustness,
    )


def _offline_shard_maps(
    pet: PETMatrix,
    heuristic_factory: Callable[[], object],
    trace: WorkloadTrace,
    *,
    seed: int,
    workers: int,
    sim_config: SimulatorConfig | None,
    rejected: frozenset[int] = frozenset(),
) -> dict[int | None, dict]:
    """Expected decision maps for the *accepted* subset of a trace.

    With one worker the key is ``None`` (the whole stream); with N workers
    the keys are shard indices and each map is the offline replay of exactly
    that shard's accepted task subsequence, seeded with :func:`shard_seed` —
    the per-shard replay-equivalence contract.
    """
    if workers == 1:
        specs = [spec for spec in trace if spec.task_id not in rejected]
        sim = HCSimulator(pet, heuristic_factory(), config=sim_config, rng=seed)
        return {None: offline_decision_map(sim.run(specs))}
    maps: dict[int | None, dict] = {}
    for shard, shard_tasks in enumerate(partition_trace(trace, workers)):
        specs = [spec for spec in shard_tasks if spec.task_id not in rejected]
        sim = HCSimulator(
            pet, heuristic_factory(), config=sim_config, rng=shard_seed(seed, shard)
        )
        maps[shard] = offline_decision_map(sim.run(specs)) if specs else {}
    return maps


def _check_outcome_offline(
    outcome: ReplayOutcome, expected: Mapping, *, multiplier: float
) -> None:
    """Raise ``RuntimeError`` if any (shard) stream diverged from offline."""
    for shard, offline_map in expected.items():
        if shard is None:
            streamed = decision_map(outcome.decisions)
            label = "the offline replay"
        else:
            streamed = decision_map(
                [e for e in outcome.decisions if e.get("shard") == shard]
            )
            label = f"shard {shard}'s offline replay"
        if streamed != offline_map:
            diff = _first_difference(streamed, offline_map)
            raise RuntimeError(
                f"decision stream at {multiplier:g}x diverged from {label}: {diff}"
            )


def run_bench(
    pet: PETMatrix,
    heuristic_factory: Callable[[], object],
    trace: WorkloadTrace,
    *,
    heuristic_name: str,
    pet_kind: str,
    seed: int,
    rates: Sequence[float] = (10.0, 100.0, 1000.0),
    time_unit_seconds: float = DEFAULT_TIME_UNIT_SECONDS,
    sim_config: SimulatorConfig | None = None,
    check_offline: bool = True,
    transport: str = "unix",
    workers: int = 1,
    inbox_limit: int | None = None,
    out_path: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> BenchReport:
    """Measure the service's throughput/latency curve over ``rates``.

    Each multiplier gets a fresh service seeded identically, so the decision
    streams must agree across rates *and* (with ``check_offline``) with a
    batch :meth:`HCSimulator.run` — the bench doubles as the
    replay-equivalence harness.  A mismatch raises ``RuntimeError``.

    ``transport`` selects the client-facing socket (``"unix"`` or
    ``"tcp"``), ``workers`` the number of sharded engine processes (1 keeps
    the single-process service), and ``inbox_limit`` shrinks the admission
    queue (front-end in-flight cap when sharded) to provoke measurable
    backpressure — each rate row then records how many submissions were
    turned away with ``accepted=false``, and the equivalence check replays
    only the accepted subset offline (per shard when sharded).
    """
    if not rates:
        raise ValueError("at least one rate multiplier is required")
    if transport not in ("unix", "tcp"):
        raise ValueError(f"transport must be 'unix' or 'tcp', got {transport!r}")
    if workers < 1:
        raise ValueError("workers must be at least 1")
    say = progress if progress is not None else (lambda message: None)
    baseline: dict[int | None, dict] | None = None
    if check_offline:
        baseline = _offline_shard_maps(
            pet,
            heuristic_factory,
            trace,
            seed=seed,
            workers=workers,
            sim_config=sim_config,
        )
        recorded = sum(len(m) for m in baseline.values())
        say(f"offline replay: {recorded} task outcomes recorded")

    reports: list[RateReport] = []
    equivalent: bool | None = None if baseline is None else True
    for multiplier in rates:
        say(f"rate {multiplier:g}x: replaying {len(trace)} tasks")
        outcome = asyncio.run(
            _bench_one_rate(
                pet,
                heuristic_factory,
                trace,
                seed=seed,
                rate=float(multiplier),
                time_unit_seconds=time_unit_seconds,
                sim_config=sim_config,
                heuristic_name=heuristic_name,
                transport=transport,
                workers=workers,
                inbox_limit=inbox_limit,
            )
        )
        if baseline is not None:
            expected = baseline
            if outcome.rejected_ids:
                say(
                    f"rate {multiplier:g}x: {outcome.rejected} rejected under "
                    "backpressure; re-deriving the offline baseline for the "
                    "accepted subset"
                )
                expected = _offline_shard_maps(
                    pet,
                    heuristic_factory,
                    trace,
                    seed=seed,
                    workers=workers,
                    sim_config=sim_config,
                    rejected=frozenset(outcome.rejected_ids),
                )
            _check_outcome_offline(outcome, expected, multiplier=float(multiplier))
        reports.append(_rate_report(float(multiplier), outcome))
    report = BenchReport(
        trace_tasks=len(trace),
        heuristic=heuristic_name,
        pet_kind=pet_kind,
        seed=seed,
        time_unit_seconds=time_unit_seconds,
        rates=tuple(reports),
        equivalent_to_offline=equivalent,
        transport=transport,
        workers=workers,
    )
    if out_path is not None:
        report.write(out_path)
    return report


async def _bench_one_rate(
    pet: PETMatrix,
    heuristic_factory: Callable[[], object],
    trace: WorkloadTrace,
    *,
    seed: int,
    rate: float,
    time_unit_seconds: float,
    sim_config: SimulatorConfig | None,
    heuristic_name: str | None = None,
    transport: str = "unix",
    workers: int = 1,
    inbox_limit: int | None = None,
) -> ReplayOutcome:
    """One fresh service + one replay, torn down cleanly even on interrupt."""
    with TemporaryDirectory(prefix="repro-serve-") as scratch:
        if transport == "tcp":
            listen: str | Path = "tcp:127.0.0.1:0"
        else:
            listen = Path(scratch) / "serve.sock"
        if workers > 1:
            if heuristic_name is None:
                raise ValueError("a sharded bench needs heuristic_name (registry name)")
            # The front-end's in-flight cap is the binding limit; size the
            # worker inboxes above it so worker-side rejections (which would
            # complicate correlation) cannot trigger first.
            front_cap = 256 if inbox_limit is None else inbox_limit
            shard_specs = build_shard_specs(
                pet,
                heuristic_name,
                workers=workers,
                seed=seed,
                sim_config=sim_config,
                inbox_limit=max(4 * front_cap, 1024),
            )
            service: SchedulerService | ShardedSchedulerService = (
                ShardedSchedulerService(shard_specs, listen, max_inflight=front_cap)
            )
        else:
            core = SchedulerCore(pet, heuristic_factory(), config=sim_config, rng=seed)
            kwargs = {} if inbox_limit is None else {"inbox_limit": inbox_limit}
            service = SchedulerService(core, listen, **kwargs)
        await service.start()
        try:
            return await replay_trace(
                service.endpoint,
                trace,
                rate=rate,
                time_unit_seconds=time_unit_seconds,
                close=True,
            )
        finally:
            await service.stop(drain=False)


def _first_difference(streamed: dict, offline: dict) -> str:
    """Human-readable first divergence between two decision maps."""
    for task_id in sorted(set(streamed) | set(offline)):
        left, right = streamed.get(task_id), offline.get(task_id)
        if left != right:
            return f"task {task_id}: streamed {left!r} vs offline {right!r}"
    return "maps have equal entries but compare unequal"
