"""Counters and latency histograms for the scheduler service.

:class:`ServiceMetrics` is deliberately dependency-free and synchronous —
the admission loop updates it inline, and ``stats`` requests serialise a
snapshot.  The latency histogram is the shared bounded log-bucketed schema
from :mod:`repro.obs.histogram`: **fixed memory however long the service
lives** (the pre-obs implementation kept every recorded sample, which grew
without bound on a long-lived service), exact count/mean/max, and pinned
upper-bound quantile semantics (nearest rank over the log buckets, clamped
to the exact max — see :class:`~repro.obs.histogram.LogBucketHistogram`).

Because the buckets are fixed, per-shard snapshots **merge exactly**:
:func:`merge_snapshots` sums bucket counts across shards and reads the
percentiles off the merged histogram, instead of the conservative
worst-shard upper bound it falls back to for histogram-less (legacy)
snapshots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..obs.histogram import LogBucketHistogram

__all__ = ["LatencyHistogram", "ServiceMetrics", "merge_snapshots"]


class LatencyHistogram(LogBucketHistogram):
    """Admission-latency histogram: bounded log buckets over 1 µs .. 1000 s.

    The summary keys (``count``/``mean_s``/``p50_s``/``p95_s``/``p99_s``/
    ``max_s``) are unchanged from the exact-sample implementation; the
    percentile read-out is now the pinned bucket-upper-edge quantile
    (within one bucket's ~15.5% relative width of the true value) instead
    of an exact order statistic — the price of bounded memory.
    """

    def __init__(self) -> None:
        super().__init__(lo=1e-6, hi=1e3, buckets_per_decade=16)

    def record(self, seconds: float) -> None:
        if seconds < 0 or not math.isfinite(seconds):
            raise ValueError(
                f"latency must be finite and non-negative, got {seconds!r}"
            )
        super().record(float(seconds))


@dataclass
class ServiceMetrics:
    """Aggregate counters and histograms of one scheduler-service lifetime."""

    submitted: int = 0
    rejected: int = 0
    #: Submissions turned away at the door by backpressure (bounded inbox
    #: full, or a sharded front-end at its in-flight cap) — these never
    #: reach the engine and are answered ``accepted=false``.
    rejected_overload: int = 0
    assigned: int = 0
    completed: int = 0
    dropped: int = 0
    decisions: int = 0
    mapping_events: int = 0
    #: Wall seconds from a task's submission to its *first* decision
    #: (assignment or terminal event), the service's admission latency.
    admission: LatencyHistogram = field(default_factory=LatencyHistogram)

    def snapshot(self) -> dict[str, object]:
        """JSON-serialisable copy of every counter plus latency summary.

        ``admission_latency`` carries the headline summary keys plus the
        full bucket payload under ``"hist"`` so downstream consumers
        (:func:`merge_snapshots`, the sharded ``stats`` fan-in) can merge
        percentiles exactly.
        """
        latency: dict[str, object] = dict(self.admission.summary())
        latency["hist"] = self.admission.to_payload()
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "rejected_overload": self.rejected_overload,
            "assigned": self.assigned,
            "completed": self.completed,
            "dropped": self.dropped,
            "decisions": self.decisions,
            "mapping_events": self.mapping_events,
            "admission_latency": latency,
        }


#: Counter keys of a :meth:`ServiceMetrics.snapshot` that sum across shards.
_COUNTER_KEYS = (
    "submitted",
    "rejected",
    "rejected_overload",
    "assigned",
    "completed",
    "dropped",
    "decisions",
    "mapping_events",
)


def _zero_latency_summary() -> dict[str, float]:
    nan = float("nan")
    return {"count": 0, "mean_s": nan, "p50_s": nan, "p95_s": nan,
            "p99_s": nan, "max_s": nan}


def merge_snapshots(snapshots: Sequence[Mapping]) -> dict[str, object]:
    """Aggregate per-shard metric snapshots into one service-wide view.

    Counters sum exactly; a shard missing a counter key contributes zero.
    An empty snapshot list (or one whose shards never produced metrics)
    yields a well-formed zero snapshot instead of skewing any figure.

    Admission latency merges **exactly** when every contributing shard
    snapshot carries the histogram payload (``admission_latency.hist``
    with an identical bucket layout — always true for same-version
    shards): bucket counts sum and the merged percentiles are read off
    the combined histogram.  Snapshots without the payload (legacy, or a
    foreign layout) fall back to the conservative merge — count-weighted
    mean, worst-shard percentiles/max as an upper bound on the truth.
    Shards with zero recorded latencies are identities in either mode: a
    fresh shard can no longer skew the merged percentiles.
    """
    merged: dict[str, object] = {key: 0 for key in _COUNTER_KEYS}
    contributing: list[Mapping] = []
    for snapshot in snapshots:
        if not isinstance(snapshot, Mapping):
            continue
        for key in _COUNTER_KEYS:
            try:
                merged[key] += int(snapshot.get(key, 0) or 0)
            except (TypeError, ValueError):
                continue
        latency = snapshot.get("admission_latency")
        if isinstance(latency, Mapping) and int(latency.get("count", 0) or 0) > 0:
            contributing.append(latency)

    if not contributing:
        merged["admission_latency"] = _zero_latency_summary()
        return merged

    merged_hist = _merge_latency_hists(contributing)
    if merged_hist is not None:
        latency_out: dict[str, object] = dict(merged_hist.summary())
        latency_out["hist"] = merged_hist.to_payload()
        merged["admission_latency"] = latency_out
        return merged

    # Conservative fallback: exact count and count-weighted mean, worst
    # shard's percentiles and max (an upper bound on the merged truth).
    total_count = 0
    weighted_mean = 0.0
    worst = {"p50_s": float("nan"), "p95_s": float("nan"),
             "p99_s": float("nan"), "max_s": float("nan")}
    for latency in contributing:
        count = int(latency.get("count", 0) or 0)
        total_count += count
        mean = float(latency.get("mean_s", float("nan")))
        if math.isfinite(mean):
            weighted_mean += count * mean
        for key in worst:
            value = float(latency.get(key, float("nan")))
            if math.isfinite(value) and not (value <= worst[key]):
                worst[key] = value
    merged["admission_latency"] = {
        "count": total_count,
        "mean_s": weighted_mean / total_count if total_count else float("nan"),
        **worst,
    }
    return merged


def _merge_latency_hists(
    latencies: Sequence[Mapping],
) -> LogBucketHistogram | None:
    """Exactly-merged histogram, or ``None`` if any shard lacks a usable one."""
    merged: LogBucketHistogram | None = None
    for latency in latencies:
        payload = latency.get("hist")
        if not isinstance(payload, Mapping):
            return None
        try:
            hist = LogBucketHistogram.from_payload(dict(payload))
        except (KeyError, TypeError, ValueError):
            return None
        if merged is None:
            merged = hist
        elif merged.compatible_with(hist):
            merged.merge(hist)
        else:
            return None
    return merged
