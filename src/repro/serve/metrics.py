"""Counters and latency histograms for the scheduler service.

:class:`ServiceMetrics` is deliberately dependency-free and synchronous —
the admission loop updates it inline, and ``stats`` requests serialise a
snapshot.  The latency histogram keeps every recorded sample (admission
volumes are task-scale, not packet-scale) so percentiles are exact, plus
log-spaced bucket counts for a compact rendered distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["LatencyHistogram", "ServiceMetrics", "merge_snapshots"]

#: Upper edges (seconds) of the rendered log-spaced buckets: 0.1 ms .. 100 s.
_BUCKET_EDGES = tuple(10.0 ** (exp / 2.0) for exp in range(-8, 5))


@dataclass
class LatencyHistogram:
    """Latency samples with exact percentiles and log-bucket counts."""

    samples: list[float] = field(default_factory=list)
    buckets: dict[float, int] = field(default_factory=dict)

    def record(self, seconds: float) -> None:
        if seconds < 0 or not math.isfinite(seconds):
            raise ValueError(f"latency must be finite and non-negative, got {seconds!r}")
        self.samples.append(float(seconds))
        for edge in _BUCKET_EDGES:
            if seconds <= edge:
                self.buckets[edge] = self.buckets.get(edge, 0) + 1
                break
        else:
            self.buckets[math.inf] = self.buckets.get(math.inf, 0) + 1

    def __len__(self) -> int:
        return len(self.samples)

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (nearest-rank); ``nan`` with no samples."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        """Headline latency figures in seconds (nan-valued when empty)."""
        if not self.samples:
            nan = float("nan")
            return {"count": 0, "mean_s": nan, "p50_s": nan, "p95_s": nan, "p99_s": nan, "max_s": nan}
        return {
            "count": len(self.samples),
            "mean_s": sum(self.samples) / len(self.samples),
            "p50_s": self.percentile(50.0),
            "p95_s": self.percentile(95.0),
            "p99_s": self.percentile(99.0),
            "max_s": max(self.samples),
        }


@dataclass
class ServiceMetrics:
    """Aggregate counters and histograms of one scheduler-service lifetime."""

    submitted: int = 0
    rejected: int = 0
    #: Submissions turned away at the door by backpressure (bounded inbox
    #: full, or a sharded front-end at its in-flight cap) — these never
    #: reach the engine and are answered ``accepted=false``.
    rejected_overload: int = 0
    assigned: int = 0
    completed: int = 0
    dropped: int = 0
    decisions: int = 0
    mapping_events: int = 0
    #: Wall seconds from a task's submission to its *first* decision
    #: (assignment or terminal event), the service's admission latency.
    admission: LatencyHistogram = field(default_factory=LatencyHistogram)

    def snapshot(self) -> dict[str, object]:
        """JSON-serialisable copy of every counter plus latency summary."""
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "rejected_overload": self.rejected_overload,
            "assigned": self.assigned,
            "completed": self.completed,
            "dropped": self.dropped,
            "decisions": self.decisions,
            "mapping_events": self.mapping_events,
            "admission_latency": self.admission.summary(),
        }


#: Counter keys of a :meth:`ServiceMetrics.snapshot` that sum across shards.
_COUNTER_KEYS = (
    "submitted",
    "rejected",
    "rejected_overload",
    "assigned",
    "completed",
    "dropped",
    "decisions",
    "mapping_events",
)


def merge_snapshots(snapshots: Sequence[Mapping]) -> dict[str, object]:
    """Aggregate per-shard metric snapshots into one service-wide view.

    Counters sum exactly.  Admission-latency percentiles cannot be merged
    exactly from summaries, so the merged figures are *conservative*: the
    count sums, the mean is count-weighted, and each percentile (and the
    max) is the worst shard's value — an upper bound on the true merged
    percentile.
    """
    merged: dict[str, object] = {key: 0 for key in _COUNTER_KEYS}
    total_count = 0
    weighted_mean = 0.0
    worst: dict[str, float] = {"p50_s": float("nan"), "p95_s": float("nan"), "p99_s": float("nan"), "max_s": float("nan")}
    for snapshot in snapshots:
        for key in _COUNTER_KEYS:
            merged[key] += int(snapshot.get(key, 0))
        latency = snapshot.get("admission_latency", {})
        count = int(latency.get("count", 0))
        if count > 0:
            total_count += count
            weighted_mean += count * float(latency.get("mean_s", 0.0))
            for key in worst:
                value = float(latency.get(key, float("nan")))
                if math.isnan(worst[key]) or value > worst[key]:
                    worst[key] = value
    nan = float("nan")
    merged["admission_latency"] = {
        "count": total_count,
        "mean_s": weighted_mean / total_count if total_count else nan,
        **worst,
    }
    return merged
