"""The online scheduler service: admission core plus asyncio socket server.

Two layers, deliberately separable:

:class:`SchedulerCore`
    Synchronous, externally-clocked admission engine.  ``submit()`` is the
    in-process API: it advances the simulator's virtual clock to the
    submission watermark, injects the task, and returns every decision the
    engine produced on the way.  Virtual time comes from the submissions
    themselves (each carries its arrival instant), so wall-clock pacing
    never influences decisions — the property the replay-equivalence suite
    pins: streaming a trace in arrival order yields decisions bit-identical
    to an offline :meth:`HCSimulator.run` of the same trace.

:class:`SchedulerService`
    The asyncio layer: a JSON-lines server (Unix socket or TCP, same wire
    protocol) whose single admission loop serialises all client submissions
    into the core and streams decision events back to every connected
    client.  The inbox between the client handlers and the admission loop
    is *bounded*: when it is full, further submissions are answered with an
    explicit ``{"event": "accepted", "accepted": false}`` rejection instead
    of queueing without limit — overload degrades into a measured rejection
    rate, not unbounded memory growth.  Graceful shutdown drains in-flight
    submissions, closes the socket, and leaves no orphaned tasks.

Watermark semantics: when a submission carries arrival time ``t`` the core
first processes every pending event *strictly before* ``t``, then holds the
time-``t`` batch open — later submissions with the same arrival instant
still join the same mapping event, exactly as they would in batch replay.
``flush()`` force-processes the held instant; ``close()`` drains everything
and finalises the run.

Rejections (duplicate id, late arrival, malformed payload, overload) leave
the live system untouched: a submission is validated *before* the virtual
clock advances on its behalf, so a rejected submit changes neither the
engine frontier nor the decision stream.
"""

from __future__ import annotations

import asyncio
import sys
import time
import traceback
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..obs.export import snapshot as obs_snapshot
from ..obs.telemetry import active as obs_active
from ..pet.matrix import PETMatrix
from ..simulator.engine import HCSimulator, MappingHeuristicProtocol, SimulatorConfig
from ..simulator.mapping import MappingDecision
from ..simulator.metrics import SimulationResult
from ..simulator.task import Task, TaskStatus
from ..workload.spec import TaskSpec
from .metrics import ServiceMetrics
from .protocol import (
    decision_to_payload,
    decode_line,
    encode_line,
    format_endpoint,
    parse_endpoint,
    spec_from_payload,
)

__all__ = [
    "Decision",
    "SchedulerCore",
    "SchedulerService",
    "decision_map",
    "offline_decision_map",
]


@dataclass(frozen=True)
class Decision:
    """One streamed decision event concerning one task."""

    #: Monotone per-service sequence number (stream order).
    seq: int
    task_id: int
    #: ``assigned`` | ``completed`` | ``dropped``.
    action: str
    #: Virtual (trace) time the decision happened at.
    time: int
    #: Wall seconds from the task's submission to this event.
    latency_s: float
    #: Machine index, for ``assigned`` events.
    machine: int | None = None
    #: Drop reason, for ``dropped`` events.
    reason: str | None = None
    #: Deadline outcome, for ``completed`` events.
    on_time: bool | None = None


class SchedulerCore:
    """Synchronous admission engine over a streaming :class:`HCSimulator`."""

    def __init__(
        self,
        pet: PETMatrix,
        heuristic: MappingHeuristicProtocol,
        *,
        config: SimulatorConfig | None = None,
        machine_prices: Sequence[float] | None = None,
        rng: np.random.Generator | int | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._sim = HCSimulator(
            pet, heuristic, config=config, machine_prices=machine_prices, rng=rng
        )
        self._sim.observer = self
        self._clock = clock
        self.metrics = ServiceMetrics()
        self._pending: list[Decision] = []
        self._submit_wall: dict[int, float] = {}
        self._first_decided: set[int] = set()
        self._watermark: int | None = None
        self._seq = 0
        self._closed = False
        self._result: SimulationResult | None = None
        self._sim.begin_stream()

    # ------------------------------------------------------------------
    # Admission API (the in-process ``submit()`` surface).
    # ------------------------------------------------------------------
    def submit(self, spec: TaskSpec, *, received: float | None = None) -> list[Decision]:
        """Admit one task; returns the decisions its arrival unlocked.

        ``received`` is the wall instant the submission entered the service
        (defaults to now) — the anchor of the task's admission latency.

        Raises
        ------
        RuntimeError
            If the service is already closed.
        ValueError
            If the task duplicates an id or arrives before the processed
            virtual-time frontier (a "late" submission).  Rejections are
            counted in :attr:`metrics` and leave the live system untouched:
            validation happens before the virtual clock advances, so a
            rejected submit changes neither the engine frontier nor the
            decision stream.
        """
        if self._closed:
            raise RuntimeError("the scheduler service is closed")
        received = self._clock() if received is None else received
        obs = obs_active()
        if obs.enabled:
            start_ns = time.perf_counter_ns()
        # Validate *before* the virtual clock moves: a rejected submission
        # (duplicate id, late arrival) must not advance the frontier or fire
        # mapping events on its way out — rejections leave the live system
        # untouched.
        try:
            self._sim.validate_inject(spec)
        except ValueError:
            self.metrics.rejected += 1
            obs.count("serve.rejected")
            raise
        if self._watermark is not None and spec.arrival > self._watermark:
            # A later instant: every pending event before it is now safe to
            # process — no future submission may precede this arrival.
            self._sim.advance_until(spec.arrival)
        self._sim.inject_task(spec)
        self._submit_wall[spec.task_id] = received
        if self._watermark is None or spec.arrival > self._watermark:
            self._watermark = spec.arrival
        self.metrics.submitted += 1
        decisions = self.take_pending()
        if obs.enabled:
            obs.add_span(
                "serve.admission",
                start_ns,
                time.perf_counter_ns() - start_ns,
                task=spec.task_id,
                decisions=len(decisions),
            )
            obs.count("serve.submitted")
        return decisions

    def flush(self) -> list[Decision]:
        """Force-process the held watermark instant (end-of-burst)."""
        if self._closed:
            raise RuntimeError("the scheduler service is closed")
        if self._watermark is not None:
            self._sim.advance_until(self._watermark + 1)
        return self.take_pending()

    def close(self) -> list[Decision]:
        """Drain all remaining virtual time and finalise the run."""
        if self._closed:
            raise RuntimeError("the scheduler service is closed")
        self._result = self._sim.finish_stream()
        self._closed = True
        return self.take_pending()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def result(self) -> SimulationResult:
        """The finalised run; only available after :meth:`close`."""
        if self._result is None:
            raise RuntimeError("close() the service before reading its result")
        return self._result

    # ------------------------------------------------------------------
    # EngineObserver callbacks (the decision stream's source).
    # ------------------------------------------------------------------
    def on_assigned(self, task: Task, machine_index: int, now: int) -> None:
        self.metrics.assigned += 1
        self._emit(task.task_id, "assigned", time=now, machine=machine_index)

    def on_terminal(self, task: Task) -> None:
        if task.status is TaskStatus.COMPLETED:
            self.metrics.completed += 1
            self._emit(
                task.task_id,
                "completed",
                time=int(task.exec_end if task.exec_end is not None else 0),
                on_time=task.on_time,
            )
        else:
            self.metrics.dropped += 1
            self._emit(
                task.task_id,
                "dropped",
                time=int(task.dropped_at if task.dropped_at is not None else 0),
                reason=task.drop_reason.value if task.drop_reason is not None else None,
            )
        # Terminal means no further event can concern this task: prune its
        # per-task bookkeeping so a long-lived service stays O(in-flight
        # tasks), not O(all tasks ever submitted).
        self._submit_wall.pop(task.task_id, None)
        self._first_decided.discard(task.task_id)

    def on_mapping_event(self, now: int, decision: MappingDecision) -> None:
        self.metrics.mapping_events += 1

    # ------------------------------------------------------------------
    def _emit(
        self,
        task_id: int,
        action: str,
        *,
        time: int,
        machine: int | None = None,
        reason: str | None = None,
        on_time: bool | None = None,
    ) -> None:
        wall = self._clock()
        received = self._submit_wall.get(task_id)
        latency = max(0.0, wall - received) if received is not None else 0.0
        if task_id not in self._first_decided:
            self._first_decided.add(task_id)
            self.metrics.admission.record(latency)
        self.metrics.decisions += 1
        self._pending.append(
            Decision(
                seq=self._seq,
                task_id=task_id,
                action=action,
                time=time,
                latency_s=latency,
                machine=machine,
                reason=reason,
                on_time=on_time,
            )
        )
        self._seq += 1

    def take_pending(self) -> list[Decision]:
        """Drain decisions emitted since the last drain.

        ``submit``/``flush``/``close`` drain on the way out, so this is
        normally empty — it exists for error paths: any layer that catches
        an exception from the core must still collect (and broadcast) the
        decisions produced before the failure, or they would be stranded
        and misattributed to the next unrelated request.
        """
        drained, self._pending = self._pending, []
        return drained


# ----------------------------------------------------------------------
# Replay-equivalence views.
# ----------------------------------------------------------------------
def decision_map(
    decisions: Iterable[Decision | Mapping],
) -> dict[int, tuple[int | None, str, str | None, bool]]:
    """Final per-task outcome of a decision stream.

    Accepts :class:`Decision` objects or their wire payloads.  The value is
    ``(machine, status, drop_reason, on_time)`` — exactly the fields
    :func:`offline_decision_map` extracts from a batch
    :class:`~repro.simulator.metrics.SimulationResult`, so equality between
    the two maps is the service's replay-equivalence criterion.
    """
    final: dict[int, dict] = {}
    for item in decisions:
        if isinstance(item, Decision):
            fields = {
                "task_id": item.task_id,
                "action": item.action,
                "machine": item.machine,
                "reason": item.reason,
                "on_time": item.on_time,
            }
        else:
            if item.get("event", "decision") != "decision":
                continue
            fields = {
                "task_id": item["task_id"],
                "action": item["action"],
                "machine": item.get("machine"),
                "reason": item.get("reason"),
                "on_time": item.get("on_time"),
            }
        entry = final.setdefault(
            int(fields["task_id"]),
            {"machine": None, "status": None, "reason": None, "on_time": False},
        )
        if fields["action"] == "assigned":
            entry["machine"] = int(fields["machine"])
        elif fields["action"] == "completed":
            entry["status"] = TaskStatus.COMPLETED.value
            entry["on_time"] = bool(fields["on_time"])
        elif fields["action"] == "dropped":
            entry["status"] = TaskStatus.DROPPED.value
            entry["reason"] = fields["reason"]
    return {
        task_id: (e["machine"], e["status"], e["reason"], e["on_time"])
        for task_id, e in final.items()
    }


def offline_decision_map(
    result: SimulationResult,
) -> dict[int, tuple[int | None, str, str | None, bool]]:
    """The same per-task outcome view, from a batch simulation result."""
    return {
        task.task_id: (
            task.machine,
            task.status.value,
            task.drop_reason.value if task.drop_reason is not None else None,
            task.on_time,
        )
        for task in result.tasks
    }


# ----------------------------------------------------------------------
# The asyncio socket service.
# ----------------------------------------------------------------------
class SchedulerService:
    """JSON-lines admission service over a Unix socket or TCP.

    One admission loop owns the core: submissions from every connection are
    funnelled through a *bounded* :class:`asyncio.Queue`, processed in
    arrival order, and the resulting decision events are broadcast to every
    connected client.  When the inbox is full a further ``submit`` is
    answered with ``{"event": "accepted", "accepted": false, "reason":
    "overloaded"}`` and never enqueued — backpressure keeps the service's
    memory bounded under overload (control ops still queue, applying
    natural flow control to their connection).  ``stop()`` drains in-flight
    submissions first (bounded by ``drain_grace`` seconds), then closes the
    socket and removes its path — no orphaned asyncio task survives it.

    ``listen`` accepts a filesystem path / ``unix:PATH`` (Unix socket) or
    ``tcp:HOST:PORT`` (TCP; port ``0`` binds an ephemeral port, read the
    bound address back from :attr:`endpoint` after :meth:`start`).
    """

    def __init__(
        self,
        core: SchedulerCore,
        listen: str | Path,
        *,
        drain_grace: float = 5.0,
        inbox_limit: int = 1024,
    ) -> None:
        self.core = core
        self._endpoint = parse_endpoint(listen)
        #: Socket path for Unix-socket services; ``None`` over TCP.
        self.socket_path = Path(self._endpoint[1]) if self._endpoint[0] == "unix" else None
        self.drain_grace = float(drain_grace)
        if inbox_limit < 1:
            raise ValueError("inbox_limit must be at least 1")
        self.inbox_limit = int(inbox_limit)
        #: The exception that killed the admission loop, if any — a loud
        #: record of an ungraceful shutdown.
        self.failure: BaseException | None = None
        self._server: asyncio.AbstractServer | None = None
        self._inbox: asyncio.Queue | None = None
        self._admission: asyncio.Task | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._stopped = asyncio.Event()
        self._stopping = False

    @property
    def endpoint(self) -> str:
        """The client-facing endpoint string (actual bound port over TCP)."""
        return format_endpoint(self._endpoint)

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("the service is already started")
        self._inbox = asyncio.Queue(maxsize=self.inbox_limit)
        if self._endpoint[0] == "unix":
            assert self.socket_path is not None
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            if self.socket_path.exists():
                self.socket_path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=str(self.socket_path)
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self._endpoint[1], port=self._endpoint[2]
            )
            bound = self._server.sockets[0].getsockname()
            self._endpoint = ("tcp", bound[0], bound[1])
        self._admission = asyncio.create_task(
            self._admission_loop(), name="repro-serve-admission"
        )

    async def wait_stopped(self) -> None:
        """Block until the service has fully shut down."""
        await self._stopped.wait()

    async def stop(self, *, drain: bool = True) -> None:
        """Graceful shutdown; idempotent and safe to call from any task."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        # One loop tick first: a connection sitting in the accept backlog gets
        # its handler created now, so the teardown below closes it too instead
        # of stranding the client without an EOF.
        await asyncio.sleep(0)
        if self._server is not None:
            self._server.close()
        if drain and self._inbox is not None and self._admission is not None:
            if not self._admission.done():
                with suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._inbox.join(), self.drain_grace)
        if self._admission is not None and not self._admission.done():
            self._admission.cancel()
            with suppress(asyncio.CancelledError):
                await self._admission
        if self._server is not None:
            with suppress(OSError):
                await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            await self._discard_writer(writer)
        if self.socket_path is not None:
            with suppress(OSError):
                if self.socket_path.exists():
                    self.socket_path.unlink()
        self._stopped.set()

    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_line(line)
                except ValueError as exc:
                    await self._send(writer, {"event": "error", "message": str(exc)})
                    continue
                assert self._inbox is not None
                if request.get("op") == "submit":
                    # Backpressure: a full inbox answers an explicit
                    # rejection instead of queueing without bound.  The
                    # rejected task never reaches the engine.
                    try:
                        self._inbox.put_nowait((request, time.perf_counter(), writer))
                    except asyncio.QueueFull:
                        self.core.metrics.rejected_overload += 1
                        rejection: dict = {
                            "event": "accepted",
                            "accepted": False,
                            "reason": "overloaded",
                        }
                        task_payload = request.get("task")
                        if isinstance(task_payload, Mapping) and "task_id" in task_payload:
                            rejection["task_id"] = task_payload["task_id"]
                        await self._send(writer, rejection)
                else:
                    # Control ops (flush/stats/close) are rare and must not
                    # be dropped; let them wait for a slot, which simply
                    # stalls this connection's reader.
                    await self._inbox.put((request, time.perf_counter(), writer))
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._discard_writer(writer)

    async def _admission_loop(self) -> None:
        assert self._inbox is not None
        while True:
            request, received, writer = await self._inbox.get()
            try:
                closing = await self._process(request, received, writer)
            except Exception as exc:
                # An unexpected failure must not kill the loop silently and
                # leave every client hanging: answer the requesting writer,
                # record the failure loudly, and shut the service down so
                # clients see EOF instead of an eternal stall.
                self.failure = exc
                print(
                    "repro.serve: admission loop failed on "
                    f"{request.get('op')!r}: {exc!r}\n{traceback.format_exc()}",
                    file=sys.stderr,
                    flush=True,
                )
                with suppress(Exception):
                    await self._broadcast_decisions(self.core.take_pending())
                with suppress(Exception):
                    await self._send(
                        writer,
                        {
                            "event": "error",
                            "fatal": True,
                            "message": f"internal error: {type(exc).__name__}: {exc}",
                        },
                    )
                asyncio.create_task(self.stop(drain=False))
                return
            finally:
                self._inbox.task_done()
            if closing:
                # The core is finalised; shut the whole service down (from a
                # fresh task — stop() cancels this loop).
                asyncio.create_task(self.stop(drain=False))
                return

    async def _process(
        self, request: Mapping, received: float, writer: asyncio.StreamWriter
    ) -> bool:
        op = request.get("op")
        if op == "submit":
            try:
                spec = spec_from_payload(request.get("task"))
            except ValueError as exc:
                self.core.metrics.rejected += 1
                await self._send(writer, {"event": "error", "message": str(exc)})
                return False
            try:
                decisions = self.core.submit(spec, received=received)
            except (ValueError, RuntimeError) as exc:
                # Broadcast anything the engine produced before the failure
                # first: a decision stranded in the core's pending buffer
                # would otherwise surface late, attributed to the next
                # unrelated request.
                await self._broadcast_decisions(self.core.take_pending())
                await self._send(
                    writer,
                    {"event": "error", "task_id": spec.task_id, "message": str(exc)},
                )
                return False
            await self._send(
                writer, {"event": "accepted", "accepted": True, "task_id": spec.task_id}
            )
            await self._broadcast_decisions(decisions)
            return False
        if op == "flush":
            try:
                decisions = self.core.flush()
            except RuntimeError as exc:
                await self._broadcast_decisions(self.core.take_pending())
                await self._send(writer, {"event": "error", "message": str(exc)})
                return False
            await self._broadcast_decisions(decisions)
            await self._send(writer, {"event": "flushed"})
            return False
        if op == "stats":
            payload: dict = {"event": "stats", "metrics": self.core.metrics.snapshot()}
            obs = obs_active()
            if obs.enabled:
                # Over-the-wire enrichment: when the host process is tracing,
                # a stats request also carries the process-local telemetry
                # snapshot (counters/gauges/timings), so remote clients can
                # read engine/kernel internals without filesystem access.
                payload["obs"] = obs_snapshot(obs)
            await self._send(writer, payload)
            return False
        if op == "close":
            try:
                decisions = self.core.close()
            except RuntimeError as exc:
                await self._broadcast_decisions(self.core.take_pending())
                await self._send(writer, {"event": "error", "message": str(exc)})
                return False
            await self._broadcast_decisions(decisions)
            result = self.core.result
            await self._broadcast(
                {
                    "event": "closed",
                    "summary": result.summary(),
                    "status_counts": result.status_counts(),
                    "metrics": self.core.metrics.snapshot(),
                }
            )
            return True
        await self._send(writer, {"event": "error", "message": f"unknown op {op!r}"})
        return False

    # ------------------------------------------------------------------
    async def _broadcast_decisions(self, decisions: Sequence[Decision]) -> None:
        for decision in decisions:
            await self._broadcast(decision_to_payload(decision))

    async def _broadcast(self, payload: Mapping) -> None:
        for writer in list(self._writers):
            await self._send(writer, payload)

    async def _send(self, writer: asyncio.StreamWriter, payload: Mapping) -> None:
        if writer not in self._writers:
            return
        try:
            writer.write(encode_line(payload))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            await self._discard_writer(writer)

    async def _discard_writer(self, writer: asyncio.StreamWriter) -> None:
        if writer in self._writers:
            self._writers.discard(writer)
            with suppress(Exception):
                writer.close()
                await writer.wait_closed()
