"""repro.serve — online scheduler service over the incremental engine.

The paper's decision engine only ever ran in batch replay; this package
promotes it to a long-running admission service:

* :mod:`repro.serve.service` — :class:`SchedulerCore` (synchronous
  externally-clocked admission engine with an in-process ``submit()`` API)
  and :class:`SchedulerService` (asyncio admission loop serving JSON-lines
  over a local Unix socket, streaming per-task decisions to every connected
  client);
* :mod:`repro.serve.metrics` — :class:`ServiceMetrics` counters plus a
  latency histogram with exact percentile read-out;
* :mod:`repro.serve.loadgen` — trace replay at a wall-clock arrival-rate
  multiplier and the ``repro serve bench`` throughput/latency harness;
* :mod:`repro.serve.protocol` — the JSON-lines wire format.

Virtual time is *externally clocked*: every submission carries its arrival
instant in trace time units and the engine's clock advances with the
submission watermark.  That is what makes serving exactly reproducible —
a trace streamed through the service (at any wall-clock rate) yields
decisions bit-identical to an offline :meth:`HCSimulator.run` of the same
trace, pinned by :func:`repro.serve.service.decision_map` /
:func:`offline_decision_map` and the replay-equivalence test suite.
"""

from .loadgen import (
    BenchReport,
    RateReport,
    ReplayOutcome,
    replay_trace,
    run_bench,
    slice_trace,
)
from .metrics import LatencyHistogram, ServiceMetrics
from .protocol import (
    decision_to_payload,
    decode_line,
    encode_line,
    spec_from_payload,
    spec_to_payload,
)
from .service import (
    Decision,
    SchedulerCore,
    SchedulerService,
    decision_map,
    offline_decision_map,
)

__all__ = [
    "BenchReport",
    "Decision",
    "LatencyHistogram",
    "RateReport",
    "ReplayOutcome",
    "SchedulerCore",
    "SchedulerService",
    "ServiceMetrics",
    "decision_map",
    "decision_to_payload",
    "decode_line",
    "encode_line",
    "offline_decision_map",
    "replay_trace",
    "run_bench",
    "slice_trace",
    "spec_from_payload",
    "spec_to_payload",
]
