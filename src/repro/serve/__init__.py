"""repro.serve — online scheduler service over the incremental engine.

The paper's decision engine only ever ran in batch replay; this package
promotes it to a long-running admission service:

* :mod:`repro.serve.service` — :class:`SchedulerCore` (synchronous
  externally-clocked admission engine with an in-process ``submit()`` API)
  and :class:`SchedulerService` (asyncio admission loop serving JSON-lines
  over a Unix socket or TCP, streaming per-task decisions to every
  connected client, with a bounded inbox that rejects submissions under
  overload);
* :mod:`repro.serve.workers` — :class:`ShardedSchedulerService`, a
  front-end that shards submissions by task type across N engine-worker
  processes and merges their decisions into one globally-sequenced stream;
* :mod:`repro.serve.metrics` — :class:`ServiceMetrics` counters plus a
  fixed-size log-bucketed admission-latency histogram (built on
  :class:`repro.obs.LogBucketHistogram`, bounded memory at any uptime),
  and :func:`merge_snapshots` for the sharded stats view — exact when
  every shard ships its histogram payload, conservative on legacy
  summary-only snapshots;
* :mod:`repro.serve.loadgen` — trace replay at a wall-clock arrival-rate
  multiplier and the ``repro serve bench`` throughput/latency harness
  (any transport/topology, with the overload rejection curve);
* :mod:`repro.serve.protocol` — the JSON-lines wire format and endpoint
  notation (``unix:PATH`` / ``tcp:HOST:PORT``).

Virtual time is *externally clocked*: every submission carries its arrival
instant in trace time units and the engine's clock advances with the
submission watermark.  That is what makes serving exactly reproducible —
a trace streamed through the service (at any wall-clock rate) yields
decisions bit-identical to an offline :meth:`HCSimulator.run` of the same
trace, pinned by :func:`repro.serve.service.decision_map` /
:func:`offline_decision_map` and the replay-equivalence test suite.  Under
sharding the contract holds *per shard*: each worker's stream equals the
offline replay of exactly its task subsequence (seeded with
:func:`shard_seed`).
"""

from .loadgen import (
    BenchReport,
    RateReport,
    ReplayOutcome,
    replay_trace,
    run_bench,
    slice_trace,
)
from .metrics import LatencyHistogram, ServiceMetrics, merge_snapshots
from .protocol import (
    decision_to_payload,
    decode_line,
    encode_line,
    format_endpoint,
    open_endpoint,
    parse_endpoint,
    spec_from_payload,
    spec_to_payload,
)
from .service import (
    Decision,
    SchedulerCore,
    SchedulerService,
    decision_map,
    offline_decision_map,
)
from .workers import (
    ShardSpec,
    ShardedSchedulerService,
    build_shard_specs,
    partition_trace,
    shard_for,
    shard_seed,
)

__all__ = [
    "BenchReport",
    "Decision",
    "LatencyHistogram",
    "RateReport",
    "ReplayOutcome",
    "SchedulerCore",
    "SchedulerService",
    "ServiceMetrics",
    "ShardSpec",
    "ShardedSchedulerService",
    "build_shard_specs",
    "decision_map",
    "decision_to_payload",
    "decode_line",
    "encode_line",
    "format_endpoint",
    "merge_snapshots",
    "offline_decision_map",
    "open_endpoint",
    "parse_endpoint",
    "partition_trace",
    "replay_trace",
    "run_bench",
    "shard_for",
    "shard_seed",
    "slice_trace",
    "spec_from_payload",
    "spec_to_payload",
]
