"""Multi-trial experiment runner (paper Section VII-A).

Every data point in the paper is the mean (with 95 % confidence interval) of
30 workload trials that share the arrival rate and pattern but use different
arrival times.  :func:`run_series` reproduces that protocol: the PET matrix
is built once per experiment (the paper keeps it "constant across all of our
experiments"), each trial generates a fresh workload trace from an
independent random stream and simulates it with a freshly built heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..heuristics.base import MappingHeuristic
from ..pet.matrix import PETMatrix
from ..sweep.executor import execute_trials
from ..sweep.trial import TrialMetrics
from ..utils.stats import Summary, summarize
from ..workload.generator import WorkloadConfig
from .config import ExperimentConfig

__all__ = ["TrialMetrics", "SeriesResult", "run_series"]

HeuristicFactory = Callable[[], MappingHeuristic]


@dataclass
class SeriesResult:
    """All trials of one experiment data point plus their summaries."""

    label: str
    trials: list[TrialMetrics] = field(default_factory=list)

    # ------------------------------------------------------------------
    def robustness(self) -> Summary:
        return summarize([t.robustness_percent for t in self.trials])

    def fairness_variance(self) -> Summary:
        return summarize([t.fairness_variance for t in self.trials])

    def cost(self) -> Summary:
        return summarize([t.total_cost for t in self.trials])

    def cost_per_percent(self) -> Summary:
        values = [
            t.cost_per_percent_on_time
            for t in self.trials
            if np.isfinite(t.cost_per_percent_on_time)
        ]
        return summarize(values)

    def mean_robustness(self) -> float:
        return self.robustness().mean

    def as_row(self) -> dict[str, float | str]:
        robustness = self.robustness()
        fairness = self.fairness_variance()
        cost = self.cost_per_percent()
        return {
            "label": self.label,
            "robustness_mean": robustness.mean,
            "robustness_ci95": robustness.ci95,
            "fairness_variance_mean": fairness.mean,
            "cost_per_percent_mean": cost.mean,
            "trials": len(self.trials),
        }


def run_series(
    *,
    label: str,
    pet: PETMatrix,
    heuristic_factory: HeuristicFactory,
    workload: WorkloadConfig,
    config: ExperimentConfig,
    machine_prices: Sequence[float] | None = None,
    evict_executing_at_deadline: bool = True,
) -> SeriesResult:
    """Run ``config.trials`` workload trials for one experiment data point.

    Trial *k* of any experiment is reproducible: the workload and execution
    streams are derived from ``config.seed`` with ``SeedSequence.spawn`` so
    different heuristics evaluated at the same data point see identical
    arrival traces (paired comparison, as in the paper).

    The trial loop itself lives in :func:`repro.sweep.executor.execute_trials`
    (the sweep subsystem's serial path); this wrapper is kept for callers
    that configure heuristics with an arbitrary factory closure rather than
    a declarative :class:`repro.sweep.HeuristicSpec`.
    """
    series = SeriesResult(label=label)
    series.trials.extend(
        execute_trials(
            pet=pet,
            heuristic_factory=heuristic_factory,
            workload=workload,
            config=config,
            machine_prices=machine_prices,
            evict_executing_at_deadline=evict_executing_at_deadline,
        )
    )
    return series
