"""Multi-trial experiment runner (paper Section VII-A).

Every data point in the paper is the mean (with 95 % confidence interval) of
30 workload trials that share the arrival rate and pattern but use different
arrival times.  :func:`run_series` reproduces that protocol: the PET matrix
is built once per experiment (the paper keeps it "constant across all of our
experiments"), each trial generates a fresh workload trace from an
independent random stream and simulates it with a freshly built heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..heuristics.base import MappingHeuristic
from ..pet.matrix import PETMatrix
from ..simulator.engine import SimulatorConfig, simulate
from ..simulator.metrics import SimulationResult
from ..utils.stats import Summary, summarize
from ..workload.generator import WorkloadConfig, generate_workload
from .config import ExperimentConfig

__all__ = ["TrialMetrics", "SeriesResult", "run_series"]

HeuristicFactory = Callable[[], MappingHeuristic]


@dataclass(frozen=True)
class TrialMetrics:
    """Headline metrics of one simulated trial."""

    robustness_percent: float
    fairness_variance: float
    total_cost: float
    cost_per_percent_on_time: float
    completed_on_time: int
    total_tasks: int
    per_type_completion_percent: tuple[float, ...]

    @classmethod
    def from_result(
        cls, result: SimulationResult, *, warmup: int, cooldown: int
    ) -> "TrialMetrics":
        per_type = result.per_type_completion_percent(warmup=warmup, cooldown=cooldown)
        return cls(
            robustness_percent=result.robustness_percent(warmup=warmup, cooldown=cooldown),
            fairness_variance=result.fairness_variance(warmup=warmup, cooldown=cooldown),
            total_cost=result.total_cost(),
            cost_per_percent_on_time=result.cost_per_percent_on_time(
                warmup=warmup, cooldown=cooldown
            ),
            completed_on_time=result.completed_on_time(warmup=warmup, cooldown=cooldown),
            total_tasks=len(result.tasks),
            per_type_completion_percent=tuple(float(x) for x in per_type),
        )


@dataclass
class SeriesResult:
    """All trials of one experiment data point plus their summaries."""

    label: str
    trials: list[TrialMetrics] = field(default_factory=list)

    # ------------------------------------------------------------------
    def robustness(self) -> Summary:
        return summarize([t.robustness_percent for t in self.trials])

    def fairness_variance(self) -> Summary:
        return summarize([t.fairness_variance for t in self.trials])

    def cost(self) -> Summary:
        return summarize([t.total_cost for t in self.trials])

    def cost_per_percent(self) -> Summary:
        values = [
            t.cost_per_percent_on_time
            for t in self.trials
            if np.isfinite(t.cost_per_percent_on_time)
        ]
        return summarize(values)

    def mean_robustness(self) -> float:
        return self.robustness().mean

    def as_row(self) -> dict[str, float | str]:
        robustness = self.robustness()
        fairness = self.fairness_variance()
        cost = self.cost_per_percent()
        return {
            "label": self.label,
            "robustness_mean": robustness.mean,
            "robustness_ci95": robustness.ci95,
            "fairness_variance_mean": fairness.mean,
            "cost_per_percent_mean": cost.mean,
            "trials": len(self.trials),
        }


def run_series(
    *,
    label: str,
    pet: PETMatrix,
    heuristic_factory: HeuristicFactory,
    workload: WorkloadConfig,
    config: ExperimentConfig,
    machine_prices: Sequence[float] | None = None,
    evict_executing_at_deadline: bool = True,
) -> SeriesResult:
    """Run ``config.trials`` workload trials for one experiment data point.

    Trial *k* of any experiment is reproducible: the workload and execution
    streams are derived from ``config.seed`` with ``SeedSequence.spawn`` so
    different heuristics evaluated at the same data point see identical
    arrival traces (paired comparison, as in the paper).
    """
    series = SeriesResult(label=label)
    sim_config = SimulatorConfig(
        queue_capacity=config.queue_capacity,
        max_impulses=config.max_impulses,
        evict_executing_at_deadline=evict_executing_at_deadline,
    )
    master = np.random.SeedSequence(config.seed)
    children = master.spawn(config.trials)
    for trial_index in range(config.trials):
        workload_seed, execution_seed = children[trial_index].spawn(2)
        trace = generate_workload(workload, pet, rng=np.random.default_rng(workload_seed))
        heuristic = heuristic_factory()
        result = simulate(
            pet,
            heuristic,
            trace,
            config=sim_config,
            machine_prices=machine_prices,
            rng=np.random.default_rng(execution_seed),
        )
        series.trials.append(
            TrialMetrics.from_result(
                result, warmup=config.warmup_tasks, cooldown=config.cooldown_tasks
            )
        )
    return series
