"""Figure 9 — PAMF vs MinMin on the video-transcoding workload.

Uses the 4-task-type x 4-VM-type transcoding PET (the offline stand-in for
the paper's 660-video EC2 trace) and compares PAMF against MM at four
oversubscription levels.  The paper's observation: PAMF's advantage grows
with the oversubscription level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from pathlib import Path

from ..pruning.thresholds import PruningThresholds
from ..simulator.cost import default_prices_for
from ..sweep import (
    HeuristicSpec,
    PETSpec,
    SweepSpec,
    TraceSpec,
    pet_for,
    run_sweep,
    trace_for,
)
from ..sweep.progress import ProgressCallback
from ..utils.tables import format_table
from .config import ExperimentConfig, transcoding_workload_for_level
from .runner import SeriesResult

__all__ = ["Fig9Result", "run_fig9", "coerce_fig9_trace", "TRACE_LEVEL_LABEL"]

DEFAULT_LEVELS: tuple[str, ...] = ("10k", "12.5k", "15k", "17.5k")

DEFAULT_HEURISTICS: tuple[str, ...] = ("PAMF", "MM")

#: Level label used when the driver replays a recorded trace instead of
#: sweeping the synthetic oversubscription levels.
TRACE_LEVEL_LABEL = "replay"


@dataclass
class Fig9Result:
    """Robustness per (oversubscription level, heuristic) on transcoding."""

    series: dict[tuple[str, str], SeriesResult] = field(default_factory=dict)

    def robustness(self, level: str, heuristic: str) -> float:
        return self.series[(level, heuristic)].mean_robustness()

    def advantage(self, level: str, heuristic: str = "PAMF", baseline: str = "MM") -> float:
        """Robustness advantage (percentage points) of PAMF over MM."""
        return self.robustness(level, heuristic) - self.robustness(level, baseline)

    def levels(self) -> list[str]:
        return sorted({lvl for lvl, _ in self.series})

    def rows(self) -> list[list[object]]:
        rows = []
        for (level, heuristic), series in sorted(self.series.items()):
            summary = series.robustness()
            rows.append([level, heuristic, summary.mean, summary.ci95])
        return rows

    def to_text(self) -> str:
        return "Figure 9 — PAMF vs MM on the video-transcoding workload\n" + format_table(
            ["level", "heuristic", "robustness %", "ci95"], self.rows()
        )


def coerce_fig9_trace(trace: str | Path | TraceSpec, *, seed: int = 2019) -> TraceSpec:
    """Coerce a trace argument to a :class:`TraceSpec` and fail fast.

    Resolves the trace (memoised) and checks it fits the 4-type
    transcoding PET, so an incompatible recording is rejected with a clear
    message here rather than as an ``IndexError`` inside a worker process.
    Raises :class:`FileNotFoundError`/:class:`ValueError`; the CLI calls
    this *before* the driver so only genuine trace problems are converted
    to clean exits.
    """
    if not isinstance(trace, TraceSpec):
        trace = TraceSpec(path=str(trace))
    resolved = trace_for(trace)
    pet = pet_for(PETSpec(kind="transcoding", seed=seed))
    if resolved.num_task_types > pet.num_task_types:
        raise ValueError(
            f"trace uses {resolved.num_task_types} task types but the "
            f"transcoding PET only has {pet.num_task_types}; figure 9 "
            "replays transcoding-shaped traces (record one with "
            "'repro trace record --builder transcoding-660')"
        )
    return trace


def run_fig9(
    config: ExperimentConfig | None = None,
    *,
    levels: Sequence[str] = DEFAULT_LEVELS,
    heuristics: Sequence[str] = DEFAULT_HEURISTICS,
    thresholds: PruningThresholds | None = None,
    fairness_factor: float = 0.05,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: ProgressCallback | None = None,
    backend: str | None = None,
    queue_dir: str | Path | None = None,
    queue_workers: int | None = None,
    trace: str | Path | TraceSpec | None = None,
) -> Fig9Result:
    """Regenerate Figure 9 (video-transcoding workload comparison).

    With ``trace`` (a trace-file path or a :class:`~repro.sweep.TraceSpec`)
    the synthetic oversubscription-level axis collapses to one
    ``"replay"`` level: every heuristic replays the identical recorded
    trace — the paper's actual Figure 9 methodology on its 660-video EC2
    workload, for which ``examples/transcoding_660.trace.json`` ships as
    the offline stand-in.
    """
    config = config or ExperimentConfig()
    heuristics = list(dict.fromkeys(heuristics))
    pet_spec = PETSpec(kind="transcoding", seed=config.seed)
    prices = tuple(default_prices_for(pet_for(pet_spec).machine_names))
    heuristic_specs = {
        name: HeuristicSpec(
            name=name, thresholds=thresholds, fairness_factor=fairness_factor
        )
        for name in heuristics
    }
    if trace is not None:
        trace = coerce_fig9_trace(trace, seed=config.seed)
        levels = [TRACE_LEVEL_LABEL]
        spec = SweepSpec.from_traces(
            pet=pet_spec,
            heuristics=heuristic_specs,
            traces={TRACE_LEVEL_LABEL: trace},
            config=config,
            machine_prices=prices,
        )
    else:
        levels = list(dict.fromkeys(levels))
        spec = SweepSpec.from_grid(
            pet=pet_spec,
            heuristics=heuristic_specs,
            workloads={
                level: transcoding_workload_for_level(level, config)
                for level in levels
            },
            config=config,
            machine_prices=prices,
        )
    outcome = run_sweep(
        spec,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        backend=backend,
        queue_dir=queue_dir,
        queue_workers=queue_workers,
    )
    result = Fig9Result()
    keys = [(level, name) for level in levels for name in heuristics]
    result.series.update(outcome.series_map(keys))
    return result
