"""Figure 9 — PAMF vs MinMin on the video-transcoding workload.

Uses the 4-task-type x 4-VM-type transcoding PET (the offline stand-in for
the paper's 660-video EC2 trace) and compares PAMF against MM at four
oversubscription levels.  The paper's observation: PAMF's advantage grows
with the oversubscription level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..heuristics.registry import make_heuristic
from ..pet.builders import build_transcoding_pet
from ..pruning.thresholds import PruningThresholds
from ..simulator.cost import default_prices_for
from ..utils.tables import format_table
from .config import ExperimentConfig, transcoding_workload_for_level
from .runner import SeriesResult, run_series

__all__ = ["Fig9Result", "run_fig9"]

DEFAULT_LEVELS: tuple[str, ...] = ("10k", "12.5k", "15k", "17.5k")

DEFAULT_HEURISTICS: tuple[str, ...] = ("PAMF", "MM")


@dataclass
class Fig9Result:
    """Robustness per (oversubscription level, heuristic) on transcoding."""

    series: dict[tuple[str, str], SeriesResult] = field(default_factory=dict)

    def robustness(self, level: str, heuristic: str) -> float:
        return self.series[(level, heuristic)].mean_robustness()

    def advantage(self, level: str, heuristic: str = "PAMF", baseline: str = "MM") -> float:
        """Robustness advantage (percentage points) of PAMF over MM."""
        return self.robustness(level, heuristic) - self.robustness(level, baseline)

    def levels(self) -> list[str]:
        return sorted({lvl for lvl, _ in self.series})

    def rows(self) -> list[list[object]]:
        rows = []
        for (level, heuristic), series in sorted(self.series.items()):
            summary = series.robustness()
            rows.append([level, heuristic, summary.mean, summary.ci95])
        return rows

    def to_text(self) -> str:
        return "Figure 9 — PAMF vs MM on the video-transcoding workload\n" + format_table(
            ["level", "heuristic", "robustness %", "ci95"], self.rows()
        )


def run_fig9(
    config: ExperimentConfig | None = None,
    *,
    levels: Sequence[str] = DEFAULT_LEVELS,
    heuristics: Sequence[str] = DEFAULT_HEURISTICS,
    thresholds: PruningThresholds | None = None,
    fairness_factor: float = 0.05,
) -> Fig9Result:
    """Regenerate Figure 9 (video-transcoding workload comparison)."""
    config = config or ExperimentConfig()
    pet = build_transcoding_pet(rng=config.seed)
    prices = default_prices_for(pet.machine_names)
    result = Fig9Result()
    for level in levels:
        workload = transcoding_workload_for_level(level, config)
        for name in heuristics:

            def factory(name=name):
                return make_heuristic(
                    name,
                    num_task_types=pet.num_task_types,
                    thresholds=thresholds,
                    fairness_factor=fairness_factor,
                )

            result.series[(level, name)] = run_series(
                label=f"{level},{name}",
                pet=pet,
                heuristic_factory=factory,
                workload=workload,
                config=config,
                machine_prices=prices,
            )
    return result
