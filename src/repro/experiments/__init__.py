"""Experiment drivers regenerating every figure of the paper's evaluation."""

from .config import (
    ExperimentConfig,
    ExperimentScale,
    OVERSUBSCRIPTION_LEVELS,
    TRANSCODING_LEVELS,
    transcoding_workload_for_level,
    workload_for_level,
)
from .fig4_lambda import Fig4Result, run_fig4
from .fig5_thresholds import Fig5Result, run_fig5
from .fig6_fairness import Fig6Result, run_fig6
from .fig7_robustness import Fig7Result, run_fig7
from .fig8_cost import Fig8Result, run_fig8
from .fig9_transcoding import Fig9Result, run_fig9
from .reporting import rows_to_csv, rows_to_json, save_figure_result
from .runner import SeriesResult, TrialMetrics, run_series

__all__ = [
    "ExperimentConfig",
    "ExperimentScale",
    "OVERSUBSCRIPTION_LEVELS",
    "TRANSCODING_LEVELS",
    "workload_for_level",
    "transcoding_workload_for_level",
    "run_series",
    "SeriesResult",
    "TrialMetrics",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "rows_to_csv",
    "rows_to_json",
    "save_figure_result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
]
