"""Shared experiment configuration (paper Section VI / VII).

The paper's evaluation runs 30 workload trials of 800 tasks on an HPC
cluster; a laptop-scale reproduction needs smaller defaults.  The knobs are
collected here:

* :class:`ExperimentScale` — named presets (``SMOKE`` for tests, ``QUICK``
  for the benchmark harness, ``PAPER`` for a full-scale run);
* :data:`OVERSUBSCRIPTION_LEVELS` — the workload configurations standing in
  for the paper's "19k" and "34k" arrival-rate labels (the *ratio* of offered
  load to capacity is what is matched, see DESIGN.md);
* :data:`TRANSCODING_LEVELS` — the four oversubscription levels of the
  video-transcoding experiment (Figure 9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Mapping

from ..core.kernels import KERNEL_BACKEND_NAMES
from ..workload.generator import WorkloadConfig

__all__ = [
    "ExperimentScale",
    "ExperimentConfig",
    "OVERSUBSCRIPTION_LEVELS",
    "TRANSCODING_LEVELS",
    "workload_for_level",
    "transcoding_workload_for_level",
]

#: Arrival-window length shared by every synthetic workload (time units).
DEFAULT_TIME_SPAN = 3000

#: Deadline slack coefficient beta (Section VI-B) used across experiments.
DEFAULT_BETA = 1.5

#: Workload configurations reproducing the paper's oversubscription labels on
#: the 8-machine SPEC-style system.  "19k" corresponds to roughly 2x the
#: system capacity over the arrival window, "34k" to roughly 3.5x, matching
#: the relative severity of the paper's two headline levels.
OVERSUBSCRIPTION_LEVELS: Mapping[str, WorkloadConfig] = {
    "19k": WorkloadConfig(num_tasks=450, time_span=DEFAULT_TIME_SPAN, beta=DEFAULT_BETA),
    "34k": WorkloadConfig(num_tasks=700, time_span=DEFAULT_TIME_SPAN, beta=DEFAULT_BETA),
}

#: Task counts reproducing Figure 9's four oversubscription levels on the
#: 4-machine transcoding system (same arrival window).
TRANSCODING_LEVELS: Mapping[str, WorkloadConfig] = {
    "10k": WorkloadConfig(num_tasks=120, time_span=DEFAULT_TIME_SPAN, beta=DEFAULT_BETA),
    "12.5k": WorkloadConfig(num_tasks=150, time_span=DEFAULT_TIME_SPAN, beta=DEFAULT_BETA),
    "15k": WorkloadConfig(num_tasks=180, time_span=DEFAULT_TIME_SPAN, beta=DEFAULT_BETA),
    "17.5k": WorkloadConfig(num_tasks=210, time_span=DEFAULT_TIME_SPAN, beta=DEFAULT_BETA),
}


class ExperimentScale(enum.Enum):
    """Named presets trading fidelity for wall-clock time."""

    #: Tiny runs for unit/integration tests (seconds).
    SMOKE = "smoke"
    #: Benchmark-harness default: small trial counts, full workload sizes.
    QUICK = "quick"
    #: Paper-scale: 30 trials per data point (hours on a laptop).
    PAPER = "paper"


@dataclass(frozen=True)
class ExperimentConfig:
    """Cross-cutting experiment parameters."""

    #: Number of workload trials averaged per data point (paper: 30).
    trials: int = 3
    #: Master seed; every trial/PET derives an independent child stream.
    seed: int = 2019
    #: Tasks excluded from the head of each trial's metrics (paper: 100).
    warmup_tasks: int = 50
    #: Tasks excluded from the tail of each trial's metrics (paper: 100).
    cooldown_tasks: int = 50
    #: Machine local-queue capacity, counting the executing task (paper: 6).
    queue_capacity: int = 6
    #: Impulse-aggregation cap for completion-time chains.
    max_impulses: int = 32
    #: Workload scaling factor applied to ``num_tasks`` (1.0 = level as is).
    task_scale: float = 1.0
    #: Batched-scheduling-round window (time units) forwarded to
    #: :class:`~repro.simulator.engine.SimulatorConfig`; ``0`` keeps the
    #: paper's per-event mapping protocol.  Folded into sweep cache keys —
    #: batched-round results never collide with per-event entries.
    batch_window: int = 0
    #: Kernel backend forwarded to the simulator (``None`` = process-wide
    #: selection: ``REPRO_KERNEL_BACKEND`` or the ``numpy`` reference).
    #: Excluded from the cache-key *config* payload — the backend identity
    #: is folded into the engine tag instead (see
    #: :func:`repro.core.kernels.kernel_cache_tag`).
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("at least one trial is required")
        if self.warmup_tasks < 0 or self.cooldown_tasks < 0:
            raise ValueError("warmup/cooldown must be non-negative")
        if self.task_scale <= 0:
            raise ValueError("task_scale must be positive")
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.kernel_backend is not None and self.kernel_backend not in KERNEL_BACKEND_NAMES:
            raise ValueError(
                f"unknown kernel backend {self.kernel_backend!r}; expected one "
                f"of {KERNEL_BACKEND_NAMES}"
            )

    @classmethod
    def for_scale(cls, scale: ExperimentScale) -> "ExperimentConfig":
        if scale is ExperimentScale.SMOKE:
            return cls(trials=1, warmup_tasks=10, cooldown_tasks=10, task_scale=0.25)
        if scale is ExperimentScale.QUICK:
            return cls(trials=3)
        if scale is ExperimentScale.PAPER:
            return cls(trials=30, warmup_tasks=100, cooldown_tasks=100)
        raise ValueError(f"unknown scale {scale!r}")

    def scaled_workload(self, base: WorkloadConfig) -> WorkloadConfig:
        """Apply the task-count scaling factor to a level's workload config."""
        if self.task_scale == 1.0:
            return base
        return replace(base, num_tasks=max(20, int(round(base.num_tasks * self.task_scale))))


def workload_for_level(level: str, config: ExperimentConfig | None = None) -> WorkloadConfig:
    """Workload configuration of one SPEC-system oversubscription level."""
    try:
        base = OVERSUBSCRIPTION_LEVELS[level]
    except KeyError as exc:
        raise KeyError(
            f"unknown oversubscription level {level!r}; expected one of "
            f"{sorted(OVERSUBSCRIPTION_LEVELS)}"
        ) from exc
    return (config or ExperimentConfig()).scaled_workload(base)


def transcoding_workload_for_level(
    level: str, config: ExperimentConfig | None = None
) -> WorkloadConfig:
    """Workload configuration of one transcoding oversubscription level."""
    try:
        base = TRANSCODING_LEVELS[level]
    except KeyError as exc:
        raise KeyError(
            f"unknown transcoding level {level!r}; expected one of {sorted(TRANSCODING_LEVELS)}"
        ) from exc
    return (config or ExperimentConfig()).scaled_workload(base)
