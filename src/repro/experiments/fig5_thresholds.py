"""Figure 5 — impact of the deferring and dropping thresholds.

For each dropping threshold in {25 %, 50 %, 75 %} the deferring threshold is
swept from the dropping threshold up to 90 %, under high oversubscription,
with PAM.  The paper finds that a higher deferring threshold always helps and
that once the deferring threshold is high enough the dropping threshold stops
mattering; 50 % dropping / 90 % deferring is adopted for the remaining
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from pathlib import Path

from ..pruning.thresholds import PruningThresholds
from ..sweep import HeuristicSpec, PETSpec, SweepPoint, SweepSpec, run_sweep
from ..sweep.progress import ProgressCallback
from ..utils.tables import format_table
from .config import ExperimentConfig, workload_for_level
from .runner import SeriesResult

__all__ = ["Fig5Result", "run_fig5", "DEFAULT_DROPPING_THRESHOLDS"]

#: Dropping thresholds examined in the paper.
DEFAULT_DROPPING_THRESHOLDS: tuple[float, ...] = (0.25, 0.50, 0.75)

#: Highest deferring threshold examined (the paper stops at 90 %).
MAX_DEFER = 0.90


@dataclass
class Fig5Result:
    """Robustness for every (dropping threshold, deferring threshold) pair."""

    level: str
    series: dict[tuple[float, float], SeriesResult] = field(default_factory=dict)

    def robustness(self, dropping: float, deferring: float) -> float:
        return self.series[(round(dropping, 4), round(deferring, 4))].mean_robustness()

    def defer_values(self, dropping: float) -> list[float]:
        return sorted(d for (drop, d) in self.series if abs(drop - dropping) < 1e-9)

    def rows(self) -> list[list[object]]:
        rows = []
        for (dropping, deferring), series in sorted(self.series.items()):
            summary = series.robustness()
            rows.append([dropping * 100, deferring * 100, summary.mean, summary.ci95])
        return rows

    def to_text(self) -> str:
        return (
            f"Figure 5 — robustness vs deferring threshold (level {self.level})\n"
            + format_table(
                ["drop threshold %", "defer threshold %", "robustness %", "ci95"],
                self.rows(),
            )
        )


def run_fig5(
    config: ExperimentConfig | None = None,
    *,
    level: str = "34k",
    dropping_thresholds: Sequence[float] = DEFAULT_DROPPING_THRESHOLDS,
    gap_step: float = 0.10,
    max_defer: float = MAX_DEFER,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: ProgressCallback | None = None,
    backend: str | None = None,
    queue_dir: str | Path | None = None,
    queue_workers: int | None = None,
) -> Fig5Result:
    """Regenerate Figure 5 (defer-threshold sweep per dropping threshold).

    ``gap_step`` controls the sweep resolution; the paper uses 5 % steps,
    the quick default uses 10 % to halve the number of simulations.
    """
    config = config or ExperimentConfig()
    if gap_step <= 0:
        raise ValueError("gap_step must be positive")
    pet = PETSpec(kind="spec", seed=config.seed)
    workload = workload_for_level(level, config)
    keys: list[tuple[float, float]] = []
    points: list[SweepPoint] = []
    for dropping in dropping_thresholds:
        deferring = dropping
        while deferring <= max_defer + 1e-9:
            thresholds = PruningThresholds(dropping=dropping, deferring=min(deferring, 1.0))
            keys.append((round(dropping, 4), round(min(deferring, 1.0), 4)))
            points.append(
                SweepPoint(
                    label=f"drop={dropping:.0%},defer={deferring:.0%}",
                    pet=pet,
                    heuristic=HeuristicSpec(name="PAM", thresholds=thresholds),
                    workload=workload,
                    config=config,
                )
            )
            deferring += gap_step
    outcome = run_sweep(
        SweepSpec(points=tuple(points)),
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        backend=backend,
        queue_dir=queue_dir,
        queue_workers=queue_workers,
    )
    result = Fig5Result(level=level)
    result.series.update(outcome.series_map(keys))
    return result
