"""Persisting experiment results.

Every figure driver returns a result object with a ``rows()`` method; this
module turns those rows into CSV/JSON artefacts so benchmark runs leave a
machine-readable record next to the printed tables (the habit the paper's
"30 trials, mean and 95% CI" methodology implies).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Protocol, Sequence

__all__ = ["FigureResultProtocol", "rows_to_csv", "rows_to_json", "save_figure_result"]


class FigureResultProtocol(Protocol):
    """Structural type implemented by every ``FigNResult`` class."""

    def rows(self) -> list[list[object]]:  # pragma: no cover - protocol
        ...

    def to_text(self) -> str:  # pragma: no cover - protocol
        ...


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]], path: str | Path) -> Path:
    """Write rows to a CSV file with the given header."""
    if not headers:
        raise ValueError("at least one header column is required")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row length {len(row)} does not match header length {len(headers)}"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return path


def rows_to_json(headers: Sequence[str], rows: Sequence[Sequence[object]], path: str | Path) -> Path:
    """Write rows to a JSON file as a list of objects keyed by header."""
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row length {len(row)} does not match header length {len(headers)}"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = [dict(zip(headers, row)) for row in rows]
    path.write_text(json.dumps(records, indent=2, default=float))
    return path


def save_figure_result(
    result: FigureResultProtocol,
    headers: Sequence[str],
    output_dir: str | Path,
    *,
    name: str,
) -> dict[str, Path]:
    """Persist one figure result as text, CSV and JSON under ``output_dir``.

    Returns the mapping of artefact kind to written path.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    rows = result.rows()
    text_path = output_dir / f"{name}.txt"
    text_path.write_text(result.to_text() + "\n")
    return {
        "text": text_path,
        "csv": rows_to_csv(headers, rows, output_dir / f"{name}.csv"),
        "json": rows_to_json(headers, rows, output_dir / f"{name}.json"),
    }
