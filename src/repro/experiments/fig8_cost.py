"""Figure 8 — cost benefit of probabilistic pruning.

Maps cloud-style prices onto the simulated machines, tracks each machine's
busy time, and reports incurred cost divided by the percentage of on-time
completions for PAM, PAMF, MOC and MM at the two headline oversubscription
levels.  The paper finds PAM/PAMF roughly 40 % cheaper per completed-on-time
percentage point than MOC and the other baselines, because they stop spending
machine time on tasks that will not make their deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from pathlib import Path

from ..pruning.thresholds import PruningThresholds
from ..simulator.cost import default_prices_for
from ..sweep import HeuristicSpec, PETSpec, SweepSpec, pet_for, run_sweep
from ..sweep.progress import ProgressCallback
from ..utils.tables import format_table
from .config import ExperimentConfig, workload_for_level
from .runner import SeriesResult

__all__ = ["Fig8Result", "run_fig8"]

#: Heuristics charted in Figure 8 (MSD/MMU are "unchartable" in the paper).
DEFAULT_HEURISTICS: tuple[str, ...] = ("PAM", "PAMF", "MOC", "MM")

DEFAULT_LEVELS: tuple[str, ...] = ("19k", "34k")


@dataclass
class Fig8Result:
    """Cost per percent of on-time completions per (level, heuristic)."""

    series: dict[tuple[str, str], SeriesResult] = field(default_factory=dict)

    def cost_per_percent(self, level: str, heuristic: str) -> float:
        return self.series[(level, heuristic)].cost_per_percent().mean

    def total_cost(self, level: str, heuristic: str) -> float:
        return self.series[(level, heuristic)].cost().mean

    def saving_vs(self, level: str, heuristic: str, baseline: str) -> float:
        """Relative cost-per-percent saving of ``heuristic`` over ``baseline``."""
        ours = self.cost_per_percent(level, heuristic)
        theirs = self.cost_per_percent(level, baseline)
        if theirs == 0:
            return 0.0
        return 1.0 - ours / theirs

    def rows(self) -> list[list[object]]:
        rows = []
        for (level, heuristic), series in sorted(self.series.items()):
            rows.append(
                [
                    level,
                    heuristic,
                    series.cost().mean,
                    series.robustness().mean,
                    series.cost_per_percent().mean,
                ]
            )
        return rows

    def to_text(self) -> str:
        return "Figure 8 — incurred cost per percent of on-time completions\n" + format_table(
            ["level", "heuristic", "total cost", "robustness %", "cost / percent on-time"],
            self.rows(),
            float_format="{:.3f}",
        )


def run_fig8(
    config: ExperimentConfig | None = None,
    *,
    levels: Sequence[str] = DEFAULT_LEVELS,
    heuristics: Sequence[str] = DEFAULT_HEURISTICS,
    thresholds: PruningThresholds | None = None,
    fairness_factor: float = 0.05,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: ProgressCallback | None = None,
    backend: str | None = None,
    queue_dir: str | Path | None = None,
    queue_workers: int | None = None,
) -> Fig8Result:
    """Regenerate Figure 8 (cost benefit of pruning)."""
    config = config or ExperimentConfig()
    levels = list(dict.fromkeys(levels))
    heuristics = list(dict.fromkeys(heuristics))
    pet_spec = PETSpec(kind="spec", seed=config.seed)
    prices = tuple(default_prices_for(pet_for(pet_spec).machine_names))
    spec = SweepSpec.from_grid(
        pet=pet_spec,
        heuristics={
            name: HeuristicSpec(
                name=name, thresholds=thresholds, fairness_factor=fairness_factor
            )
            for name in heuristics
        },
        workloads={level: workload_for_level(level, config) for level in levels},
        config=config,
        machine_prices=prices,
    )
    outcome = run_sweep(
        spec,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        backend=backend,
        queue_dir=queue_dir,
        queue_workers=queue_workers,
    )
    result = Fig8Result()
    keys = [(level, name) for level in levels for name in heuristics]
    result.series.update(outcome.series_map(keys))
    return result
