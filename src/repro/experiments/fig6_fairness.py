"""Figure 6 — evaluating the impact of the fairness factor.

Sweeps the PAMF fairness factor from 0 % (no fairness) to 25 % at the two
headline oversubscription levels and reports, for each point, the variance of
per-task-type completion percentages (lower = fairer) and the overall
robustness (printed above the bars in the paper's figure).  The paper finds a
5 % fairness factor buys a large fairness improvement for a few percentage
points of robustness, with diminishing returns beyond.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from pathlib import Path

from ..pruning.thresholds import PruningThresholds
from ..sweep import HeuristicSpec, PETSpec, SweepPoint, SweepSpec, run_sweep
from ..sweep.progress import ProgressCallback
from ..utils.tables import format_table
from .config import ExperimentConfig, workload_for_level
from .runner import SeriesResult

__all__ = ["Fig6Result", "run_fig6", "DEFAULT_FAIRNESS_FACTORS"]

#: Fairness factors examined in the paper (0 % .. 25 %).
DEFAULT_FAIRNESS_FACTORS: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)

#: Oversubscription levels shown in Figure 6.
DEFAULT_LEVELS: tuple[str, ...] = ("19k", "34k")


@dataclass
class Fig6Result:
    """Fairness variance and robustness per (level, fairness factor)."""

    series: dict[tuple[str, float], SeriesResult] = field(default_factory=dict)

    def fairness_variance(self, level: str, factor: float) -> float:
        return self.series[(level, round(factor, 4))].fairness_variance().mean

    def robustness(self, level: str, factor: float) -> float:
        return self.series[(level, round(factor, 4))].mean_robustness()

    def factors(self, level: str) -> list[float]:
        return sorted(f for (lvl, f) in self.series if lvl == level)

    def rows(self) -> list[list[object]]:
        rows = []
        for (level, factor), series in sorted(self.series.items()):
            rows.append(
                [
                    level,
                    factor * 100,
                    series.fairness_variance().mean,
                    series.robustness().mean,
                    series.robustness().ci95,
                ]
            )
        return rows

    def to_text(self) -> str:
        return "Figure 6 — fairness factor sweep (PAMF)\n" + format_table(
            ["level", "fairness factor %", "variance of type completion %", "robustness %", "ci95"],
            self.rows(),
        )


def run_fig6(
    config: ExperimentConfig | None = None,
    *,
    levels: Sequence[str] = DEFAULT_LEVELS,
    fairness_factors: Sequence[float] = DEFAULT_FAIRNESS_FACTORS,
    thresholds: PruningThresholds | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: ProgressCallback | None = None,
    backend: str | None = None,
    queue_dir: str | Path | None = None,
    queue_workers: int | None = None,
) -> Fig6Result:
    """Regenerate Figure 6 (fairness/robustness trade-off of PAMF)."""
    config = config or ExperimentConfig()
    thresholds = thresholds or PruningThresholds()
    pet = PETSpec(kind="spec", seed=config.seed)
    keys: list[tuple[str, float]] = []
    points: list[SweepPoint] = []
    for level in levels:
        workload = workload_for_level(level, config)
        for factor in fairness_factors:
            keys.append((level, round(factor, 4)))
            points.append(
                SweepPoint(
                    label=f"{level},factor={factor:.0%}",
                    pet=pet,
                    heuristic=HeuristicSpec(
                        name="PAMF", thresholds=thresholds, fairness_factor=factor
                    ),
                    workload=workload,
                    config=config,
                )
            )
    outcome = run_sweep(
        SweepSpec(points=tuple(points)),
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        backend=backend,
        queue_dir=queue_dir,
        queue_workers=queue_workers,
    )
    result = Fig6Result()
    result.series.update(outcome.series_map(keys))
    return result
