"""Figure 7 — robustness of PAM/PAMF against the baseline heuristics.

Runs all six heuristics at the two headline oversubscription levels and
reports the percentage of tasks completing on time.  The paper's shape: PAM
is the clear winner, PAMF trades some robustness for fairness and lands near
MOC (the strongest baseline), MM trails far behind, and MSD/MMU collapse
because they keep prioritising the tasks least likely to succeed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from pathlib import Path

from ..heuristics.registry import HEURISTIC_NAMES
from ..pruning.thresholds import PruningThresholds
from ..sweep import HeuristicSpec, PETSpec, SweepSpec, run_sweep
from ..sweep.progress import ProgressCallback
from ..utils.tables import format_table
from .config import ExperimentConfig, workload_for_level
from .runner import SeriesResult

__all__ = ["Fig7Result", "run_fig7"]

DEFAULT_LEVELS: tuple[str, ...] = ("19k", "34k")


@dataclass
class Fig7Result:
    """Robustness per (oversubscription level, heuristic)."""

    series: dict[tuple[str, str], SeriesResult] = field(default_factory=dict)

    def robustness(self, level: str, heuristic: str) -> float:
        return self.series[(level, heuristic)].mean_robustness()

    def heuristics(self) -> list[str]:
        return sorted({h for _, h in self.series})

    def levels(self) -> list[str]:
        return sorted({lvl for lvl, _ in self.series})

    def ranking(self, level: str) -> list[str]:
        """Heuristic names ordered from most to least robust at a level."""
        pairs = [(h, s.mean_robustness()) for (lvl, h), s in self.series.items() if lvl == level]
        return [h for h, _ in sorted(pairs, key=lambda item: -item[1])]

    def rows(self) -> list[list[object]]:
        rows = []
        for (level, heuristic), series in sorted(self.series.items()):
            summary = series.robustness()
            rows.append([level, heuristic, summary.mean, summary.ci95])
        return rows

    def to_text(self) -> str:
        return "Figure 7 — robustness comparison of mapping heuristics\n" + format_table(
            ["level", "heuristic", "robustness %", "ci95"], self.rows()
        )


def run_fig7(
    config: ExperimentConfig | None = None,
    *,
    levels: Sequence[str] = DEFAULT_LEVELS,
    heuristics: Sequence[str] = HEURISTIC_NAMES,
    thresholds: PruningThresholds | None = None,
    fairness_factor: float = 0.05,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: ProgressCallback | None = None,
    backend: str | None = None,
    queue_dir: str | Path | None = None,
    queue_workers: int | None = None,
) -> Fig7Result:
    """Regenerate Figure 7 (robustness of all heuristics at both levels)."""
    config = config or ExperimentConfig()
    levels = list(dict.fromkeys(levels))
    heuristics = list(dict.fromkeys(heuristics))
    spec = SweepSpec.from_grid(
        pet=PETSpec(kind="spec", seed=config.seed),
        heuristics={
            name: HeuristicSpec(
                name=name, thresholds=thresholds, fairness_factor=fairness_factor
            )
            for name in heuristics
        },
        workloads={level: workload_for_level(level, config) for level in levels},
        config=config,
    )
    outcome = run_sweep(
        spec,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        backend=backend,
        queue_dir=queue_dir,
        queue_workers=queue_workers,
    )
    result = Fig7Result()
    keys = [(level, name) for level in levels for name in heuristics]
    result.series.update(outcome.series_map(keys))
    return result
