"""Figure 4 — dynamic engagement of probabilistic task dropping.

Sweeps the EWMA weight (lambda of Eq. 8) used by the oversubscription
detector and compares a plain single-threshold toggle ("default") against the
Schmitt-trigger toggle, under high oversubscription, with the PAM heuristic.
The paper observes that robustness grows with lambda (immediate reaction to
misses) and that the Schmitt trigger beats the single threshold; lambda = 0.9
is selected for the remaining experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from pathlib import Path

from ..pruning.thresholds import PruningThresholds
from ..sweep import HeuristicSpec, PETSpec, SweepPoint, SweepSpec, run_sweep
from ..sweep.progress import ProgressCallback
from ..utils.tables import format_table
from .config import ExperimentConfig, workload_for_level
from .runner import SeriesResult

__all__ = ["Fig4Result", "run_fig4", "DEFAULT_LAMBDAS"]

#: Lambda values swept in the paper (0.1 .. 1.0).
DEFAULT_LAMBDAS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: The two toggle modes compared in Figure 4.
TOGGLE_MODES: tuple[str, ...] = ("default", "schmitt")


@dataclass
class Fig4Result:
    """Robustness for every (lambda, toggle mode) combination."""

    level: str
    series: dict[tuple[float, str], SeriesResult] = field(default_factory=dict)

    def robustness(self, lam: float, mode: str) -> float:
        return self.series[(lam, mode)].mean_robustness()

    def best_lambda(self, mode: str = "schmitt") -> float:
        candidates = [(lam, s.mean_robustness()) for (lam, m), s in self.series.items() if m == mode]
        return max(candidates, key=lambda item: item[1])[0]

    def rows(self) -> list[list[object]]:
        lambdas = sorted({lam for lam, _ in self.series})
        rows = []
        for lam in lambdas:
            row: list[object] = [lam]
            for mode in TOGGLE_MODES:
                summary = self.series[(lam, mode)].robustness()
                row.extend([summary.mean, summary.ci95])
            rows.append(row)
        return rows

    def to_text(self) -> str:
        header = ["lambda"]
        for mode in TOGGLE_MODES:
            header.extend([f"{mode} robustness %", f"{mode} ci95"])
        return (
            f"Figure 4 — robustness vs lambda (oversubscription level {self.level})\n"
            + format_table(header, self.rows())
        )


def run_fig4(
    config: ExperimentConfig | None = None,
    *,
    level: str = "34k",
    lambdas: Sequence[float] = DEFAULT_LAMBDAS,
    thresholds: PruningThresholds | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: ProgressCallback | None = None,
    backend: str | None = None,
    queue_dir: str | Path | None = None,
    queue_workers: int | None = None,
) -> Fig4Result:
    """Regenerate Figure 4's two curves (via the sweep subsystem)."""
    config = config or ExperimentConfig()
    thresholds = thresholds or PruningThresholds()
    pet = PETSpec(kind="spec", seed=config.seed)
    workload = workload_for_level(level, config)
    keys: list[tuple[float, str]] = []
    points: list[SweepPoint] = []
    for lam in lambdas:
        for mode in TOGGLE_MODES:
            separation = 0.2 if mode == "schmitt" else 0.0
            keys.append((lam, mode))
            points.append(
                SweepPoint(
                    label=f"lambda={lam:.1f},{mode}",
                    pet=pet,
                    heuristic=HeuristicSpec(
                        name="PAM",
                        thresholds=thresholds,
                        ewma_weight=lam,
                        schmitt_separation=separation,
                    ),
                    workload=workload,
                    config=config,
                )
            )
    outcome = run_sweep(
        SweepSpec(points=tuple(points)),
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        backend=backend,
        queue_dir=queue_dir,
        queue_workers=queue_workers,
    )
    result = Fig4Result(level=level)
    result.series.update(outcome.series_map(keys))
    return result
