"""Fast scoring primitives shared by the mapping heuristics.

Phase 1 of every batch heuristic evaluates each unmapped task against every
machine.  Doing a full completion-time convolution for each candidate pair
would dominate the simulation cost, so this module provides vectorised
shortcuts:

* :func:`fast_success_probability` computes P(start + execution <= deadline)
  directly from the machine-availability impulses and the execution-time
  CDF — mathematically identical to Eq. 1 on the convolved PMF but O(|avail|
  x 1) instead of O(|avail| x |exec|).
* :func:`expected_completion` uses linearity of expectation instead of
  convolving.

The expensive convolution is only performed once a pair is actually committed
to a virtual queue.
"""

from __future__ import annotations

import numpy as np

from ..core.pmf import DiscretePMF

__all__ = ["fast_success_probability", "expected_completion", "urgency"]


def fast_success_probability(
    exec_pmf: DiscretePMF, availability: DiscretePMF, deadline: int
) -> float:
    """Probability that a task mapped behind ``availability`` meets ``deadline``.

    Equivalent to convolving the availability and execution PMFs and applying
    Eq. 1, but computed as

        sum_t  P(available at t) * P(execution <= deadline - t)

    restricted to start times strictly before the deadline (a task starting
    at or after its deadline can never succeed because execution takes at
    least one time unit).
    """
    deadline = int(deadline)
    nz = np.nonzero(availability.probs)[0]
    if nz.size == 0:
        return 0.0
    start_times = availability.offset + nz
    start_probs = availability.probs[nz]
    usable = start_times < deadline
    if not np.any(usable):
        return 0.0
    start_times = start_times[usable]
    start_probs = start_probs[usable]

    exec_cdf = exec_pmf.cumulative()
    budgets = deadline - start_times - exec_pmf.offset
    # budgets < 0  -> no chance; budgets >= len -> certain (full exec mass)
    idx = np.clip(budgets, -1, exec_cdf.size - 1)
    completion_prob = np.where(idx >= 0, exec_cdf[np.maximum(idx, 0)], 0.0)
    return float(min(1.0, np.dot(start_probs, completion_prob)))


def expected_completion(exec_pmf: DiscretePMF, availability: DiscretePMF) -> float:
    """Expected completion time: E[availability] + E[execution]."""
    return float(availability.mean() + exec_pmf.mean())


def urgency(deadline: int, expected_completion_time: float) -> float:
    """MMU urgency U = 1 / (deadline - E[completion]) (Section VI-C3).

    Tasks whose expected completion already exceeds their deadline are the
    "least likely to succeed" tasks the paper criticises MMU for favouring;
    they are treated as maximally urgent (``inf``) so the reproduction keeps
    that behaviour.
    """
    gap = float(deadline) - float(expected_completion_time)
    if gap <= 0:
        return float("inf")
    return 1.0 / gap
