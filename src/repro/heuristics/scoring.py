"""Fast scoring primitives shared by the mapping heuristics.

Phase 1 of every batch heuristic evaluates each unmapped task against every
machine.  Doing a full completion-time convolution for each candidate pair
would dominate the simulation cost, so this module provides shortcuts:

* :func:`fast_success_probability` computes P(start + execution <= deadline)
  directly from the machine-availability impulses and the execution-time
  CDF — mathematically identical to Eq. 1 on the convolved PMF but O(|avail|
  x 1) instead of O(|avail| x |exec|).
* :func:`expected_completion` uses linearity of expectation instead of
  convolving.

Both are the *exact scalar counterparts* of the batched kernels in
:mod:`repro.core.batch`: they perform the same elementwise operations over
the same columns in the same order as a one-task, one-machine invocation of
:func:`~repro.core.batch.batched_success_probability` /
:func:`~repro.core.batch.batched_expected_completion` (sequential
``np.cumsum`` reduction included), so scoring one pair at a time or a whole
``(n_tasks, n_machines)`` grid at once produces bit-identical values — the
equivalence is pinned at ``atol=0`` by ``tests/core/test_batch.py``.
``ScoreTable`` in :mod:`repro.heuristics.base` uses the batched form; the
expensive convolution is only performed once a pair is actually committed
to a virtual queue.
"""

from __future__ import annotations

import numpy as np

from ..core.pmf import DiscretePMF

__all__ = ["fast_success_probability", "expected_completion", "urgency"]


def fast_success_probability(
    exec_pmf: DiscretePMF, availability: DiscretePMF, deadline: int
) -> float:
    """Probability that a task mapped behind ``availability`` meets ``deadline``.

    Equivalent to convolving the availability and execution PMFs and applying
    Eq. 1, but computed as

        sum_t  P(available at t) * P(execution <= deadline - t)

    restricted to start times strictly before the deadline (a task starting
    at or after its deadline can never succeed because execution takes at
    least one time unit).

    Parameters
    ----------
    exec_pmf:
        Execution-time PMF of the task's type on the candidate machine (a
        PET entry).
    availability:
        Availability PMF of the machine's (virtual) queue; may be
        sub-normalised or zero-mass.
    deadline:
        Absolute deadline of the task.

    Returns
    -------
    float
        Success probability in ``[0, 1]``; ``0.0`` for a zero-mass
        availability.

    Notes
    -----
    Exact scalar counterpart of
    :func:`repro.core.batch.batched_success_probability`: same elementwise
    values over the availability's non-zero columns in ascending time order,
    same strict left-to-right reduction — bit-identical to scoring the same
    pair inside any larger batch, without the batch's per-call setup cost.
    """
    deadline = int(deadline)
    nonzero = np.flatnonzero(availability.probs)
    if nonzero.size == 0:
        return 0.0
    start_times = availability.offset + nonzero
    start_probs = availability.probs[nonzero]
    cdf = exec_pmf.cumulative()
    budgets = deadline - start_times - exec_pmf.offset
    clipped = np.minimum(budgets, cdf.size - 1)
    usable = (start_times < deadline) & (clipped >= 0)
    contributions = np.where(usable, cdf[np.maximum(clipped, 0)], 0.0) * start_probs
    return float(min(1.0, np.cumsum(contributions)[-1]))


def expected_completion(exec_pmf: DiscretePMF, availability: DiscretePMF) -> float:
    """Expected completion time: E[availability] + E[execution].

    Parameters
    ----------
    exec_pmf:
        Execution-time PMF of the candidate (task type, machine) pair.
    availability:
        Availability PMF of the machine's (virtual) queue.

    Returns
    -------
    float
        ``availability.mean() + exec_pmf.mean()`` — linearity of
        expectation, no convolution needed; ``nan`` if either PMF carries no
        mass.

    Notes
    -----
    The batched counterpart is
    :func:`repro.core.batch.batched_expected_completion`, which adds the
    same two cached means per pair in the same order (hence bit-identical —
    IEEE addition of identical operands is deterministic).
    """
    return float(availability.mean() + exec_pmf.mean())


def urgency(deadline: int, expected_completion_time: float) -> float:
    """MMU urgency U = 1 / (deadline - E[completion]) (Section VI-C3).

    Parameters
    ----------
    deadline:
        Absolute deadline of the task.
    expected_completion_time:
        Expected completion time from :func:`expected_completion`.

    Returns
    -------
    float
        The urgency value; ``inf`` when the expected completion already
        meets or exceeds the deadline.

    Notes
    -----
    Tasks whose expected completion already exceeds their deadline are the
    "least likely to succeed" tasks the paper criticises MMU for favouring;
    they are treated as maximally urgent (``inf``) so the reproduction keeps
    that behaviour.
    """
    gap = float(deadline) - float(expected_completion_time)
    if gap <= 0:
        return float("inf")
    return 1.0 / gap
