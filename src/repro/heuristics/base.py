"""Two-phase batch mapping framework (paper Section V-D / VI-C).

All six heuristics evaluated in the paper share the same skeleton:

* a *virtual queue* mirrors the real machine queues during the mapping event;
* **phase 1** finds, for every unmapped task, the best machine according to
  the heuristic's objective (minimum expected completion time for MM/MSD/MMU,
  maximum robustness for MOC/PAM/PAMF);
* **phase 2** picks one provisional (task, machine) pair, commits it to the
  virtual queue, and the process repeats until the virtual queues are full or
  the batch queue is exhausted;
* pruning-aware heuristics additionally drop queued tasks before mapping and
  defer batch tasks whose best robustness is too low.

Subclasses only implement small hooks; the iteration, virtual-queue
bookkeeping and decision assembly live here.  Availability comes from the
engine's live :class:`~repro.simulator.state.SystemState`: machine chains
are maintained incrementally across mapping events, and
:class:`VirtualSystemState` is a cheap copy-on-write *fork* of that state —
each virtual machine starts as a reference to the live (immutable)
availability PMF and only diverges as phase 2 commits provisional
assignments.  Phase-1 scores are held in a :class:`ScoreTable` (robustness
and expected-completion matrices over task x machine) backed by the batched
PMF engine of :mod:`repro.core.batch`: the virtual availabilities form a
padded ``(n_machines, support)`` :class:`~repro.core.batch.PMFBatch` and
every candidate pair is scored in a single
:func:`~repro.core.batch.batched_success_probability` call — bit-identical
to the scalar :func:`~repro.heuristics.scoring.fast_success_probability`
per-pair path.  After each phase-2 commit only the *dirty column* (the
committed machine) is marked for rescoring, and the one-column refresh runs
lazily at the next phase-1 evaluation — the rest of the (task, machine)
grid is never touched.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Iterable

import numpy as np

from ..core.batch import PMFBatch
from ..core.completion import chain_step
from ..core.kernels import active_backend
from ..core.pmf import DiscretePMF
from ..obs.telemetry import active as obs_active
from ..pet.matrix import PETMatrix
from ..simulator.mapping import MappingContext, MappingDecision
from ..simulator.task import Task

__all__ = [
    "CandidatePair",
    "VirtualMachine",
    "VirtualSystemState",
    "ScoreTable",
    "MappingHeuristic",
    "TwoPhaseBatchHeuristic",
]


@dataclass
class CandidatePair:
    """A provisional (task, machine) pairing produced by phase 1."""

    task: Task
    machine_index: int
    #: Expected completion time of the task on the machine's virtual queue.
    expected_completion: float
    #: Probability of meeting the deadline on that virtual queue (robustness).
    robustness: float
    #: Mean execution time of the task's type on the machine (tie-breaker).
    mean_execution: float


@dataclass
class VirtualMachine:
    """Virtual-queue state of one machine during a mapping event."""

    index: int
    free_slots: int
    availability: DiscretePMF

    @property
    def has_free_slot(self) -> bool:
        return self.free_slots > 0


class VirtualSystemState:
    """Copy-on-write fork of the live system state for one mapping event.

    The virtual state *forks* the engine's incrementally-maintained
    :class:`~repro.simulator.state.SystemState`: each virtual machine starts
    with a reference to the live availability PMF (PMFs are immutable, so no
    copying happens) and only diverges when phase 2 commits an assignment —
    :meth:`assign` replaces that machine's reference with an extended chain,
    leaving the live state untouched.  Machines carrying pruner drops start
    from :meth:`~repro.simulator.mapping.MappingContext.availability_excluding`,
    which reuses the live chain prefix ahead of the first drop.  This is the
    "temporary (virtual) queue of machine-task mappings" of Section III.
    """

    def __init__(
        self,
        context: MappingContext,
        *,
        dropped_task_ids: frozenset[int] | set[int] = frozenset(),
        availability_override: dict[int, DiscretePMF] | None = None,
    ) -> None:
        self._context = context
        self._policy = context.policy
        self._pet: PETMatrix = context.pet
        self._max_impulses = context.max_impulses
        dropped = set(dropped_task_ids)
        override = availability_override or {}
        self.machines: list[VirtualMachine] = []
        for machine in context.machines:
            queued = machine.queued_tasks()
            kept = [t for t in queued if t.task_id not in dropped]
            free = machine.queue_capacity - len(kept)
            if machine.index in override:
                availability = override[machine.index]
            elif len(kept) == len(queued):
                availability = context.machine_availability(machine.index)
            else:
                availability = context.availability_excluding(machine.index, dropped)
            self.machines.append(VirtualMachine(machine.index, free, availability))

    # ------------------------------------------------------------------
    @property
    def total_free_slots(self) -> int:
        return sum(m.free_slots for m in self.machines)

    def machines_with_free_slots(self) -> list[VirtualMachine]:
        return [m for m in self.machines if m.has_free_slot]

    def availability(self, machine_index: int) -> DiscretePMF:
        return self.machines[machine_index].availability

    def assign(self, task: Task, machine_index: int) -> None:
        """Commit a provisional mapping to the virtual queue."""
        vm = self.machines[machine_index]
        if not vm.has_free_slot:
            raise RuntimeError(f"virtual machine {machine_index} has no free slot")
        pet_entry = self._pet.get(task.task_type, machine_index)
        vm.availability = chain_step(
            pet_entry, vm.availability, task.deadline, self._policy, self._max_impulses
        )
        vm.free_slots -= 1


class ScoreTable:
    """Batched phase-1 scores for every (batch task, machine) pair.

    ``robustness[i, j]`` is the probability that task ``i`` meets its
    deadline if mapped to machine ``j``'s current virtual queue (Eq. 1 on the
    availability x execution convolution, computed without materialising the
    convolution); ``completion[i, j]`` is the expected completion time.

    Both matrices are filled by one call into the batched PMF engine
    (:mod:`repro.core.batch`): the virtual availabilities become a padded
    ``(n_machines, support)`` :class:`PMFBatch` and
    :func:`batched_success_probability` scores the whole grid against the
    PET matrix's cached :class:`~repro.core.batch.CDFTable`.  Refreshes are
    *dirty-column driven*: after phase 2 commits an assignment the affected
    machine is merely marked dirty (:meth:`mark_dirty`) and the one-column
    rescore runs lazily at the next :meth:`best_pairs` call — several dirty
    columns flush through one batched kernel call, and a column dirtied
    after the final commit of an event is never rescored at all.  The
    values are bit-identical however columns are grouped.
    """

    def __init__(
        self,
        context: MappingContext,
        virtual: VirtualSystemState,
        tasks: list[Task],
    ) -> None:
        self._context = context
        self._pet = context.pet
        self._cdf_table = context.pet.cdf_table()
        self._virtual = virtual
        self._dirty: set[int] = set()
        self.tasks = list(tasks)
        self.n = len(self.tasks)
        self.m = len(context.machines)
        self.deadlines = np.array([t.deadline for t in self.tasks], dtype=np.int64)
        self.types = np.array([t.task_type for t in self.tasks], dtype=np.int64)
        self.active = np.ones(self.n, dtype=bool)
        self._index_of = {t.task_id: i for i, t in enumerate(self.tasks)}
        self.mean_execution = self._pet.mean_execution_times()[self.types, :]
        self.robustness = np.full((self.n, self.m), -1.0, dtype=np.float64)
        self.completion = np.full((self.n, self.m), np.inf, dtype=np.float64)
        self.machine_open = np.zeros(self.m, dtype=bool)
        obs = obs_active()
        if obs.enabled:
            start_ns = perf_counter_ns()
        self.refresh_machines((vm.index for vm in virtual.machines), virtual)
        if obs.enabled:
            obs.add_span(
                "score_table.fill",
                start_ns,
                perf_counter_ns() - start_ns,
                tasks=self.n,
                machines=self.m,
            )
            obs.count("score_table.fills")

    # ------------------------------------------------------------------
    def mark_dirty(self, machine_index: int) -> None:
        """Mark one machine's column stale after a phase-2 commit.

        The rescore is deferred until the next :meth:`best_pairs` call; a
        column that is never read again (e.g. dirtied by the last commit of
        a mapping event) is never recomputed.
        """
        self._dirty.add(int(machine_index))

    def _flush_dirty(self) -> None:
        """Rescore all dirty columns in one batched call."""
        if not self._dirty:
            return
        dirty = sorted(self._dirty)
        self._dirty.clear()
        obs = obs_active()
        if obs.enabled:
            start_ns = perf_counter_ns()
        self.refresh_machines(dirty, self._virtual)
        if obs.enabled:
            obs.add_span(
                "score_table.rescore",
                start_ns,
                perf_counter_ns() - start_ns,
                columns=len(dirty),
            )
            obs.count("score_table.rescores")
            obs.count("score_table.dirty_columns", len(dirty))

    def refresh_machines(
        self, machine_indices: Iterable[int], virtual: VirtualSystemState
    ) -> None:
        """Recompute the score columns of several machines in one batched call."""
        open_indices: list[int] = []
        for machine_index in machine_indices:
            self._dirty.discard(machine_index)
            if virtual.machines[machine_index].has_free_slot:
                self.machine_open[machine_index] = True
                open_indices.append(machine_index)
            else:
                self.machine_open[machine_index] = False
                self.robustness[:, machine_index] = -1.0
                self.completion[:, machine_index] = np.inf
        if not open_indices or self.n == 0:
            return
        availabilities = [virtual.machines[j].availability for j in open_indices]
        batch = PMFBatch.from_pmfs(availabilities)
        columns = np.array(open_indices, dtype=np.int64)
        kernels = active_backend()
        self.robustness[:, columns] = kernels.success_probability(
            batch, self._cdf_table, self.types, self.deadlines, machine_indices=columns
        )
        expected_start = np.array([a.mean() for a in availabilities], dtype=np.float64)
        completion = kernels.expected_completion(
            expected_start, self.mean_execution[:, columns]
        )
        # A zero-mass availability has no expected start time; such machines
        # can never complete anything (robustness is already exactly 0).
        completion[:, np.isnan(expected_start)] = np.inf
        self.completion[:, columns] = completion

    def refresh_machine(self, machine_index: int, virtual: VirtualSystemState) -> None:
        """Recompute one machine's scores against all tasks."""
        self.refresh_machines((machine_index,), virtual)

    def deactivate(self, task_ids) -> None:
        for task_id in task_ids:
            index = self._index_of.get(task_id)
            if index is not None:
                self.active[index] = False

    @property
    def any_active(self) -> bool:
        return bool(self.active.any())

    # ------------------------------------------------------------------
    def best_pairs(self, *, robustness_based: bool) -> list[CandidatePair]:
        """Phase 1: the best machine for every active task.

        One argmax/argmin over the batched score matrices picks every active
        task's machine at once; only the surviving (open-machine, finite
        completion) pairs are materialised as :class:`CandidatePair`.  Any
        columns dirtied by phase-2 commits since the previous call are
        rescored first (one batched kernel call for all of them).
        """
        self._flush_dirty()
        if not self.any_active or not self.machine_open.any():
            return []
        active_idx = np.nonzero(self.active)[0]
        robustness = self.robustness[active_idx, :]
        completion = self.completion[active_idx, :]
        mean_exec = self.mean_execution[active_idx, :]
        if robustness_based:
            primary = robustness
            best_primary = primary.max(axis=1)
            tie = primary == best_primary[:, None]
            tiebreak = np.where(tie, completion, np.inf)
            best_machine = tiebreak.argmin(axis=1)
        else:
            primary = completion
            best_primary = primary.min(axis=1)
            tie = primary == best_primary[:, None]
            tiebreak = np.where(tie, mean_exec, np.inf)
            best_machine = tiebreak.argmin(axis=1)
        chosen = np.arange(active_idx.size)
        valid = self.machine_open[best_machine] & np.isfinite(
            completion[chosen, best_machine]
        )
        return [
            CandidatePair(
                task=self.tasks[row],
                machine_index=int(machine_index),
                expected_completion=float(self.completion[row, machine_index]),
                robustness=float(self.robustness[row, machine_index]),
                mean_execution=float(self.mean_execution[row, machine_index]),
            )
            for row, machine_index in zip(
                active_idx[valid].tolist(), best_machine[valid].tolist()
            )
        ]


class MappingHeuristic(abc.ABC):
    """Interface the simulation engine drives at every mapping event."""

    #: Short display name used in experiment reports ("PAM", "MM", ...).
    name: str = "heuristic"

    @abc.abstractmethod
    def map_tasks(self, context: MappingContext) -> MappingDecision:
        """Return the assignments/drops/deferrals for one mapping event."""

    def reset(self) -> None:
        """Clear any cross-event state before a new simulation run."""


class TwoPhaseBatchHeuristic(MappingHeuristic):
    """Shared two-phase mapping loop; subclasses provide the selection rules."""

    #: Whether phase 1 scores pairs by robustness (True) or expected
    #: completion time (False).  Robustness-based heuristics still record the
    #: expected completion time for phase-2 tie-breaking.
    robustness_based: bool = False

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_event_start(self, context: MappingContext) -> None:
        """Called once per mapping event before anything else."""

    def pre_mapping(
        self, context: MappingContext, decision: MappingDecision
    ) -> tuple[set[int], dict[int, DiscretePMF] | None]:
        """Dropping stage hook.

        Returns the set of task ids dropped from machine queues (already
        recorded in ``decision``) plus, optionally, the post-drop machine
        availability PMFs so the virtual state can skip recomputation.
        """
        return set(), None

    def filter_candidates(
        self,
        pairs: list[CandidatePair],
        context: MappingContext,
        decision: MappingDecision,
    ) -> tuple[list[CandidatePair], set[int]]:
        """Deferring stage hook.

        Returns the pairs to keep plus the ids of tasks to defer (removed
        from this mapping event; they stay in the batch queue).
        """
        return pairs, set()

    @abc.abstractmethod
    def phase2_select(self, pairs: list[CandidatePair], context: MappingContext) -> CandidatePair:
        """Pick the provisional pair to commit this iteration."""

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def map_tasks(self, context: MappingContext) -> MappingDecision:
        decision = MappingDecision()
        self.on_event_start(context)
        dropped_ids, availability_override = self.pre_mapping(context, decision)
        virtual = VirtualSystemState(
            context,
            dropped_task_ids=dropped_ids,
            availability_override=availability_override,
        )
        tasks = list(context.batch)
        if not tasks or virtual.total_free_slots == 0:
            return decision
        table = ScoreTable(context, virtual, tasks)

        while table.any_active and virtual.total_free_slots > 0:
            pairs = table.best_pairs(robustness_based=self.robustness_based)
            if not pairs:
                break
            kept, deferred_ids = self.filter_candidates(pairs, context, decision)
            table.deactivate(deferred_ids)
            if not kept:
                if not deferred_ids:
                    break  # defensive: a filter must defer or keep something
                continue
            chosen = self.phase2_select(kept, context)
            decision.assign(chosen.task, chosen.machine_index)
            virtual.assign(chosen.task, chosen.machine_index)
            table.deactivate([chosen.task.task_id])
            table.mark_dirty(chosen.machine_index)
        return decision
