"""PAMF — the Fair Pruning Mapper (paper Section V-D2).

PAMF is PAM plus fairness across task types: a per-type *sufferage* value is
raised every time a task of that type misses its deadline (or is pruned) and
lowered every time one completes on time.  The sufferage value is subtracted
from the base pruning thresholds, so task types that have been suffering from
pruning get a relaxed threshold and are protected from further pruning.
"""

from __future__ import annotations

from ..pruning.fairness import SufferageTracker
from ..pruning.oversubscription import OversubscriptionDetector
from ..pruning.pruner import Pruner
from ..pruning.thresholds import PruningThresholds
from .pam import PruningAwareMapper

__all__ = ["FairPruningMapper"]


class FairPruningMapper(PruningAwareMapper):
    """The PAMF heuristic: PAM with sufferage-based threshold relaxation."""

    name = "PAMF"

    def __init__(
        self,
        num_task_types: int,
        thresholds: PruningThresholds | None = None,
        *,
        fairness_factor: float = 0.05,
        detector: OversubscriptionDetector | None = None,
        enable_dropping: bool = True,
        enable_deferring: bool = True,
    ) -> None:
        fairness = SufferageTracker(num_task_types, fairness_factor=fairness_factor)
        pruner = Pruner(
            thresholds or PruningThresholds(),
            detector=detector,
            fairness=fairness,
        )
        super().__init__(
            pruner=pruner,
            enable_dropping=enable_dropping,
            enable_deferring=enable_deferring,
        )
        self.fairness = fairness

    @property
    def fairness_factor(self) -> float:
        return self.fairness.fairness_factor
