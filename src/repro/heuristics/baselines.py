"""Baseline mapping heuristics (paper Section VI-C).

Four baselines from the literature are reproduced for the comparison figures:

* **MM** — MinCompletion-MinCompletion (the classic MinMin batch heuristic).
* **MSD** — MinCompletion-SoonestDeadline.
* **MMU** — MinCompletion-MaxUrgency.
* **MOC** — Max Ontime Completions, the robustness-based heuristic of
  Salehi et al. [20] that PAM is closest to (it culls tasks below a 30 %
  robustness threshold but never drops mapped tasks).

All of them reuse the two-phase framework of
:class:`repro.heuristics.base.TwoPhaseBatchHeuristic`; only phase-1 objective
and phase-2 selection differ.
"""

from __future__ import annotations

import itertools

from ..simulator.mapping import MappingContext, MappingDecision
from .base import CandidatePair, TwoPhaseBatchHeuristic
from .scoring import urgency

__all__ = [
    "MinCompletionMinCompletion",
    "MinCompletionSoonestDeadline",
    "MinCompletionMaxUrgency",
    "MaxOntimeCompletions",
]


class MinCompletionMinCompletion(TwoPhaseBatchHeuristic):
    """MM: phase 1 minimum expected completion, phase 2 minimum completion.

    Ties in phase 2 are broken by the shortest mean execution time, matching
    the paper's description of the widely used MinMin heuristic.
    """

    name = "MM"
    robustness_based = False

    def phase2_select(self, pairs: list[CandidatePair], context: MappingContext) -> CandidatePair:
        return min(pairs, key=lambda p: (p.expected_completion, p.mean_execution, p.task.task_id))


class MinCompletionSoonestDeadline(TwoPhaseBatchHeuristic):
    """MSD: phase 1 as MM, phase 2 picks the task with the soonest deadline."""

    name = "MSD"
    robustness_based = False

    def phase2_select(self, pairs: list[CandidatePair], context: MappingContext) -> CandidatePair:
        return min(
            pairs,
            key=lambda p: (p.task.deadline, p.expected_completion, p.task.task_id),
        )


class MinCompletionMaxUrgency(TwoPhaseBatchHeuristic):
    """MMU: phase 1 as MM, phase 2 picks the pair with the greatest urgency.

    Urgency is ``1 / (deadline - E[completion])``; pairs whose expected
    completion already exceeds the deadline are treated as maximally urgent,
    which reproduces the behaviour the paper criticises (MMU keeps picking
    tasks that are least likely to succeed).
    """

    name = "MMU"
    robustness_based = False

    def phase2_select(self, pairs: list[CandidatePair], context: MappingContext) -> CandidatePair:
        return max(
            pairs,
            key=lambda p: (
                urgency(p.task.deadline, p.expected_completion),
                -p.expected_completion,
                -p.task.task_id,
            ),
        )


class MaxOntimeCompletions(TwoPhaseBatchHeuristic):
    """MOC: robustness-based baseline of Salehi et al. [20].

    Phase 1 pairs every task with the machine offering the highest
    robustness.  A culling phase removes (for this mapping event) the tasks
    that cannot reach the 30 % robustness threshold on any machine.  The last
    phase examines the three most robust provisional pairs, permutes their
    assignment order, and commits the first assignment of the order that
    maximises the summed robustness.
    """

    name = "MOC"
    robustness_based = True

    def __init__(self, *, culling_threshold: float = 0.30, permutation_depth: int = 3) -> None:
        if not 0.0 <= culling_threshold <= 1.0:
            raise ValueError("culling threshold must lie in [0, 1]")
        if permutation_depth < 1:
            raise ValueError("permutation depth must be at least one")
        self.culling_threshold = float(culling_threshold)
        self.permutation_depth = int(permutation_depth)

    def filter_candidates(
        self,
        pairs: list[CandidatePair],
        context: MappingContext,
        decision: MappingDecision,
    ) -> tuple[list[CandidatePair], set[int]]:
        kept = [p for p in pairs if p.robustness >= self.culling_threshold]
        culled = {p.task.task_id for p in pairs if p.robustness < self.culling_threshold}
        return kept, culled

    def phase2_select(self, pairs: list[CandidatePair], context: MappingContext) -> CandidatePair:
        top = sorted(pairs, key=lambda p: (-p.robustness, p.expected_completion, p.task.task_id))
        top = top[: self.permutation_depth]
        if len(top) == 1:
            return top[0]
        best_order: tuple[CandidatePair, ...] | None = None
        best_score = float("-inf")
        for order in itertools.permutations(top):
            # Approximate the interaction between the top pairs: a pair whose
            # machine was already taken earlier in the order contributes a
            # discounted robustness (it would be queued behind the earlier
            # assignment).
            used: dict[int, int] = {}
            score = 0.0
            for pair in order:
                depth = used.get(pair.machine_index, 0)
                score += pair.robustness / (depth + 1)
                used[pair.machine_index] = depth + 1
            if score > best_score:
                best_score = score
                best_order = order
        assert best_order is not None
        return best_order[0]
