"""Registry of the mapping heuristics evaluated in the paper.

The experiment drivers refer to heuristics by their paper names ("PAM",
"PAMF", "MOC", "MM", "MSD", "MMU"); :func:`make_heuristic` builds a fresh,
independently configured instance for each simulation trial.
"""

from __future__ import annotations

from typing import Callable

from ..pruning.thresholds import PruningThresholds
from .base import MappingHeuristic
from .baselines import (
    MaxOntimeCompletions,
    MinCompletionMaxUrgency,
    MinCompletionMinCompletion,
    MinCompletionSoonestDeadline,
)
from .pam import PruningAwareMapper
from .pamf import FairPruningMapper

__all__ = ["HEURISTIC_NAMES", "make_heuristic"]

#: Paper names of all evaluated heuristics, in the order of Figure 7's legend.
HEURISTIC_NAMES: tuple[str, ...] = ("PAM", "PAMF", "MOC", "MM", "MSD", "MMU")


def make_heuristic(
    name: str,
    *,
    num_task_types: int | None = None,
    thresholds: PruningThresholds | None = None,
    fairness_factor: float = 0.05,
    **kwargs,
) -> MappingHeuristic:
    """Build a heuristic by its paper name.

    Parameters
    ----------
    name:
        One of :data:`HEURISTIC_NAMES` (case-insensitive).
    num_task_types:
        Required for ``PAMF`` (the sufferage tracker is per task type).
    thresholds:
        Pruning thresholds for ``PAM``/``PAMF`` (defaults to the paper's
        50 % dropping / 90 % deferring configuration).
    fairness_factor:
        PAMF fairness factor (paper default 5 %).
    kwargs:
        Extra keyword arguments forwarded to the heuristic constructor.
    """
    key = name.strip().upper()
    simple: dict[str, Callable[[], MappingHeuristic]] = {
        "MM": MinCompletionMinCompletion,
        "MSD": MinCompletionSoonestDeadline,
        "MMU": MinCompletionMaxUrgency,
    }
    if key in simple:
        return simple[key](**kwargs)
    if key == "MOC":
        return MaxOntimeCompletions(**kwargs)
    if key == "PAM":
        return PruningAwareMapper(thresholds, **kwargs)
    if key == "PAMF":
        if num_task_types is None:
            raise ValueError("PAMF requires num_task_types for its sufferage tracker")
        return FairPruningMapper(
            num_task_types,
            thresholds,
            fairness_factor=fairness_factor,
            **kwargs,
        )
    raise KeyError(f"unknown heuristic {name!r}; expected one of {HEURISTIC_NAMES}")
