"""Mapping heuristics: the paper's PAM/PAMF and the four baselines."""

from .base import (
    CandidatePair,
    MappingHeuristic,
    TwoPhaseBatchHeuristic,
    VirtualMachine,
    VirtualSystemState,
)
from .baselines import (
    MaxOntimeCompletions,
    MinCompletionMaxUrgency,
    MinCompletionMinCompletion,
    MinCompletionSoonestDeadline,
)
from .pam import PruningAwareMapper
from .pamf import FairPruningMapper
from .registry import HEURISTIC_NAMES, make_heuristic
from .scoring import expected_completion, fast_success_probability, urgency

__all__ = [
    "MappingHeuristic",
    "TwoPhaseBatchHeuristic",
    "CandidatePair",
    "VirtualMachine",
    "VirtualSystemState",
    "MinCompletionMinCompletion",
    "MinCompletionSoonestDeadline",
    "MinCompletionMaxUrgency",
    "MaxOntimeCompletions",
    "PruningAwareMapper",
    "FairPruningMapper",
    "HEURISTIC_NAMES",
    "make_heuristic",
    "fast_success_probability",
    "expected_completion",
    "urgency",
]
