"""PAM — the Pruning Aware Mapper (paper Section V-D1).

PAM is the paper's primary contribution: a robustness-based two-phase batch
heuristic wired to the probabilistic pruning mechanism.

At every mapping event PAM:

1. updates the oversubscription detector (Eq. 8 + Schmitt trigger) with the
   deadline misses observed since the previous event;
2. if the system is oversubscribed, walks every machine queue head-first and
   drops tasks whose success probability is at or below their dynamically
   adjusted dropping threshold (Eq. 7);
3. pairs every batch task with the machine giving it the highest robustness
   (phase 1), deferring tasks whose best robustness fails the deferring
   threshold;
4. commits, per iteration, the pair with the lowest expected completion time
   (phase 2), breaking ties by the shortest expected execution time.
"""

from __future__ import annotations

from ..core.pmf import DiscretePMF
from ..pruning.oversubscription import OversubscriptionDetector
from ..pruning.pruner import Pruner
from ..pruning.thresholds import PruningThresholds
from ..simulator.mapping import MappingContext, MappingDecision
from .base import CandidatePair, TwoPhaseBatchHeuristic

__all__ = ["PruningAwareMapper"]


class PruningAwareMapper(TwoPhaseBatchHeuristic):
    """The PAM heuristic (pruning mechanism + robustness-based mapping)."""

    name = "PAM"
    robustness_based = True

    def __init__(
        self,
        thresholds: PruningThresholds | None = None,
        *,
        detector: OversubscriptionDetector | None = None,
        pruner: Pruner | None = None,
        enable_dropping: bool = True,
        enable_deferring: bool = True,
    ) -> None:
        if pruner is not None:
            self.pruner = pruner
        else:
            self.pruner = Pruner(thresholds or PruningThresholds(), detector=detector)
        #: Ablation switches (used by the design-choice benchmarks).
        self.enable_dropping = bool(enable_dropping)
        self.enable_deferring = bool(enable_deferring)
        self._dropping_engaged = False

    # ------------------------------------------------------------------
    @property
    def thresholds(self) -> PruningThresholds:
        return self.pruner.thresholds

    def reset(self) -> None:
        self.pruner.reset()
        self._dropping_engaged = False

    # ------------------------------------------------------------------
    # Pruning hooks
    # ------------------------------------------------------------------
    def on_event_start(self, context: MappingContext) -> None:
        self._dropping_engaged = self.pruner.observe_mapping_event(context)

    def pre_mapping(
        self, context: MappingContext, decision: MappingDecision
    ) -> tuple[set[int], dict[int, DiscretePMF] | None]:
        if not (self.enable_dropping and self._dropping_engaged):
            return set(), None
        drops, availability = self.pruner.select_queue_drops(context)
        for drop in drops:
            decision.queue_drops.append(drop)
        return {d.task_id for d in drops}, availability

    def filter_candidates(
        self,
        pairs: list[CandidatePair],
        context: MappingContext,
        decision: MappingDecision,
    ) -> tuple[list[CandidatePair], set[int]]:
        if not self.enable_deferring:
            return pairs, set()
        kept: list[CandidatePair] = []
        deferred: set[int] = set()
        for pair in pairs:
            if self.pruner.should_defer(pair.robustness, pair.task.task_type):
                deferred.add(pair.task.task_id)
                decision.defer(pair.task)
            else:
                kept.append(pair)
        return kept, deferred

    # ------------------------------------------------------------------
    def phase2_select(self, pairs: list[CandidatePair], context: MappingContext) -> CandidatePair:
        return min(
            pairs,
            key=lambda p: (p.expected_completion, p.mean_execution, p.task.task_id),
        )
