"""repro.sweep — parallel experiment orchestration with result caching.

The subsystem splits experiment execution into three declarative layers:

* :mod:`repro.sweep.spec` — :class:`SweepSpec`/:class:`SweepPoint` describe a
  (heuristic x workload x simulator-config) grid as plain data with
  deterministic per-point seed derivation;
* :mod:`repro.sweep.executor` — :class:`ParallelExecutor`/:func:`run_sweep`
  fan trials out over a process pool (``jobs=1`` falls back to the serial
  loop, bit-identical to the historical ``run_series``);
* :mod:`repro.sweep.cache` — :class:`ResultCache` persists per-point results
  as content-addressed JSON artefacts so repeated or interrupted sweeps
  resume without re-simulating.

Quickstart::

    from repro.experiments.config import ExperimentConfig, workload_for_level
    from repro.sweep import HeuristicSpec, PETSpec, SweepSpec, run_sweep

    config = ExperimentConfig(trials=4)
    spec = SweepSpec.from_grid(
        pet=PETSpec(kind="spec", seed=config.seed),
        heuristics={name: HeuristicSpec(name) for name in ("PAM", "MM")},
        workloads={"34k": workload_for_level("34k", config)},
        config=config,
    )
    outcome = run_sweep(spec, jobs=4, cache_dir="results/cache")
    for series in outcome.series():
        print(series.label, series.mean_robustness())
"""

from .backends import (
    BACKEND_NAMES,
    Backend,
    ProcessBackend,
    QueueBackend,
    QueueTaskError,
    SerialBackend,
    TrialResult,
    TrialTask,
    make_backend,
)
from .cache import CacheEntry, CacheStats, ResultCache
from .executor import (
    ParallelExecutor,
    SweepOutcome,
    execute_point,
    execute_trials,
    pet_for,
    run_sweep,
    trace_for,
)
from .progress import PointReport, StreamReporter, format_heartbeat
from .queue import (
    ClaimedTask,
    QueueStatus,
    QueueTask,
    WorkerLease,
    WorkQueue,
    task_key_for,
    worker_id,
)
from .spec import (
    CACHE_SCHEMA_VERSION,
    HeuristicSpec,
    PETSpec,
    SweepPoint,
    SweepSpec,
    TraceSpec,
    cache_key,
    point_payload,
    spawn_trial_seeds,
)
from .trial import TrialMetrics, execute_trial
from .worker import run_worker

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "CACHE_SCHEMA_VERSION",
    "CacheEntry",
    "CacheStats",
    "ClaimedTask",
    "HeuristicSpec",
    "PETSpec",
    "ParallelExecutor",
    "PointReport",
    "ProcessBackend",
    "QueueBackend",
    "QueueStatus",
    "QueueTask",
    "QueueTaskError",
    "ResultCache",
    "SerialBackend",
    "StreamReporter",
    "SweepOutcome",
    "SweepPoint",
    "SweepSpec",
    "TraceSpec",
    "TrialMetrics",
    "TrialResult",
    "TrialTask",
    "WorkQueue",
    "WorkerLease",
    "cache_key",
    "execute_point",
    "execute_trial",
    "execute_trials",
    "format_heartbeat",
    "make_backend",
    "pet_for",
    "point_payload",
    "run_sweep",
    "run_worker",
    "spawn_trial_seeds",
    "task_key_for",
    "trace_for",
    "worker_id",
]
