"""Content-addressed on-disk cache of sweep-point results.

Artefacts are JSON files named by the point's content address
(:func:`repro.sweep.spec.cache_key`), sharded into 256 two-hex-digit
subdirectories.  Because the address covers every config field, the seed,
and the scoring-kernel version tag (:data:`repro.core.batch.KERNEL_VERSION`
— bumped whenever kernel semantics could change simulated values), a lookup
is either an exact replay of a previous run or a miss — there is no
invalidation protocol.  Writes go through a temporary file plus
``os.replace`` so an interrupted sweep never leaves a truncated artefact
that would poison later runs.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from .spec import CACHE_SCHEMA_VERSION, SweepPoint, point_payload
from .trial import TrialMetrics

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss/store counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


@dataclass
class ResultCache:
    """JSON artefact store keyed by sweep-point content address."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    def path_for(self, point: SweepPoint) -> Path:
        key = point.cache_key()
        return self.root / key[:2] / f"{key}.json"

    def load(self, point: SweepPoint) -> list[TrialMetrics] | None:
        """Return the point's cached trials, or ``None`` on any miss.

        Unreadable or structurally wrong artefacts count as misses rather
        than errors: the sweep re-executes the point and overwrites them.
        """
        path = self.path_for(point)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            trials = [TrialMetrics.from_payload(t) for t in payload["trials"]]
            if len(trials) != point.config.trials:
                raise ValueError("trial count mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return trials

    def store(self, point: SweepPoint, trials: list[TrialMetrics]) -> Path:
        """Atomically persist one point's trials; returns the artefact path."""
        path = self.path_for(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": point.cache_key(),
            "label": point.label,
            "point": point_payload(point),
            "trials": [t.to_payload() for t in trials],
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path
