"""Content-addressed on-disk cache of sweep-point results.

Artefacts are JSON files named by the point's content address
(:func:`repro.sweep.spec.cache_key`), sharded into 256 two-hex-digit
subdirectories.  Because the address covers every config field, the seed,
and the scoring-kernel version tag (:data:`repro.core.batch.KERNEL_VERSION`
— bumped whenever kernel semantics could change simulated values), a lookup
is either an exact replay of a previous run or a miss — there is no
invalidation protocol.  Writes go through a temporary file plus
``os.replace`` so an interrupted sweep never leaves a truncated artefact
that would poison later runs.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..core.kernels import parse_kernel_tag
from .spec import CACHE_SCHEMA_VERSION, SweepPoint, point_payload
from .trial import TrialMetrics

__all__ = ["CacheEntry", "CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss/store counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


@dataclass(frozen=True)
class CacheEntry:
    """On-disk metadata of one cached artefact (for ``repro cache``).

    ``kernel_version`` is the artefact's recorded engine tag: the bare
    kernel version (a plain integer for every pre-PR-8 artefact and for the
    ``numpy`` reference backend) or the composite ``"<version>+<backend>"``
    string of an accelerator backend — see
    :func:`repro.core.kernels.kernel_cache_tag`.  It is ``None`` for
    artefacts too corrupt to parse; those can never become hits and are
    garbage-collectable regardless of the kernel version being kept.
    """

    path: Path
    size_bytes: int
    key: str
    label: str | None
    kernel_version: str | int | None
    trials: int

    @property
    def readable(self) -> bool:
        return self.kernel_version is not None

    @property
    def kernel_release(self) -> str | None:
        """Version part of the engine tag (``"3"`` for both ``3`` and ``"3+numba"``)."""
        if self.kernel_version is None:
            return None
        return parse_kernel_tag(self.kernel_version)[0]

    @property
    def kernel_backend(self) -> str | None:
        """Backend part of the engine tag (bare tags denote ``"numpy"``)."""
        if self.kernel_version is None:
            return None
        return parse_kernel_tag(self.kernel_version)[1]


@dataclass
class ResultCache:
    """JSON artefact store keyed by sweep-point content address."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    def path_for(self, point: SweepPoint) -> Path:
        key = point.cache_key()
        return self.root / key[:2] / f"{key}.json"

    def load(self, point: SweepPoint) -> list[TrialMetrics] | None:
        """Return the point's cached trials, or ``None`` on any miss.

        Unreadable or structurally wrong artefacts count as misses rather
        than errors: the sweep re-executes the point and overwrites them.
        """
        path = self.path_for(point)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            trials = [TrialMetrics.from_payload(t) for t in payload["trials"]]
            if len(trials) != point.config.trials:
                raise ValueError("trial count mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return trials

    def store(self, point: SweepPoint, trials: list[TrialMetrics]) -> Path:
        """Atomically persist one point's trials; returns the artefact path."""
        path = self.path_for(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": point.cache_key(),
            "label": point.label,
            "point": point_payload(point),
            "trials": [t.to_payload() for t in trials],
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------
    # Maintenance / observation (``repro cache stats|gc``).
    def entries(self) -> Iterator[CacheEntry]:
        """Walk every artefact on disk (corrupt ones flagged, not skipped)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            key = path.stem
            label = None
            kernel: str | int | None = None
            trials = 0
            try:
                size = path.stat().st_size
            except OSError:
                continue  # vanished under a concurrent gc/drain — skip
            try:
                payload = json.loads(path.read_text())
                label = payload.get("label")
                kernel = payload["point"]["engine"]
                trials = len(payload["trials"])
            except (OSError, ValueError, KeyError, TypeError):
                kernel = None
            yield CacheEntry(
                path=path,
                size_bytes=size,
                key=key,
                label=label,
                kernel_version=kernel,
                trials=trials,
            )

    def disk_stats(self) -> dict[str, object]:
        """Aggregate entry count, bytes, and per-kernel-tag breakdown.

        ``kernel_versions`` groups by the full engine tag (composite tags
        such as ``"3+numba"`` are distinct buckets from the bare reference
        ``"3"``); ``backends`` rolls the same entries up by backend part,
        with pre-PR-8 bare integer tags counted under ``"numpy"``.
        """
        entries = bytes_total = corrupt = 0
        kernels: dict[str, int] = {}
        backends: dict[str, int] = {}
        for entry in self.entries():
            entries += 1
            bytes_total += entry.size_bytes
            if entry.readable:
                kernels[str(entry.kernel_version)] = (
                    kernels.get(str(entry.kernel_version), 0) + 1
                )
                backends[entry.kernel_backend] = (
                    backends.get(entry.kernel_backend, 0) + 1
                )
            else:
                corrupt += 1
        return {
            "entries": entries,
            "bytes": bytes_total,
            "kernel_versions": dict(sorted(kernels.items())),
            "backends": dict(sorted(backends.items())),
            "corrupt": corrupt,
        }

    def gc(
        self,
        *,
        keep_kernel_version: str | int,
        keep_backend: str | None = None,
        dry_run: bool = False,
    ) -> tuple[int, int]:
        """Drop artefacts from stale kernel versions (and corrupt files).

        Returns ``(removed_entries, removed_bytes)``.  ``keep_kernel_version``
        matches on the *version part* of each artefact's engine tag, so the
        backward-compatible bare form (``keep_kernel_version=3``, the
        pre-PR-8 interface) keeps version-3 artefacts from **every**
        backend — other-backend entries are stale-by-version like any other
        tag mismatch, never treated as corrupt.  Passing a composite tag
        (``"3+numba"``) or an explicit ``keep_backend`` additionally
        restricts the survivors to that backend.
        """
        keep_version, _, tag_backend = str(keep_kernel_version).partition("+")
        if keep_backend is None and tag_backend:
            keep_backend = tag_backend
        removed = removed_bytes = 0
        for entry in self.entries():
            if (
                entry.readable
                and entry.kernel_release == keep_version
                and (keep_backend is None or entry.kernel_backend == keep_backend)
            ):
                continue
            removed += 1
            removed_bytes += entry.size_bytes
            if not dry_run:
                entry.path.unlink(missing_ok=True)
        return removed, removed_bytes
