"""Streaming progress reports for sweep runs.

The executor emits one :class:`PointReport` per completed sweep point (cache
hits included, flagged as such).  A *reporter* is any callable accepting the
report; :class:`StreamReporter` renders human-readable lines, and the default
``None`` keeps programmatic runs silent.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import IO, Callable, Optional

from .trial import TrialMetrics

__all__ = ["PointReport", "ProgressCallback", "StreamReporter"]


@dataclass(frozen=True)
class PointReport:
    """Summary of one finished sweep point, streamed as the sweep runs."""

    index: int
    total: int
    label: str
    key: str
    cached: bool
    trials: int
    mean_robustness: float
    seconds: float

    @classmethod
    def from_trials(
        cls,
        trials: list[TrialMetrics],
        *,
        index: int,
        total: int,
        label: str,
        key: str,
        cached: bool,
        seconds: float,
    ) -> "PointReport":
        mean = (
            sum(t.robustness_percent for t in trials) / len(trials) if trials else float("nan")
        )
        return cls(
            index=index,
            total=total,
            label=label,
            key=key,
            cached=cached,
            trials=len(trials),
            mean_robustness=mean,
            seconds=seconds,
        )


ProgressCallback = Callable[[PointReport], None]


class StreamReporter:
    """Writes one aligned line per finished point to a text stream."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def __call__(self, report: PointReport) -> None:
        source = "cache" if report.cached else f"{report.seconds:5.1f}s"
        self._stream.write(
            f"[{report.index + 1:>3}/{report.total}] {report.label:<32} "
            f"robustness {report.mean_robustness:6.2f}%  "
            f"({report.trials} trials, {source})\n"
        )
        self._stream.flush()
