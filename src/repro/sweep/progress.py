"""Streaming progress reports for sweep runs.

The executor emits one :class:`PointReport` per completed sweep point (cache
hits included, flagged as such).  A *reporter* is any callable accepting the
report; :class:`StreamReporter` renders human-readable lines, and the default
``None`` keeps programmatic runs silent.

A reporter may additionally expose a ``heartbeat(status)`` method; the queue
backend calls it periodically with a
:class:`~repro.sweep.queue.QueueStatus` snapshot, so a sweep waiting on
detached workers renders who is working remotely and how far along the
queue is.  Reporters without the method (including plain callables like
``list.append``) simply never see heartbeats.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Callable, Optional

from .trial import TrialMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .queue import QueueStatus

__all__ = ["PointReport", "ProgressCallback", "StreamReporter", "format_heartbeat"]


@dataclass(frozen=True)
class PointReport:
    """Summary of one finished sweep point, streamed as the sweep runs."""

    index: int
    total: int
    label: str
    key: str
    cached: bool
    trials: int
    mean_robustness: float
    seconds: float

    @classmethod
    def from_trials(
        cls,
        trials: list[TrialMetrics],
        *,
        index: int,
        total: int,
        label: str,
        key: str,
        cached: bool,
        seconds: float,
    ) -> "PointReport":
        mean = (
            sum(t.robustness_percent for t in trials) / len(trials) if trials else float("nan")
        )
        return cls(
            index=index,
            total=total,
            label=label,
            key=key,
            cached=cached,
            trials=len(trials),
            mean_robustness=mean,
            seconds=seconds,
        )


ProgressCallback = Callable[[PointReport], None]


class StreamReporter:
    """Writes one aligned line per finished point to a text stream."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def __call__(self, report: PointReport) -> None:
        source = "cache" if report.cached else f"{report.seconds:5.1f}s"
        self._stream.write(
            f"[{report.index + 1:>3}/{report.total}] {report.label:<32} "
            f"robustness {report.mean_robustness:6.2f}%  "
            f"({report.trials} trials, {source})\n"
        )
        self._stream.flush()

    def heartbeat(self, status: "QueueStatus") -> None:
        """Render one remote-worker heartbeat line from queue state."""
        self._stream.write(format_heartbeat(status) + "\n")
        self._stream.flush()


def format_heartbeat(status: "QueueStatus", *, now: float | None = None) -> str:
    """One line summarising queue progress and the workers holding leases.

    ``now`` (defaults to the current wall clock, the basis of lease
    deadlines) turns each lease expiry into a human-readable time-left.
    Degenerate queues render honestly rather than reassuringly: an expired
    lease is labelled as such instead of showing ``0s left`` for a worker
    that is probably gone, a queue whose only remaining rows are
    dead-lettered says so (with the recovery command), and a lease row
    missing its owner (interrupted writes, manual surgery) never crashes
    the status line.
    """
    now = time.time() if now is None else now
    line = (
        f"[queue] {status.pending} pending, {status.leased} leased, "
        f"{status.done} done, {status.dead} dead"
    )
    if status.workers:
        leases = []
        live = 0
        for lease in status.workers:
            owner = lease.owner if lease.owner else "<unknown owner>"
            left = lease.lease_expires_at - now
            if left > 0:
                live += 1
                holding = f"{left:.0f}s left"
            else:
                holding = "lease expired"
            leases.append(f"{owner} ({lease.tasks} leased, {holding})")
        line += " | workers: " + ", ".join(leases)
        if live == 0:
            line += " — no live workers"
    if status.unfinished == 0 and status.dead:
        line += (
            f" — stalled: {status.dead} dead-lettered row(s) are all that is left"
            " ('repro queue requeue --dead' revives them)"
        )
    return line
