"""Backend-driven execution of sweep specifications.

The executor is a thin frontend: it resolves cache hits, hands the
remaining trials to a pluggable :class:`~repro.sweep.backends.Backend`
(serial in-process, local process pool, or a durable work queue drained by
detached workers — see :mod:`repro.sweep.backends`), reassembles per-point
results in trial order, and persists/streams them.  All backends funnel
into the same trial primitive (:func:`repro.sweep.trial.execute_trial`)
with seeds recomputed from spawn position, so results are bit-identical for
every backend and ``jobs`` setting.

Per-point results are looked up in / persisted to the optional
content-addressed :class:`~repro.sweep.cache.ResultCache`, and one
:class:`~repro.sweep.progress.PointReport` is streamed per finished point.
A ``KeyboardInterrupt`` mid-sweep is handled gracefully: outstanding work
is cancelled, already-finished trials are harvested, and every point they
complete is flushed to the cache before the interrupt propagates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Sequence

from ..obs.telemetry import active as obs_active
from ..simulator.engine import SimulatorConfig
from .backends import Backend, TrialResult, TrialTask, make_backend
from .cache import ResultCache
from .progress import PointReport, ProgressCallback
from .spec import (
    PETSpec,
    SweepPoint,
    SweepSpec,
    spawn_trial_seeds,
    trace_for,
)
from .trial import TrialMetrics, execute_trial

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..experiments.config import ExperimentConfig
    from ..experiments.runner import SeriesResult
    from ..heuristics.base import MappingHeuristic
    from ..pet.matrix import PETMatrix
    from ..workload.generator import WorkloadConfig, WorkloadTrace

__all__ = [
    "SweepOutcome",
    "ParallelExecutor",
    "run_sweep",
    "execute_trials",
    "execute_point",
    "pet_for",
    "trace_for",
]

HeuristicFactory = Callable[[], "MappingHeuristic"]


@lru_cache(maxsize=16)
def pet_for(spec: PETSpec) -> "PETMatrix":
    """Per-process memo of built PET matrices (builders are deterministic)."""
    return spec.build()


def _sim_config_for(
    config: "ExperimentConfig", *, evict_executing_at_deadline: bool
) -> SimulatorConfig:
    return SimulatorConfig(
        queue_capacity=config.queue_capacity,
        max_impulses=config.max_impulses,
        evict_executing_at_deadline=evict_executing_at_deadline,
        batch_window=config.batch_window,
        kernel_backend=config.kernel_backend,
    )


def execute_trials(
    *,
    pet: "PETMatrix",
    heuristic_factory: HeuristicFactory,
    workload: "WorkloadConfig | None",
    config: "ExperimentConfig",
    machine_prices: Sequence[float] | None = None,
    evict_executing_at_deadline: bool = True,
    trace: "WorkloadTrace | None" = None,
) -> list[TrialMetrics]:
    """The serial trial loop shared with :func:`repro.experiments.runner.run_series`.

    Trial *k* derives its workload/execution streams from ``config.seed``
    via ``SeedSequence.spawn``, so different heuristics at the same data
    point see identical arrival traces (paired comparison, as in the paper).
    A recorded ``trace`` replays identically in every trial; only the
    execution stream varies.
    """
    sim_config = _sim_config_for(
        config, evict_executing_at_deadline=evict_executing_at_deadline
    )
    children = spawn_trial_seeds(config.seed, config.trials)
    obs = obs_active()
    trials: list[TrialMetrics] = []
    for child in children:
        if obs.enabled:
            start_ns = time.perf_counter_ns()
        metrics = execute_trial(
            pet=pet,
            heuristic=heuristic_factory(),
            workload=workload,
            trial_seed=child,
            sim_config=sim_config,
            machine_prices=machine_prices,
            warmup=config.warmup_tasks,
            cooldown=config.cooldown_tasks,
            trace=trace,
        )
        if obs.enabled:
            obs.add_span(
                "sweep.trial", start_ns, time.perf_counter_ns() - start_ns
            )
        trials.append(metrics)
    return trials


def execute_point(point: SweepPoint) -> list[TrialMetrics]:
    """Run every trial of one point in-process (the ``jobs=1`` path)."""
    pet = pet_for(point.pet)
    return execute_trials(
        pet=pet,
        heuristic_factory=lambda: point.heuristic.build(pet.num_task_types),
        workload=point.workload,
        config=point.config,
        machine_prices=point.machine_prices,
        evict_executing_at_deadline=point.evict_executing_at_deadline,
        trace=trace_for(point.trace) if point.trace is not None else None,
    )


def _execute_point_trial(point: SweepPoint, trial_index: int) -> TrialMetrics:
    """Worker entry point: run exactly one trial of one point.

    Recomputing ``spawn(trials)[trial_index]`` is deterministic in the
    master seed and the spawn position, so the streams match the serial
    loop's bit for bit regardless of which process runs which trial.
    """
    pet = pet_for(point.pet)
    trial_seed = point.trial_seeds()[trial_index]
    obs = obs_active()
    if obs.enabled:
        start_ns = time.perf_counter_ns()
    metrics = execute_trial(
        pet=pet,
        heuristic=point.heuristic.build(pet.num_task_types),
        workload=point.workload,
        trial_seed=trial_seed,
        sim_config=_sim_config_for(
            point.config,
            evict_executing_at_deadline=point.evict_executing_at_deadline,
        ),
        machine_prices=point.machine_prices,
        warmup=point.config.warmup_tasks,
        cooldown=point.config.cooldown_tasks,
        trace=trace_for(point.trace) if point.trace is not None else None,
    )
    if obs.enabled:
        obs.add_span(
            "sweep.trial",
            start_ns,
            time.perf_counter_ns() - start_ns,
            label=point.label,
            trial=trial_index,
        )
    return metrics


@dataclass
class SweepOutcome:
    """Results of one sweep run plus the bookkeeping the tests assert on."""

    points: tuple[SweepPoint, ...]
    trials_per_point: list[list[TrialMetrics]]
    #: Number of simulations actually executed (0 on a fully warm cache).
    executed_trials: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    seconds: float = 0.0
    reports: list[PointReport] = field(default_factory=list)

    def series(self) -> list["SeriesResult"]:
        """Wrap each point's trials into a labelled ``SeriesResult``."""
        from ..experiments.runner import SeriesResult  # runtime-only: avoids a cycle

        out = []
        for point, trials in zip(self.points, self.trials_per_point):
            series = SeriesResult(label=point.label)
            series.trials.extend(trials)
            out.append(series)
        return out

    def series_map(self, keys: Iterable[Hashable]) -> dict[Hashable, "SeriesResult"]:
        """Pair caller-supplied keys with the point series, strictly.

        The figure drivers key their result dicts by (level, heuristic)-style
        tuples; a length mismatch between their key list and the sweep's
        points is always a bug (e.g. a grid that deduplicated an input the
        key list did not), so it raises instead of silently truncating.
        """
        keys = list(keys)
        if len(keys) != len(self.points):
            raise ValueError(
                f"{len(keys)} keys supplied for {len(self.points)} sweep points"
            )
        return dict(zip(keys, self.series()))


class ParallelExecutor:
    """Drives a :class:`SweepSpec` to completion with caching and progress.

    ``backend`` selects where trials execute: a name from
    :data:`~repro.sweep.backends.BACKEND_NAMES` (``"serial"``,
    ``"process"``, ``"queue"``), a ready-made backend instance, or ``None``
    to defer to the spec's ``backend`` field (default ``"process"``, which
    keeps the historical behaviour: in-process for ``jobs=1``, a local
    process pool otherwise).  ``queue_dir``/``queue_workers`` configure the
    queue backend; see :class:`~repro.sweep.backends.QueueBackend`.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: ProgressCallback | None = None,
        backend: str | Backend | None = None,
        queue_dir: str | Path | None = None,
        queue_workers: int | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.backend = backend
        self.queue_dir = queue_dir
        self.queue_workers = queue_workers

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepOutcome:
        started = time.perf_counter()
        points = spec.points
        outcome = SweepOutcome(
            points=points, trials_per_point=[[] for _ in points]
        )

        obs = obs_active()
        pending: list[int] = []
        for index, point in enumerate(points):
            cached = self.cache.load(point) if self.cache is not None else None
            if cached is not None:
                outcome.trials_per_point[index] = cached
                outcome.cache_hits += 1
                obs.count("sweep.cache_hits")
                self._report(outcome, index, cached=True, seconds=0.0)
            else:
                if self.cache is not None:
                    outcome.cache_misses += 1
                    obs.count("sweep.cache_misses")
                pending.append(index)

        if pending:
            self._run_pending(outcome, pending, spec)

        outcome.seconds = time.perf_counter() - started
        return outcome

    def _backend_for(self, spec: SweepSpec) -> Backend:
        if self.backend is not None and not isinstance(self.backend, str):
            return self.backend
        name = self.backend if self.backend is not None else spec.backend
        return make_backend(
            name,
            jobs=self.jobs,
            queue_dir=self.queue_dir,
            queue_workers=self.queue_workers,
            heartbeat=getattr(self.progress, "heartbeat", None),
        )

    # ------------------------------------------------------------------
    def _finish_point(
        self, outcome: SweepOutcome, index: int, trials: list[TrialMetrics], seconds: float
    ) -> None:
        outcome.trials_per_point[index] = trials
        outcome.executed_trials += len(trials)
        obs = obs_active()
        if obs.enabled:
            # The point already ran; reconstruct its span retrospectively
            # from the measured wall seconds so sweeps appear on the trace
            # timeline whichever backend executed the trials.
            duration_ns = int(seconds * 1e9)
            obs.add_span(
                "sweep.point",
                time.perf_counter_ns() - duration_ns,
                duration_ns,
                label=outcome.points[index].label,
                trials=len(trials),
            )
            obs.count("sweep.trials_executed", len(trials))
        if self.cache is not None:
            self.cache.store(outcome.points[index], trials)
        self._report(outcome, index, cached=False, seconds=seconds)

    def _report(
        self, outcome: SweepOutcome, index: int, *, cached: bool, seconds: float
    ) -> None:
        point = outcome.points[index]
        report = PointReport.from_trials(
            outcome.trials_per_point[index],
            index=index,
            total=len(outcome.points),
            label=point.label,
            key=point.cache_key(),
            cached=cached,
            seconds=seconds,
        )
        outcome.reports.append(report)
        if self.progress is not None:
            self.progress(report)

    def _run_pending(
        self, outcome: SweepOutcome, pending: list[int], spec: SweepSpec
    ) -> None:
        points = outcome.points
        tasks = [
            TrialTask(point_index=index, point=points[index], trial_index=trial)
            for index in pending
            for trial in range(points[index].config.trials)
        ]
        started_at = {index: time.perf_counter() for index in pending}
        slots: dict[int, list[TrialMetrics | None]] = {
            index: [None] * points[index].config.trials for index in pending
        }
        remaining = {index: points[index].config.trials for index in pending}

        def record(result: TrialResult) -> None:
            if slots[result.point_index][result.trial_index] is not None:
                return  # duplicate delivery (e.g. a zombie worker) — ignore
            slots[result.point_index][result.trial_index] = result.metrics
            remaining[result.point_index] -= 1
            if remaining[result.point_index] == 0:
                trials = [t for t in slots[result.point_index] if t is not None]
                self._finish_point(
                    outcome,
                    result.point_index,
                    trials,
                    time.perf_counter() - started_at[result.point_index],
                )

        backend = self._backend_for(spec)
        try:
            backend.submit_trials(tasks)
            for result in backend.drain_results():
                record(result)
        except BaseException:
            # Graceful interrupt/failure path: cancel outstanding work, but
            # harvest trials that already finished so any point they complete
            # reaches the cache before the exception propagates.  The harvest
            # itself must never mask the original exception.
            try:
                for result in backend.cancel():
                    record(result)
            except Exception:  # pragma: no cover - defensive
                pass
            raise
        finally:
            backend.close()


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
    backend: str | Backend | None = None,
    queue_dir: str | Path | None = None,
    queue_workers: int | None = None,
) -> SweepOutcome:
    """One-call convenience wrapper around :class:`ParallelExecutor`.

    ``cache_dir`` builds a :class:`ResultCache` rooted there; passing an
    explicit ``cache`` instance takes precedence (e.g. to share counters
    across several sweeps).  ``backend``/``queue_dir``/``queue_workers``
    select and configure the execution backend (default: the spec's, which
    is ``"process"`` unless overridden — in-process for ``jobs=1``).
    """
    if cache is None and cache_dir is not None:
        cache = ResultCache(Path(cache_dir))
    executor = ParallelExecutor(
        jobs=jobs,
        cache=cache,
        progress=progress,
        backend=backend,
        queue_dir=queue_dir,
        queue_workers=queue_workers,
    )
    return executor.run(spec)
