"""Serial and process-parallel execution of sweep specifications.

Two execution paths share one trial primitive (:func:`repro.sweep.trial.execute_trial`):

``jobs=1``
    In-process serial execution — the exact historical ``run_series`` loop,
    so results stay bit-identical to the seed implementation (and to what
    the regression tests pin).

``jobs>1``
    Trials fan out over a ``concurrent.futures.ProcessPoolExecutor`` at
    single-trial granularity (a point's trials are independent given their
    spawned seed sequences), so even a sweep of few points with many trials
    saturates the pool.  Workers rebuild the PET matrix and heuristic from
    the declarative specs; a per-process PET memo avoids rebuilding the
    matrix for every trial.

Either way, per-point results are looked up in / persisted to the optional
content-addressed :class:`~repro.sweep.cache.ResultCache`, and one
:class:`~repro.sweep.progress.PointReport` is streamed per finished point.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Sequence

from ..simulator.engine import SimulatorConfig
from .cache import ResultCache
from .progress import PointReport, ProgressCallback
from .spec import (
    PETSpec,
    SweepPoint,
    SweepSpec,
    spawn_trial_seeds,
    trace_for,
)
from .trial import TrialMetrics, execute_trial

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..experiments.config import ExperimentConfig
    from ..experiments.runner import SeriesResult
    from ..heuristics.base import MappingHeuristic
    from ..pet.matrix import PETMatrix
    from ..workload.generator import WorkloadConfig, WorkloadTrace

__all__ = [
    "SweepOutcome",
    "ParallelExecutor",
    "run_sweep",
    "execute_trials",
    "execute_point",
    "pet_for",
    "trace_for",
]

HeuristicFactory = Callable[[], "MappingHeuristic"]


@lru_cache(maxsize=16)
def pet_for(spec: PETSpec) -> "PETMatrix":
    """Per-process memo of built PET matrices (builders are deterministic)."""
    return spec.build()


def _sim_config_for(
    config: "ExperimentConfig", *, evict_executing_at_deadline: bool
) -> SimulatorConfig:
    return SimulatorConfig(
        queue_capacity=config.queue_capacity,
        max_impulses=config.max_impulses,
        evict_executing_at_deadline=evict_executing_at_deadline,
    )


def execute_trials(
    *,
    pet: "PETMatrix",
    heuristic_factory: HeuristicFactory,
    workload: "WorkloadConfig | None",
    config: "ExperimentConfig",
    machine_prices: Sequence[float] | None = None,
    evict_executing_at_deadline: bool = True,
    trace: "WorkloadTrace | None" = None,
) -> list[TrialMetrics]:
    """The serial trial loop shared with :func:`repro.experiments.runner.run_series`.

    Trial *k* derives its workload/execution streams from ``config.seed``
    via ``SeedSequence.spawn``, so different heuristics at the same data
    point see identical arrival traces (paired comparison, as in the paper).
    A recorded ``trace`` replays identically in every trial; only the
    execution stream varies.
    """
    sim_config = _sim_config_for(
        config, evict_executing_at_deadline=evict_executing_at_deadline
    )
    children = spawn_trial_seeds(config.seed, config.trials)
    return [
        execute_trial(
            pet=pet,
            heuristic=heuristic_factory(),
            workload=workload,
            trial_seed=child,
            sim_config=sim_config,
            machine_prices=machine_prices,
            warmup=config.warmup_tasks,
            cooldown=config.cooldown_tasks,
            trace=trace,
        )
        for child in children
    ]


def execute_point(point: SweepPoint) -> list[TrialMetrics]:
    """Run every trial of one point in-process (the ``jobs=1`` path)."""
    pet = pet_for(point.pet)
    return execute_trials(
        pet=pet,
        heuristic_factory=lambda: point.heuristic.build(pet.num_task_types),
        workload=point.workload,
        config=point.config,
        machine_prices=point.machine_prices,
        evict_executing_at_deadline=point.evict_executing_at_deadline,
        trace=trace_for(point.trace) if point.trace is not None else None,
    )


def _execute_point_trial(point: SweepPoint, trial_index: int) -> TrialMetrics:
    """Worker entry point: run exactly one trial of one point.

    Recomputing ``spawn(trials)[trial_index]`` is deterministic in the
    master seed and the spawn position, so the streams match the serial
    loop's bit for bit regardless of which process runs which trial.
    """
    pet = pet_for(point.pet)
    trial_seed = point.trial_seeds()[trial_index]
    return execute_trial(
        pet=pet,
        heuristic=point.heuristic.build(pet.num_task_types),
        workload=point.workload,
        trial_seed=trial_seed,
        sim_config=_sim_config_for(
            point.config,
            evict_executing_at_deadline=point.evict_executing_at_deadline,
        ),
        machine_prices=point.machine_prices,
        warmup=point.config.warmup_tasks,
        cooldown=point.config.cooldown_tasks,
        trace=trace_for(point.trace) if point.trace is not None else None,
    )


@dataclass
class SweepOutcome:
    """Results of one sweep run plus the bookkeeping the tests assert on."""

    points: tuple[SweepPoint, ...]
    trials_per_point: list[list[TrialMetrics]]
    #: Number of simulations actually executed (0 on a fully warm cache).
    executed_trials: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    seconds: float = 0.0
    reports: list[PointReport] = field(default_factory=list)

    def series(self) -> list["SeriesResult"]:
        """Wrap each point's trials into a labelled ``SeriesResult``."""
        from ..experiments.runner import SeriesResult  # runtime-only: avoids a cycle

        out = []
        for point, trials in zip(self.points, self.trials_per_point):
            series = SeriesResult(label=point.label)
            series.trials.extend(trials)
            out.append(series)
        return out

    def series_map(self, keys: Iterable[Hashable]) -> dict[Hashable, "SeriesResult"]:
        """Pair caller-supplied keys with the point series, strictly.

        The figure drivers key their result dicts by (level, heuristic)-style
        tuples; a length mismatch between their key list and the sweep's
        points is always a bug (e.g. a grid that deduplicated an input the
        key list did not), so it raises instead of silently truncating.
        """
        keys = list(keys)
        if len(keys) != len(self.points):
            raise ValueError(
                f"{len(keys)} keys supplied for {len(self.points)} sweep points"
            )
        return dict(zip(keys, self.series()))


class ParallelExecutor:
    """Drives a :class:`SweepSpec` to completion with caching and progress."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: ProgressCallback | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepOutcome:
        started = time.perf_counter()
        points = spec.points
        outcome = SweepOutcome(
            points=points, trials_per_point=[[] for _ in points]
        )

        pending: list[int] = []
        for index, point in enumerate(points):
            cached = self.cache.load(point) if self.cache is not None else None
            if cached is not None:
                outcome.trials_per_point[index] = cached
                outcome.cache_hits += 1
                self._report(outcome, index, cached=True, seconds=0.0)
            else:
                if self.cache is not None:
                    outcome.cache_misses += 1
                pending.append(index)

        if pending:
            if self.jobs == 1:
                self._run_serial(outcome, pending)
            else:
                self._run_parallel(outcome, pending)

        outcome.seconds = time.perf_counter() - started
        return outcome

    # ------------------------------------------------------------------
    def _finish_point(
        self, outcome: SweepOutcome, index: int, trials: list[TrialMetrics], seconds: float
    ) -> None:
        outcome.trials_per_point[index] = trials
        outcome.executed_trials += len(trials)
        if self.cache is not None:
            self.cache.store(outcome.points[index], trials)
        self._report(outcome, index, cached=False, seconds=seconds)

    def _report(
        self, outcome: SweepOutcome, index: int, *, cached: bool, seconds: float
    ) -> None:
        point = outcome.points[index]
        report = PointReport.from_trials(
            outcome.trials_per_point[index],
            index=index,
            total=len(outcome.points),
            label=point.label,
            key=point.cache_key(),
            cached=cached,
            seconds=seconds,
        )
        outcome.reports.append(report)
        if self.progress is not None:
            self.progress(report)

    def _run_serial(self, outcome: SweepOutcome, pending: list[int]) -> None:
        for index in pending:
            point_started = time.perf_counter()
            trials = execute_point(outcome.points[index])
            self._finish_point(
                outcome, index, trials, time.perf_counter() - point_started
            )

    def _run_parallel(self, outcome: SweepOutcome, pending: list[int]) -> None:
        points = outcome.points
        started_at = {index: time.perf_counter() for index in pending}
        slots: dict[int, list[TrialMetrics | None]] = {
            index: [None] * points[index].config.trials for index in pending
        }
        remaining = {index: points[index].config.trials for index in pending}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(_execute_point_trial, points[index], trial): (index, trial)
                for index in pending
                for trial in range(points[index].config.trials)
            }
            not_done = set(futures)
            try:
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, trial = futures[future]
                        slots[index][trial] = future.result()
                        remaining[index] -= 1
                        if remaining[index] == 0:
                            trials = [t for t in slots[index] if t is not None]
                            self._finish_point(
                                outcome,
                                index,
                                trials,
                                time.perf_counter() - started_at[index],
                            )
            except BaseException:
                # Don't let a sweep with thousands of queued trials drain to
                # completion behind a failure; completed points are already
                # cached, everything else is abandoned.
                pool.shutdown(wait=False, cancel_futures=True)
                raise


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
) -> SweepOutcome:
    """One-call convenience wrapper around :class:`ParallelExecutor`.

    ``cache_dir`` builds a :class:`ResultCache` rooted there; passing an
    explicit ``cache`` instance takes precedence (e.g. to share counters
    across several sweeps).
    """
    if cache is None and cache_dir is not None:
        cache = ResultCache(Path(cache_dir))
    executor = ParallelExecutor(jobs=jobs, cache=cache, progress=progress)
    return executor.run(spec)
